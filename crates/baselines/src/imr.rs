//! IMR: evolutionary (genetic-algorithm) loop search (Liu et al., TPDS 2016).
//!
//! IMR evolves a population of candidate ring sets through random mutation
//! and crossover, selecting on a fitness function that rewards connectivity
//! and short rings. The DRL paper's §3.1 critique — which this module lets
//! you reproduce experimentally — is that the search is *unreliable*: it
//! ignores past experience, can produce very long loops, and has no
//! mechanism to enforce wiring (node-overlapping) constraints.
//!
//! The original IMR evolves arbitrary closed rings; this reimplementation
//! uses rectangular loops (the same action space as REC and DRL) so all
//! three methods are directly comparable on every metric in the workspace.
//! The defining trait — randomized evolutionary search with a fitness
//! objective, no constraint enforcement by default — is preserved (see
//! `DESIGN.md` §6).

use rand::prelude::*;
use rand::rngs::StdRng;
use rlnoc_topology::{Direction, Grid, HopMatrix, RectLoop, Topology};

/// Tunables for the IMR genetic search.
#[derive(Debug, Clone, PartialEq)]
pub struct ImrConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Loops per individual in the initial random population.
    pub initial_loops: usize,
    /// Probability that a child is mutated (per mutation operator draw).
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Weight of the average-hop-count term in the fitness.
    pub hop_weight: f64,
    /// Weight of the total-wire-length term (ring length pressure, as in
    /// IMR's inter-core-distance / ring-length objective).
    pub wire_weight: f64,
    /// Optional node-overlapping cap. IMR proper has none (`None`); when
    /// set, violations are *penalized* in fitness — but, as the paper notes,
    /// such soft constraints "are likely to be violated to achieve better
    /// performance".
    pub overlap_cap: Option<u32>,
    /// Penalty per unit of overlap violation when `overlap_cap` is set.
    pub overlap_penalty: f64,
}

impl Default for ImrConfig {
    fn default() -> Self {
        ImrConfig {
            population: 32,
            generations: 60,
            initial_loops: 12,
            mutation_rate: 0.35,
            tournament: 4,
            hop_weight: 1.0,
            wire_weight: 0.02,
            overlap_cap: None,
            overlap_penalty: 5.0,
        }
    }
}

/// Result of an IMR run.
#[derive(Debug, Clone)]
pub struct ImrOutcome {
    /// The best topology found.
    pub topology: Topology,
    /// Its fitness (lower is better).
    pub fitness: f64,
    /// Whether the best individual is fully connected.
    pub fully_connected: bool,
    /// Best fitness per generation, for convergence plots.
    pub history: Vec<f64>,
}

/// The IMR genetic search over rectangular loop sets.
#[derive(Debug)]
pub struct ImrSearch {
    grid: Grid,
    config: ImrConfig,
    rng: StdRng,
}

/// One individual: an ordered set of loops (duplicates are culled at
/// evaluation time).
type Genome = Vec<RectLoop>;

impl ImrSearch {
    /// Creates a search over `grid` with `config`, seeded deterministically.
    pub fn new(grid: Grid, config: ImrConfig, seed: u64) -> Self {
        ImrSearch {
            grid,
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs the evolutionary loop and returns the best design found.
    pub fn run(mut self) -> ImrOutcome {
        let mut population: Vec<Genome> = (0..self.config.population)
            .map(|_| self.random_genome())
            .collect();
        let mut history = Vec::with_capacity(self.config.generations);
        let mut best: Option<(f64, Genome)> = None;

        for _ in 0..self.config.generations {
            let scored: Vec<(f64, &Genome)> =
                population.iter().map(|g| (self.fitness(g), g)).collect();
            let gen_best = scored
                .iter()
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("population is non-empty");
            if best.as_ref().is_none_or(|(f, _)| gen_best.0 < *f) {
                best = Some((gen_best.0, gen_best.1.clone()));
            }
            history.push(gen_best.0);

            let fitnesses: Vec<f64> = scored.iter().map(|(f, _)| *f).collect();
            let mut next = Vec::with_capacity(population.len());
            // Elitism: carry the best individual forward unchanged.
            next.push(gen_best.1.clone());
            while next.len() < population.len() {
                let a = self.tournament_select(&fitnesses);
                let b = self.tournament_select(&fitnesses);
                let mut child = self.crossover(&population[a], &population[b]);
                self.mutate(&mut child);
                next.push(child);
            }
            population = next;
        }

        let (fitness, genome) = best.expect("at least one generation ran");
        let topology = self.realize(&genome);
        ImrOutcome {
            fully_connected: topology.is_fully_connected(),
            topology,
            fitness,
            history,
        }
    }

    /// Builds a [`Topology`] from a genome, skipping duplicate loops.
    fn realize(&self, genome: &Genome) -> Topology {
        let mut topo = Topology::new(self.grid);
        for &l in genome {
            let _ = topo.add_loop(l); // duplicates are simply skipped
        }
        topo
    }

    /// Fitness (lower is better): unconnected pairs dominate; among
    /// connected designs, average hops plus wire-length pressure plus
    /// (optional) overlap-violation penalty.
    fn fitness(&self, genome: &Genome) -> f64 {
        let topo = self.realize(genome);
        let hops: &HopMatrix = topo.hop_matrix();
        let n = self.grid.len();
        let total_pairs = (n * (n - 1)) as f64;
        let unconnected = total_pairs - hops.connected_pairs() as f64;
        let mut f = 10.0 * self.grid.unconnected_hops() as f64 * unconnected / total_pairs;
        f += self.config.hop_weight * hops.average_hops();
        f += self.config.wire_weight * topo.total_wire_length() as f64;
        if let Some(cap) = self.config.overlap_cap {
            let violation: u32 = topo.overlaps().iter().map(|&o| o.saturating_sub(cap)).sum();
            f += self.config.overlap_penalty * f64::from(violation);
        }
        f
    }

    fn tournament_select(&mut self, fitnesses: &[f64]) -> usize {
        let mut best = self.rng.gen_range(0..fitnesses.len());
        for _ in 1..self.config.tournament {
            let c = self.rng.gen_range(0..fitnesses.len());
            if fitnesses[c] < fitnesses[best] {
                best = c;
            }
        }
        best
    }

    /// Uniform crossover: each parent contributes each of its loops with
    /// probability one half; the child is clamped to the larger parent size.
    fn crossover(&mut self, a: &Genome, b: &Genome) -> Genome {
        let cap = a.len().max(b.len()).max(1);
        let mut child = Vec::with_capacity(cap);
        for &l in a.iter().chain(b) {
            if child.len() >= cap {
                break;
            }
            if self.rng.gen_bool(0.5) {
                child.push(l);
            }
        }
        if child.is_empty() {
            child.push(self.random_loop());
        }
        child
    }

    /// Random mutation: add, remove, redirect, or reshape a loop.
    fn mutate(&mut self, genome: &mut Genome) {
        while self.rng.gen_bool(self.config.mutation_rate) {
            match self.rng.gen_range(0..4u8) {
                0 => genome.push(self.random_loop()),
                1 => {
                    if genome.len() > 1 {
                        let i = self.rng.gen_range(0..genome.len());
                        genome.swap_remove(i);
                    }
                }
                2 => {
                    if !genome.is_empty() {
                        let i = self.rng.gen_range(0..genome.len());
                        genome[i] = genome[i].reversed();
                    }
                }
                _ => {
                    if !genome.is_empty() {
                        let i = self.rng.gen_range(0..genome.len());
                        genome[i] = self.random_loop();
                    }
                }
            }
        }
    }

    fn random_genome(&mut self) -> Genome {
        (0..self.config.initial_loops)
            .map(|_| self.random_loop())
            .collect()
    }

    fn random_loop(&mut self) -> RectLoop {
        let (w, h) = (self.grid.width(), self.grid.height());
        loop {
            let x1 = self.rng.gen_range(0..w);
            let x2 = self.rng.gen_range(0..w);
            let y1 = self.rng.gen_range(0..h);
            let y2 = self.rng.gen_range(0..h);
            let dir = if self.rng.gen_bool(0.5) {
                Direction::Clockwise
            } else {
                Direction::Counterclockwise
            };
            if let Ok(l) = RectLoop::new(x1, y1, x2, y2, dir) {
                return l;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ImrConfig {
        ImrConfig {
            population: 16,
            generations: 30,
            initial_loops: 8,
            ..ImrConfig::default()
        }
    }

    #[test]
    fn imr_connects_small_grid() {
        // Seed chosen to converge within the quick budget under the
        // workspace PRNG stream (most seeds do; see vendor/rand).
        let out = ImrSearch::new(Grid::square(4).unwrap(), quick_config(), 0).run();
        assert!(out.fully_connected, "4x4 should be solvable in 30 gens");
        assert!(out.topology.average_hops() < 20.0);
    }

    #[test]
    fn imr_deterministic_for_seed() {
        let a = ImrSearch::new(Grid::square(4).unwrap(), quick_config(), 42).run();
        let b = ImrSearch::new(Grid::square(4).unwrap(), quick_config(), 42).run();
        assert_eq!(a.topology.loops(), b.topology.loops());
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn imr_history_is_monotone_with_elitism() {
        let out = ImrSearch::new(Grid::square(4).unwrap(), quick_config(), 3).run();
        for w in out.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "elitism keeps best fitness monotone");
        }
    }

    #[test]
    fn imr_ignores_overlap_cap_by_default() {
        // Reproduces the paper's critique: without constraint handling the
        // GA freely exceeds tight wiring budgets.
        let out = ImrSearch::new(Grid::square(4).unwrap(), quick_config(), 9).run();
        assert!(out.topology.max_overlap() > 0);
        // (No assertion on the cap — the point is that nothing enforces it.)
    }

    #[test]
    fn imr_soft_cap_reduces_overlap() {
        let mut capped = quick_config();
        capped.overlap_cap = Some(4);
        capped.overlap_penalty = 50.0;
        let free = ImrSearch::new(Grid::square(4).unwrap(), quick_config(), 11).run();
        let tight = ImrSearch::new(Grid::square(4).unwrap(), capped, 11).run();
        assert!(
            tight.topology.max_overlap() <= free.topology.max_overlap(),
            "soft penalty should not increase overlap (free {}, tight {})",
            free.topology.max_overlap(),
            tight.topology.max_overlap()
        );
    }

    #[test]
    fn random_loops_are_valid() {
        let mut s = ImrSearch::new(Grid::new(5, 3).unwrap(), quick_config(), 1);
        for _ in 0..200 {
            let l = s.random_loop();
            assert!(l.check_on(&s.grid).is_ok());
        }
    }
}
