//! Prior routerless NoC design methods used as baselines in the paper.
//!
//! The paper (§3.1) contrasts its DRL framework against the two published
//! approaches to routerless loop placement:
//!
//! - [`rec`]: **REC** — the *recursive layering* construction of Alazemi et
//!   al. (HPCA 2018), which deterministically adds loop groups layer by
//!   layer and always produces a node overlapping of exactly `2·(N−1)` on
//!   an `N×N` grid. It is the state of the art the DRL design is measured
//!   against throughout the evaluation.
//! - [`imr`]: **IMR** — the *isolated multi-ring* evolutionary approach of
//!   Liu et al., a genetic algorithm with random mutation whose search
//!   ignores past experience and wiring constraints (the paper's critique).
//!
//! Both produce [`rlnoc_topology::Topology`] values, so they can be fed to
//! the same simulator, power model, and metrics as DRL-generated designs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod imr;
pub mod rec;

pub use imr::{ImrConfig, ImrOutcome, ImrSearch};
pub use rec::{rec_topology, RecError};
