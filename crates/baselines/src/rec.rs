//! REC: the recursive layering construction (Alazemi et al., HPCA 2018).
//!
//! REC builds a routerless NoC from the inside out. For an `N×N` grid it
//! considers concentric square *layers*; for each layer it adds a fixed
//! group of rectangular loops anchored on the layer boundary that connect
//! every boundary node with every node of the layer interior (which is, by
//! induction, already fully connected). The construction is deterministic:
//! one topology exists per grid size, with node overlapping of exactly
//! `2·(N−1)` — the inflexibility the DRL paper's §3.1 and §6.2 critique.
//!
//! The original pseudocode is not reproduced in the DRL paper, so this
//! module reimplements REC from its defining, externally documented
//! properties (see `DESIGN.md`):
//!
//! 1. recursive layer-by-layer generation, loops anchored per layer;
//! 2. maximum node overlapping of exactly `2·(N−1)` on an `N×N` grid;
//! 3. full connectivity with source routing on single loops;
//! 4. balanced clockwise/counterclockwise direction assignment, giving
//!    average hop counts in line with the published values (≈7.3 for 8x8
//!    with overlap 14, ≈9.6 for 10x10 with overlap 18).
//!
//! For each layer spanning the square `[a, b]²` the group is:
//!
//! - the layer ring in both directions,
//! - for every strictly interior column `x`: the full-height rectangles
//!   `(a, a)–(x, b)` and `(x, a)–(b, b)`,
//! - for every strictly interior row `y`: the full-width rectangles
//!   `(a, a)–(b, y)` and `(a, y)–(b, b)`,
//!
//! with directions alternating by position parity. Every boundary node of
//! the layer shares a loop with every interior node (the strip through that
//! interior node's column or row), boundary nodes share the ring, and
//! interior pairs are connected recursively.

use rlnoc_topology::{Direction, Grid, RectLoop, Topology, TopologyError};
use std::error::Error;
use std::fmt;

/// Errors from the REC construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecError {
    /// The grid is too small for REC (each dimension must be ≥ 2).
    TooSmall {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// Propagated topology construction failure (should not occur for
    /// valid grids; indicates an internal invariant violation).
    Topology(TopologyError),
}

impl fmt::Display for RecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecError::TooSmall { width, height } => {
                write!(f, "grid {width}x{height} too small for REC (need ≥ 2x2)")
            }
            RecError::Topology(e) => write!(f, "REC internal error: {e}"),
        }
    }
}

impl Error for RecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecError::Topology(e) => Some(e),
            RecError::TooSmall { .. } => None,
        }
    }
}

impl From<TopologyError> for RecError {
    fn from(e: TopologyError) -> Self {
        RecError::Topology(e)
    }
}

/// Builds the REC topology for `grid`.
///
/// Works for square and rectangular grids with both dimensions ≥ 2. The
/// result is always fully connected, and for an `N×N` grid has maximum node
/// overlapping exactly `2·(N−1)`.
///
/// # Errors
///
/// Returns [`RecError::TooSmall`] when either dimension is < 2.
///
/// # Example
///
/// ```
/// use rlnoc_topology::Grid;
/// use rlnoc_baselines::rec_topology;
///
/// let topo = rec_topology(Grid::square(8).unwrap()).unwrap();
/// assert!(topo.is_fully_connected());
/// assert_eq!(topo.max_overlap(), 14); // 2 * (8 - 1)
/// ```
pub fn rec_topology(grid: Grid) -> Result<Topology, RecError> {
    if grid.width() < 2 || grid.height() < 2 {
        return Err(RecError::TooSmall {
            width: grid.width(),
            height: grid.height(),
        });
    }
    let mut topo = Topology::new(grid);
    for layer in layers(&grid) {
        for ring in layer_loops(layer) {
            // Layer groups never repeat a loop, but the innermost odd layer
            // of a rectangular grid can overlap a previous strip; tolerate
            // exact duplicates silently.
            match topo.add_loop(ring) {
                Ok(()) | Err(TopologyError::DuplicateLoop) => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
    debug_assert!(topo.is_fully_connected());
    Ok(topo)
}

/// A concentric layer: the rectangle `[ax, bx] × [ay, by]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Layer {
    ax: usize,
    ay: usize,
    bx: usize,
    by: usize,
}

/// Enumerates layers outside-in, stopping when the interior can no longer
/// shrink (a dimension of width ≤ 2 has no interior).
fn layers(grid: &Grid) -> Vec<Layer> {
    let mut out = Vec::new();
    let (mut ax, mut ay) = (0usize, 0usize);
    let (mut bx, mut by) = (grid.width() - 1, grid.height() - 1);
    loop {
        out.push(Layer { ax, ay, bx, by });
        if bx - ax < 3 || by - ay < 3 {
            break;
        }
        ax += 1;
        ay += 1;
        bx -= 1;
        by -= 1;
    }
    out
}

/// The loop group for one layer: the layer ring plus anchored strips
/// through every interior column and row, directions alternating by parity.
///
/// Each layer carries a single ring (direction alternating by layer) so
/// that mid-edge nodes land on exactly `2·(N−1)` loops; only the innermost
/// `2x2` layer (which has no strips) carries both directions.
fn layer_loops(l: Layer) -> Vec<RectLoop> {
    let Layer { ax, ay, bx, by } = l;
    let mut loops = Vec::new();
    let ring = |dir| RectLoop::new(ax, ay, bx, by, dir).expect("layer spans ≥ 2 in each dim");
    if bx - ax == 1 && by - ay == 1 {
        loops.push(ring(Direction::Clockwise));
        loops.push(ring(Direction::Counterclockwise));
        return loops;
    }
    loops.push(ring(if ax % 2 == 0 {
        Direction::Clockwise
    } else {
        Direction::Counterclockwise
    }));
    let parity_dir = |i: usize| {
        if i.is_multiple_of(2) {
            Direction::Clockwise
        } else {
            Direction::Counterclockwise
        }
    };
    for x in ax + 1..bx {
        let d = parity_dir(x);
        loops.push(RectLoop::new(ax, ay, x, by, d).expect("non-degenerate"));
        loops.push(RectLoop::new(x, ay, bx, by, d.reversed()).expect("non-degenerate"));
    }
    for y in ay + 1..by {
        let d = parity_dir(y);
        loops.push(RectLoop::new(ax, ay, bx, y, d.reversed()).expect("non-degenerate"));
        loops.push(RectLoop::new(ax, y, bx, by, d).expect("non-degenerate"));
    }
    loops
}

/// The node overlapping REC requires for an `N×N` grid: `2·(N−1)`.
/// The paper uses this to bound which grid sizes REC can serve under a
/// wiring budget (Table 2: with a cap of 18, REC stops at 10x10).
pub fn required_overlap(n: usize) -> u32 {
    (2 * n.saturating_sub(1)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rec_4x4_fully_connected() {
        let t = rec_topology(Grid::square(4).unwrap()).unwrap();
        assert!(t.is_fully_connected());
        assert_eq!(t.max_overlap(), required_overlap(4));
    }

    #[test]
    fn rec_overlap_matches_2n_minus_2() {
        for n in [2usize, 4, 6, 8, 10] {
            let t = rec_topology(Grid::square(n).unwrap()).unwrap();
            assert!(t.is_fully_connected(), "{n}x{n} connected");
            assert_eq!(
                t.max_overlap(),
                required_overlap(n),
                "{n}x{n} overlap must be exactly 2(N-1)"
            );
        }
    }

    #[test]
    fn rec_odd_sizes() {
        for n in [3usize, 5, 7, 9] {
            let t = rec_topology(Grid::square(n).unwrap()).unwrap();
            assert!(t.is_fully_connected(), "{n}x{n} connected");
            assert!(t.max_overlap() <= required_overlap(n));
        }
    }

    #[test]
    fn rec_rectangular_grids() {
        for (w, h) in [(2, 6), (4, 6), (5, 8), (3, 4)] {
            let t = rec_topology(Grid::new(w, h).unwrap()).unwrap();
            assert!(t.is_fully_connected(), "{w}x{h} connected");
        }
    }

    #[test]
    fn rec_hop_counts_near_published_values() {
        // Paper Table 3/4: REC 8x8 ⇒ 7.33 avg hops, REC 10x10 ⇒ 9.64.
        // Our reimplementation must land in the same regime (±15%).
        let t8 = rec_topology(Grid::square(8).unwrap()).unwrap();
        let h8 = t8.average_hops();
        assert!((6.2..=8.5).contains(&h8), "8x8 avg hops {h8}");
        let t10 = rec_topology(Grid::square(10).unwrap()).unwrap();
        let h10 = t10.average_hops();
        assert!((8.0..=11.1).contains(&h10), "10x10 avg hops {h10}");
        // And the ordering vs mesh from §3.1 (mesh 5.33 for 8x8; REC worse).
        assert!(h8 > rlnoc_topology::mesh::average_hops(t8.grid()));
    }

    #[test]
    fn rec_deterministic() {
        let a = rec_topology(Grid::square(6).unwrap()).unwrap();
        let b = rec_topology(Grid::square(6).unwrap()).unwrap();
        assert_eq!(a.loops(), b.loops());
    }

    #[test]
    fn rec_too_small() {
        assert!(matches!(
            rec_topology(Grid::new(1, 5).unwrap()),
            Err(RecError::TooSmall { .. })
        ));
    }

    #[test]
    fn rec_2x2_is_two_rings() {
        let t = rec_topology(Grid::square(2).unwrap()).unwrap();
        assert_eq!(t.loops().len(), 2);
        assert!(t.is_fully_connected());
        assert_eq!(t.max_overlap(), 2);
    }

    #[test]
    fn layer_enumeration() {
        let g = Grid::square(8).unwrap();
        let ls = layers(&g);
        assert_eq!(ls.len(), 4);
        assert_eq!(
            ls[0],
            Layer {
                ax: 0,
                ay: 0,
                bx: 7,
                by: 7
            }
        );
        assert_eq!(
            ls[3],
            Layer {
                ax: 3,
                ay: 3,
                bx: 4,
                by: 4
            }
        );
    }
}
