//! Criterion micro-benchmarks for the hot kernels behind every
//! experiment: hop-matrix maintenance, Algorithm-1 greedy search, MCTS
//! bookkeeping, DNN forward/backward, and simulator cycle throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rlnoc_baselines::rec_topology;
use rlnoc_core::mcts::{Mcts, MctsConfig};
use rlnoc_core::routerless::RouterlessEnv;
use rlnoc_core::Environment;
use rlnoc_nn::net::PolicyValueGrad;
use rlnoc_nn::{PolicyValueConfig, PolicyValueNet, Tensor};
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{MeshSim, Network, RouterlessSim, SimConfig};
use rlnoc_topology::{Direction, Grid, HopMatrix, RectLoop, RoutingTable, Topology};

fn bench_hop_matrix(c: &mut Criterion) {
    let grid = Grid::square(8).unwrap();
    let ring = RectLoop::new(0, 0, 7, 7, Direction::Clockwise).unwrap();
    c.bench_function("hop_matrix/apply_loop_8x8_outer", |b| {
        b.iter(|| {
            let mut m = HopMatrix::new(grid);
            m.apply_loop(&grid, black_box(&ring));
            black_box(m.average_hops())
        })
    });

    let mut partial = HopMatrix::new(grid);
    partial.apply_loop(&grid, &ring);
    let candidate = RectLoop::new(1, 1, 6, 6, Direction::Counterclockwise).unwrap();
    c.bench_function("hop_matrix/check_count_8x8", |b| {
        b.iter(|| black_box(partial.connected_pairs_if_added(&grid, black_box(&candidate))))
    });
    c.bench_function("hop_matrix/improvement_8x8", |b| {
        b.iter(|| black_box(partial.improvement_if_added(&grid, black_box(&candidate))))
    });
}

fn bench_greedy(c: &mut Criterion) {
    // Greedy action on a partially built 8x8 design (mid-episode state).
    let mut env = RouterlessEnv::new(Grid::square(8).unwrap(), 14);
    for _ in 0..10 {
        let a = env.greedy_action().unwrap();
        env.apply(a);
    }
    c.bench_function("greedy/algorithm1_8x8_mid", |b| {
        b.iter(|| black_box(env.greedy_action()))
    });
    c.bench_function("env/state_tensor_8x8", |b| {
        b.iter(|| black_box(env.state_tensor()))
    });
    c.bench_function("env/legal_actions_8x8", |b| {
        b.iter(|| black_box(env.legal_actions().len()))
    });
}

fn bench_mcts(c: &mut Criterion) {
    let mut tree: Mcts<u32> = Mcts::new(MctsConfig::default());
    let priors: Vec<(u32, f32)> = (0..500).map(|i| (i, 1.0 / 500.0)).collect();
    tree.expand(1, &priors);
    for i in 0..200u32 {
        tree.backup(&[(1, i % 500)], &[f64::from(i % 7)]);
    }
    c.bench_function("mcts/select_500_edges", |b| {
        b.iter(|| black_box(tree.select(1)))
    });
    c.bench_function("mcts/backup_depth_50", |b| {
        let path: Vec<(u64, u32)> = (0..50).map(|i| (i, (i % 500) as u32)).collect();
        let returns = vec![1.0; 50];
        b.iter(|| tree.backup(black_box(&path), black_box(&returns)))
    });
}

fn bench_nn(c: &mut Criterion) {
    let mut net = PolicyValueNet::new(PolicyValueConfig::small(8), 1);
    let x = Tensor::zeros(&[1, 1, 64, 64]);
    c.bench_function("nn/forward_small_8x8_state", |b| {
        b.iter(|| black_box(net.forward(black_box(&x), false)))
    });
    c.bench_function("nn/forward_backward_small_8x8_state", |b| {
        b.iter(|| {
            let out = net.forward(black_box(&x), true);
            let grad = PolicyValueGrad {
                coord_logits: Tensor::zeros(out.coord_logits.shape()),
                dir: Tensor::zeros(&[1, 1]),
                value: Tensor::full(&[1, 1], 1.0),
            };
            net.backward(&grad);
            net.zero_grad();
        })
    });

    // The paper's full Figure 6(c) architecture at its three reported grid
    // sizes. Single-threaded matmul so runs are comparable across hosts.
    rlnoc_nn::kernels::set_matmul_threads(1);
    for n in [4usize, 8, 10] {
        let cfg = PolicyValueConfig::paper(n);
        let side = cfg.input_side;
        let mut net = PolicyValueNet::new(cfg, 1);
        let x = Tensor::zeros(&[1, 1, side, side]);
        c.bench_function(&format!("nn/forward_paper_{n}x{n}"), |b| {
            b.iter(|| black_box(net.forward(black_box(&x), false)))
        });
    }
    rlnoc_nn::kernels::set_matmul_threads(0);
}

fn bench_kernels(c: &mut Criterion) {
    // Blocked GEMM vs the retained naive oracle at a net-realistic shape
    // (single-threaded, so the ratio reflects blocking alone).
    rlnoc_nn::kernels::set_matmul_threads(1);
    let (m, k, n) = (256, 512, 256);
    let a = Tensor::from_vec(
        (0..m * k).map(|v| (v as f32 * 0.37).sin()).collect(),
        &[m, k],
    )
    .unwrap();
    let b_mat = Tensor::from_vec(
        (0..k * n).map(|v| (v as f32 * 0.23).cos()).collect(),
        &[k, n],
    )
    .unwrap();
    c.bench_function("matmul/blocked_256x512x256", |b| {
        b.iter(|| black_box(black_box(&a).matmul(black_box(&b_mat))))
    });
    c.bench_function("matmul/naive_256x512x256", |b| {
        b.iter(|| {
            black_box(rlnoc_nn::reference::matmul_naive(
                black_box(&a),
                black_box(&b_mat),
            ))
        })
    });

    // Convolution at the paper-8x8 net's stage-2 shape: im2col+GEMM vs the
    // direct 7-deep loop nest.
    use rlnoc_nn::layers::{Conv2d, Layer};
    let x = Tensor::from_vec(
        (0..16 * 32 * 32).map(|v| (v as f32 * 0.11).sin()).collect(),
        &[1, 16, 32, 32],
    )
    .unwrap();
    let mut conv = Conv2d::new(16, 32, 3, 0);
    c.bench_function("conv/im2col_16c_to_32c_32x32", |b| {
        b.iter(|| black_box(conv.forward(black_box(&x), false)))
    });
    let w = Tensor::zeros(&[32, 16, 3, 3]);
    let bias = Tensor::zeros(&[32]);
    c.bench_function("conv/naive_16c_to_32c_32x32", |b| {
        b.iter(|| {
            black_box(rlnoc_nn::reference::conv2d_naive(
                black_box(&x),
                black_box(&w),
                black_box(&bias),
            ))
        })
    });
    rlnoc_nn::kernels::set_matmul_threads(0);
}

fn bench_sim(c: &mut Criterion) {
    let grid = Grid::square(8).unwrap();
    let topo = rec_topology(grid).unwrap();
    let cfg = SimConfig::routerless();
    c.bench_function("sim/routerless_1k_cycles_8x8", |b| {
        b.iter(|| {
            let mut sim = RouterlessSim::new(&topo);
            let mut gen = rlnoc_sim::traffic::TrafficGen::new(grid, Pattern::UniformRandom, 0.1, 3);
            for cycle in 0..1_000u64 {
                for p in rlnoc_sim::PacketSource::generate(&mut gen, cycle, &cfg, false) {
                    sim.offer(p);
                }
                sim.tick(cycle);
                black_box(sim.take_deliveries());
            }
        })
    });
    c.bench_function("sim/mesh2_1k_cycles_8x8", |b| {
        b.iter(|| {
            let mut sim = MeshSim::mesh2(grid);
            let mut gen = rlnoc_sim::traffic::TrafficGen::new(grid, Pattern::UniformRandom, 0.1, 3);
            let mcfg = SimConfig::mesh();
            for cycle in 0..1_000u64 {
                for p in rlnoc_sim::PacketSource::generate(&mut gen, cycle, &mcfg, false) {
                    sim.offer(p);
                }
                sim.tick(cycle);
                black_box(sim.take_deliveries());
            }
        })
    });
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("baselines/rec_8x8", |b| {
        b.iter(|| black_box(rec_topology(Grid::square(8).unwrap()).unwrap()))
    });
    let topo = rec_topology(Grid::square(8).unwrap()).unwrap();
    c.bench_function("routing/table_build_8x8", |b| {
        b.iter(|| black_box(RoutingTable::build(black_box(&topo))))
    });
    c.bench_function("topology/clone_8x8", |b| {
        b.iter(|| black_box(Topology::clone(black_box(&topo))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hop_matrix, bench_greedy, bench_mcts, bench_nn, bench_kernels, bench_sim, bench_construction
}
criterion_main!(benches);
