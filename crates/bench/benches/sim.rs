//! Criterion benchmarks for the simulator cycle kernel: `sim_tick`
//! throughput for the routerless and mesh fabrics at the paper's grid
//! sizes (4x4, 8x8, 10x10), at low load and near saturation, with the
//! retained reference kernels alongside for direct comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rlnoc_baselines::rec_topology;
use rlnoc_sim::reference::{ReferenceMeshSim, ReferenceRouterlessSim};
use rlnoc_sim::traffic::{Pattern, TrafficGen};
use rlnoc_sim::{MeshSim, Network, SimConfig};
use rlnoc_topology::Grid;

const CYCLES: u64 = 1_000;

/// Drives `net` for [`CYCLES`] cycles through the sink-based zero-alloc
/// loop (fresh traffic each iteration, buffers reused across cycles).
fn drive<N: Network>(net: &mut N, grid: Grid, rate: f64, cfg: &SimConfig) {
    let mut gen = TrafficGen::new(grid, Pattern::UniformRandom, rate, 3);
    let mut fresh = Vec::new();
    let mut delivered = Vec::new();
    for cycle in 0..CYCLES {
        fresh.clear();
        gen.generate_into(cycle, cfg, false, &mut fresh);
        for p in fresh.drain(..) {
            net.offer(p);
        }
        net.tick(cycle);
        delivered.clear();
        net.drain_deliveries(&mut delivered);
        black_box(delivered.len());
    }
}

fn bench_sim_tick(c: &mut Criterion) {
    let rl_cfg = SimConfig::routerless();
    let mesh_cfg = SimConfig::mesh();
    for n in [4usize, 8, 10] {
        let grid = Grid::square(n).unwrap();
        let rec = rec_topology(grid).unwrap();
        // The mesh saturates far below the routerless fabrics, so its
        // "near-saturation" point sits at a lower injection rate.
        for (load, rl_rate, mesh_rate) in [("low", 0.05, 0.05), ("near_sat", 0.25, 0.10)] {
            c.bench_function(&format!("sim_tick/routerless_{n}x{n}_{load}"), |b| {
                b.iter(|| {
                    let mut sim = rlnoc_sim::RouterlessSim::new(&rec);
                    drive(&mut sim, grid, rl_rate, &rl_cfg);
                })
            });
            c.bench_function(&format!("sim_tick/routerless_ref_{n}x{n}_{load}"), |b| {
                b.iter(|| {
                    let mut sim = ReferenceRouterlessSim::new(&rec);
                    drive(&mut sim, grid, rl_rate, &rl_cfg);
                })
            });
            c.bench_function(&format!("sim_tick/mesh2_{n}x{n}_{load}"), |b| {
                b.iter(|| {
                    let mut sim = MeshSim::mesh2(grid);
                    drive(&mut sim, grid, mesh_rate, &mesh_cfg);
                })
            });
            c.bench_function(&format!("sim_tick/mesh2_ref_{n}x{n}_{load}"), |b| {
                b.iter(|| {
                    let mut sim = ReferenceMeshSim::mesh2(grid);
                    drive(&mut sim, grid, mesh_rate, &mesh_cfg);
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_tick
}
criterion_main!(benches);
