//! Machine-readable kernel throughput snapshot.
//!
//! Times the hot inference paths behind every experiment — blocked GEMM,
//! im2col convolution, the full policy/value forward at the paper's grid
//! sizes, and cached vs uncached exploration cycles — against the retained
//! naive reference kernels, then writes everything to `BENCH_kernels.json`
//! so perf changes across commits are diffable.
//!
//! All kernel timings pin the matmul to a single thread; the parallel path
//! only adds on top and would make runs incomparable across hosts.
//!
//! Usage: `bench_kernels_json [out_path]` (default `BENCH_kernels.json`).

use rlnoc_core::explorer::ExplorerConfig;
use rlnoc_core::parallel::explore_parallel;
use rlnoc_core::routerless::RouterlessEnv;
use rlnoc_nn::layers::{Conv2d, Layer, MaxPool2d};
use rlnoc_nn::{reference, PolicyValueConfig, PolicyValueNet, Tensor};
use rlnoc_topology::Grid;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Mean seconds per call: one warmup, then repeat until both `MIN_REPS`
/// calls and `MIN_SECS` of wall clock have accumulated.
fn time_secs(mut f: impl FnMut()) -> f64 {
    const MIN_REPS: u32 = 3;
    const MIN_SECS: f64 = 0.25;
    f();
    let start = Instant::now();
    let mut reps = 0u32;
    while reps < MIN_REPS || start.elapsed().as_secs_f64() < MIN_SECS {
        f();
        reps += 1;
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn wave(len: usize, step: f32) -> Vec<f32> {
    (0..len).map(|v| (v as f32 * step).sin()).collect()
}

/// Every convolution shape `(in_c, out_c, k, side)` in the paper network,
/// derived from its config: stem + residual pair per stage, three head
/// convs at the final side.
fn conv_shapes(cfg: &PolicyValueConfig) -> Vec<(usize, usize, usize, usize)> {
    let mut shapes = Vec::new();
    let mut side = cfg.input_side;
    let mut prev = 1;
    for (i, &c) in cfg.channels.iter().enumerate() {
        let k = if i == 0 { cfg.stem_kernel } else { 3 };
        shapes.push((prev, c, k, side));
        shapes.push((c, c, 3, side)); // residual block
        shapes.push((c, c, 3, side));
        if i + 1 < cfg.channels.len() {
            side = MaxPool2d::out_side(side);
        }
        prev = c;
    }
    for _ in 0..3 {
        shapes.push((prev, 2, 3, side)); // coord / dir / value heads
    }
    shapes
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    rlnoc_nn::kernels::set_matmul_threads(1);

    // --- Blocked GEMM vs naive oracle -----------------------------------
    let (m, k, n) = (256usize, 512, 256);
    let a = Tensor::from_vec(wave(m * k, 0.37), &[m, k]).expect("LHS data sized m*k");
    let b = Tensor::from_vec(wave(k * n, 0.23), &[k, n]).expect("RHS data sized k*n");
    let matmul_blocked = time_secs(|| {
        black_box(black_box(&a).matmul(black_box(&b)));
    });
    let matmul_naive = time_secs(|| {
        black_box(reference::matmul_naive(black_box(&a), black_box(&b)));
    });

    // --- im2col conv vs naive at the paper-8x8 stage-2 shape ------------
    let x = Tensor::from_vec(wave(16 * 32 * 32, 0.11), &[1, 16, 32, 32])
        .expect("conv input data sized 16*32*32");
    let mut conv = Conv2d::new(16, 32, 3, 0);
    let conv_im2col = time_secs(|| {
        black_box(conv.forward(black_box(&x), false));
    });
    let w = Tensor::from_vec(wave(32 * 16 * 9, 0.19), &[32, 16, 3, 3])
        .expect("conv weight data sized 32*16*3*3");
    let bias = Tensor::zeros(&[32]);
    let conv_naive = time_secs(|| {
        black_box(reference::conv2d_naive(
            black_box(&x),
            black_box(&w),
            black_box(&bias),
        ));
    });

    // --- Full net forward at the paper's grid sizes ---------------------
    let mut net_rows = String::new();
    let mut forward_8x8 = f64::NAN;
    for grid_n in [4usize, 8, 10] {
        let cfg = PolicyValueConfig::paper(grid_n);
        let side = cfg.input_side;
        let mut net = PolicyValueNet::new(cfg, 1);
        let state = Tensor::zeros(&[1, 1, side, side]);
        let secs = time_secs(|| {
            black_box(net.forward(black_box(&state), false));
        });
        if grid_n == 8 {
            forward_8x8 = secs;
        }
        let _ = write!(
            net_rows,
            "{}\n    \"paper_{grid_n}x{grid_n}\": {{ \"ms_per_forward\": {:.3}, \"forwards_per_sec\": {:.2} }}",
            if net_rows.is_empty() { "" } else { "," },
            secs * 1e3,
            1.0 / secs
        );
    }

    // --- Naive-equivalent forward at paper 8x8 --------------------------
    // Replace each convolution's measured time with the naive loop nest's
    // time for the identical shape; everything else in the forward is
    // unchanged, so this estimates what the pre-im2col network cost.
    let cfg8 = PolicyValueConfig::paper(8);
    let mut conv_opt_total = 0.0f64;
    let mut conv_naive_total = 0.0f64;
    for &(ic, oc, kk, side) in &conv_shapes(&cfg8) {
        let x = Tensor::from_vec(wave(ic * side * side, 0.13), &[1, ic, side, side])
            .expect("layer input data sized ic*side*side");
        let mut c = Conv2d::new(ic, oc, kk, 0);
        conv_opt_total += time_secs(|| {
            black_box(c.forward(black_box(&x), false));
        });
        let w = Tensor::from_vec(wave(oc * ic * kk * kk, 0.29), &[oc, ic, kk, kk])
            .expect("layer weight data sized oc*ic*k*k");
        let bias = Tensor::zeros(&[oc]);
        conv_naive_total += time_secs(|| {
            black_box(reference::conv2d_naive(
                black_box(&x),
                black_box(&w),
                black_box(&bias),
            ));
        });
    }
    let forward_8x8_naive_est = forward_8x8 - conv_opt_total + conv_naive_total;
    let forward_speedup = forward_8x8_naive_est / forward_8x8;

    // --- Cached vs uncached exploration cycles --------------------------
    rlnoc_nn::kernels::set_matmul_threads(0);
    let env = RouterlessEnv::new(Grid::square(4).expect("4x4 grid is within bounds"), 6);
    let cycles = 6usize;
    let mut cached_cfg = ExplorerConfig::fast();
    cached_cfg.eval_cache_capacity = 4096;
    let mut uncached_cfg = cached_cfg.clone();
    uncached_cfg.eval_cache_capacity = 0;

    let start = Instant::now();
    let cached_report = explore_parallel(&env, &cached_cfg, 1, cycles, 7);
    let cached_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let _ = explore_parallel(&env, &uncached_cfg, 1, cycles, 7);
    let uncached_secs = start.elapsed().as_secs_f64();
    let stats = cached_report.cache_stats;

    let json = format!(
        r#"{{
  "matmul": {{
    "shape": [{m}, {k}, {n}],
    "blocked_ops_per_sec": {:.2},
    "naive_ops_per_sec": {:.2},
    "speedup": {:.2}
  }},
  "conv_forward": {{
    "shape": "1x16x32x32 -> 32c, k3",
    "im2col_ops_per_sec": {:.2},
    "naive_ops_per_sec": {:.2},
    "speedup": {:.2}
  }},
  "net_forward": {{{net_rows},
    "paper_8x8_naive_est_ms": {:.3},
    "paper_8x8_speedup_vs_naive": {:.2}
  }},
  "explorer_cycles": {{
    "grid": "4x4",
    "cycles": {cycles},
    "cached_cycles_per_sec": {:.3},
    "uncached_cycles_per_sec": {:.3},
    "cache_hits": {},
    "cache_misses": {},
    "cache_hit_rate": {:.3}
  }}
}}
"#,
        1.0 / matmul_blocked,
        1.0 / matmul_naive,
        matmul_naive / matmul_blocked,
        1.0 / conv_im2col,
        1.0 / conv_naive,
        conv_naive / conv_im2col,
        forward_8x8_naive_est * 1e3,
        forward_speedup,
        cycles as f64 / cached_secs,
        cycles as f64 / uncached_secs,
        stats.hits,
        stats.misses,
        stats.hit_rate(),
    );
    print!("{json}");
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("(wrote {out_path})"),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }
}
