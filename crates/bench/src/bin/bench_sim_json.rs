//! Machine-readable simulator throughput snapshot.
//!
//! Times the allocation-free cycle kernels (`RouterlessSim`, `MeshSim`)
//! against the retained seed-faithful reference kernels
//! (`rlnoc_sim::reference`) at the paper's grid sizes under low and
//! near-saturation load, then times a full 8x8 multi-pattern sweep on the
//! old stack (serial `latency_sweep` over the reference kernel) vs the new
//! one (`SweepEngine::sweep_many` over the optimized kernel). The sweep
//! comparison asserts bit-identical `SweepResult`s across reference vs
//! optimized and serial vs parallel before reporting the speedup, so the
//! number is apples-to-apples by construction. Everything is written to
//! `BENCH_sim.json` so perf changes across commits are diffable.
//!
//! Usage: `bench_sim_json [--smoke] [out_path]` (default `BENCH_sim.json`;
//! `--smoke` shrinks cycle counts for CI).

use rlnoc_baselines::rec_topology;
use rlnoc_sim::reference::{ReferenceMeshSim, ReferenceRouterlessSim};
use rlnoc_sim::sweep::{latency_sweep, SweepEngine, SweepJob, SweepParams, SweepResult};
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{run_synthetic, MeshSim, Network, RouterlessSim, SimConfig};
use rlnoc_topology::{Grid, Topology};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Mean seconds per run: one warmup, then repeat until both `min_reps`
/// runs and `min_secs` of wall clock have accumulated.
fn time_secs(min_reps: u32, min_secs: f64, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    let mut reps = 0u32;
    while reps < min_reps || start.elapsed().as_secs_f64() < min_secs {
        f();
        reps += 1;
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

struct Knobs {
    cfg_cycles: (u64, u64, u64),
    sweep_cycles: (u64, u64, u64),
    sweep_step: f64,
    min_reps: u32,
    min_secs: f64,
}

impl Knobs {
    fn full() -> Self {
        Knobs {
            cfg_cycles: (500, 3_000, 2_000),
            sweep_cycles: (500, 4_000, 2_000),
            sweep_step: 0.02,
            min_reps: 2,
            min_secs: 0.25,
        }
    }

    fn smoke() -> Self {
        Knobs {
            cfg_cycles: (100, 400, 300),
            sweep_cycles: (100, 300, 200),
            sweep_step: 0.08,
            min_reps: 1,
            min_secs: 0.0,
        }
    }
}

fn routerless_cfg(k: &Knobs) -> SimConfig {
    SimConfig {
        warmup: k.cfg_cycles.0,
        measure: k.cfg_cycles.1,
        drain: k.cfg_cycles.2,
        ..SimConfig::routerless()
    }
}

fn mesh_cfg(k: &Knobs) -> SimConfig {
    SimConfig {
        warmup: k.cfg_cycles.0,
        measure: k.cfg_cycles.1,
        drain: k.cfg_cycles.2,
        ..SimConfig::mesh()
    }
}

/// Simulated cycles per wall-clock second for one fabric at one load.
fn cycles_per_sec<N: Network>(
    k: &Knobs,
    mut mk: impl FnMut() -> N,
    pattern: Pattern,
    rate: f64,
    cfg: &SimConfig,
    seed: u64,
) -> f64 {
    let total = (cfg.warmup + cfg.measure + cfg.drain) as f64;
    let secs = time_secs(k.min_reps, k.min_secs, || {
        let mut net = mk();
        black_box(run_synthetic(&mut net, pattern, rate, cfg, seed));
    });
    total / secs
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_sim.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let k = if smoke { Knobs::smoke() } else { Knobs::full() };

    // --- Cycle-kernel throughput: optimized vs reference ----------------
    // Low load exercises the empty-lane scan; the higher rate keeps the
    // fabrics near (injection-limited past) saturation, where flit motion
    // and the reference kernel's per-tick allocations dominate.
    let rl_cfg = routerless_cfg(&k);
    let m_cfg = mesh_cfg(&k);
    let mut kernel_rows = String::new();
    let mut kernel_speedups = Vec::new();
    for n in [4usize, 8, 10] {
        let grid = Grid::square(n).expect("grid");
        let rec = rec_topology(grid).expect("REC");
        for (load, rl_rate, mesh_rate) in [("low", 0.05, 0.05), ("near_sat", 0.25, 0.10)] {
            let seed = 21 + n as u64;
            let cases: [(&str, f64, f64); 2] = [
                (
                    "routerless",
                    cycles_per_sec(
                        &k,
                        || RouterlessSim::new(&rec),
                        Pattern::UniformRandom,
                        rl_rate,
                        &rl_cfg,
                        seed,
                    ),
                    cycles_per_sec(
                        &k,
                        || ReferenceRouterlessSim::new(&rec),
                        Pattern::UniformRandom,
                        rl_rate,
                        &rl_cfg,
                        seed,
                    ),
                ),
                (
                    "mesh2",
                    cycles_per_sec(
                        &k,
                        || MeshSim::mesh2(grid),
                        Pattern::UniformRandom,
                        mesh_rate,
                        &m_cfg,
                        seed,
                    ),
                    cycles_per_sec(
                        &k,
                        || ReferenceMeshSim::mesh2(grid),
                        Pattern::UniformRandom,
                        mesh_rate,
                        &m_cfg,
                        seed,
                    ),
                ),
            ];
            for (fabric, opt, reference) in cases {
                kernel_speedups.push(opt / reference);
                let _ = write!(
                    kernel_rows,
                    "{}\n    \"{fabric}_{n}x{n}_{load}\": {{ \"optimized_cycles_per_sec\": {opt:.0}, \"reference_cycles_per_sec\": {reference:.0}, \"speedup\": {:.2} }}",
                    if kernel_rows.is_empty() { "" } else { "," },
                    opt / reference,
                );
            }
        }
    }

    // --- 8x8 multi-pattern sweep: old stack vs new stack ----------------
    let grid = Grid::square(8).expect("grid");
    let rec = rec_topology(grid).expect("REC");
    let sweep_cfg = SimConfig {
        warmup: k.sweep_cycles.0,
        measure: k.sweep_cycles.1,
        drain: k.sweep_cycles.2,
        ..SimConfig::routerless()
    };
    let params = SweepParams {
        start: k.sweep_step,
        step: k.sweep_step,
        max_rate: 0.6,
        latency_factor: 4.0,
        seed: 33,
    };

    let run_serial = |mk: &dyn Fn(&Topology) -> Box<dyn Network>| -> Vec<SweepResult> {
        Pattern::ALL
            .iter()
            .map(|&pattern| {
                latency_sweep(
                    || mk(&rec),
                    pattern,
                    &sweep_cfg,
                    params.start,
                    params.step,
                    params.max_rate,
                    params.latency_factor,
                    params.seed,
                )
            })
            .collect()
    };
    let jobs: Vec<SweepJob<'_>> = Pattern::ALL
        .iter()
        .map(|&pattern| {
            SweepJob::new(
                format!("{pattern:?}/REC"),
                pattern,
                sweep_cfg.clone(),
                params,
                || RouterlessSim::new(&rec),
            )
        })
        .collect();
    let engine = SweepEngine::available();

    let start = Instant::now();
    let baseline = run_serial(&|t| Box::new(ReferenceRouterlessSim::new(t)));
    let serial_reference_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let results = engine.sweep_many(&jobs);
    let engine_optimized_secs = start.elapsed().as_secs_f64();

    // Bit-identity: the optimized engine run must reproduce both the
    // reference kernel's curves and a fully serial optimized run.
    assert_eq!(
        results, baseline,
        "optimized engine sweep diverged from the serial reference sweep"
    );
    assert_eq!(
        results,
        SweepEngine::serial().sweep_many(&jobs),
        "parallel sweep diverged from the serial schedule"
    );
    let sweep_speedup = serial_reference_secs / engine_optimized_secs;

    let json = format!(
        r#"{{
  "mode": "{}",
  "kernel_cycles_per_sec": {{{kernel_rows}
  }},
  "kernel_speedup_min": {:.2},
  "kernel_speedup_max": {:.2},
  "sweep_8x8_multi_pattern": {{
    "patterns": {},
    "threads": {},
    "serial_reference_secs": {serial_reference_secs:.3},
    "engine_optimized_secs": {engine_optimized_secs:.3},
    "speedup": {sweep_speedup:.2},
    "bit_identical": true
  }}
}}
"#,
        if smoke { "smoke" } else { "full" },
        kernel_speedups.iter().copied().fold(f64::MAX, f64::min),
        kernel_speedups.iter().copied().fold(f64::MIN, f64::max),
        Pattern::ALL.len(),
        engine.threads(),
    );
    print!("{json}");
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("(wrote {out_path})"),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }
}
