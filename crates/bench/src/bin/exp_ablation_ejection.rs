//! Ablation — ejection bandwidth at the routerless node interface.
//!
//! REC (and this reproduction's default model) gives every loop its own
//! ejection link, so arriving flits never wait; a cheaper shared-port
//! interface deflects flits around their loop when the port is busy. This
//! ablation quantifies the latency and deflection cost of shared ports,
//! motivating the paper's interface design.
//!
//! Usage: `exp_ablation_ejection [n] [rate] [measure_cycles]`
//! (defaults 8, 0.20, 4000).

use rlnoc_bench::{drl_topology, print_table, s, write_csv, Effort};
use rlnoc_sim::sweep::SweepEngine;
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{run_synthetic, RouterlessSim, SimConfig};
use rlnoc_topology::Grid;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let rate: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.20);
    let measure: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4_000);
    let grid = Grid::square(n).expect("grid");
    let topo = drl_topology(grid, 2 * (n as u32 - 1), Effort::from_env(), 3);
    let cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 4_000,
        ..SimConfig::routerless()
    };

    let limits = [Some(1usize), Some(2), Some(4), None];
    let rows = SweepEngine::available().map(&limits, |_, &limit| {
        let mut sim = RouterlessSim::new(&topo);
        sim.set_ejection_limit(limit);
        let m = run_synthetic(&mut sim, Pattern::UniformRandom, rate, &cfg, 11);
        vec![
            limit.map_or_else(|| s("per-loop (REC)"), |l| format!("{l}/node")),
            format!("{:.2}", m.avg_packet_latency()),
            format!("{:.2}", m.avg_hops()),
            format!("{:.3}", m.accepted_throughput()),
            s(sim.deflections()),
            format!("{:.3}", m.delivery_ratio()),
        ]
    });

    let headers = [
        "ejection_ports",
        "latency",
        "hops",
        "accepted",
        "deflections",
        "delivery",
    ];
    print_table(
        &format!("Ablation: ejection bandwidth, {n}x{n} DRL design, uniform {rate}"),
        &headers,
        &rows,
    );
    write_csv("exp_ablation_ejection", &headers, &rows);
}
