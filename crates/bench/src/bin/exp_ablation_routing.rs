//! Ablation — source-routing policy (see `DESIGN.md` §4).
//!
//! Routerless NoCs route entirely at the source via a per-destination loop
//! table. The paper's designs implicitly use shortest-loop tables; this
//! ablation measures what tie-aware load balancing buys on adversarial
//! patterns, where shortest-only tables concentrate whole traffic classes
//! onto single loops.
//!
//! Usage: `exp_ablation_routing [n] [measure_cycles]` (defaults 8, 3000).

use rlnoc_bench::{drl_topology, print_table, s, write_csv, Effort};
use rlnoc_sim::sweep::{SweepEngine, SweepJob, SweepParams};
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{RouterlessSim, SimConfig};
use rlnoc_topology::{Grid, RoutingPolicy, RoutingTable};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let measure: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3_000);
    let grid = Grid::square(n).expect("grid");
    let topo = drl_topology(grid, 2 * (n as u32 - 1), Effort::from_env(), 3);
    let cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::routerless()
    };

    let policies = [
        ("shortest", RoutingPolicy::Shortest),
        ("balanced(0)", RoutingPolicy::Balanced { slack: 0 }),
        ("balanced(2)", RoutingPolicy::Balanced { slack: 2 }),
        ("balanced(4)", RoutingPolicy::Balanced { slack: 4 }),
    ];

    let params = SweepParams {
        start: 0.02,
        step: 0.02,
        max_rate: 0.8,
        latency_factor: 4.0,
        seed: 5,
    };

    // One batched engine run over all pattern x policy sweeps.
    let mut jobs = Vec::new();
    let mut meta = Vec::new();
    for pattern in [
        Pattern::UniformRandom,
        Pattern::BitComplement,
        Pattern::Transpose,
        Pattern::Tornado,
    ] {
        for (name, policy) in policies {
            let table = RoutingTable::build_with(&topo, policy);
            let avg = table.average_hops().unwrap_or(0.0);
            let topo = &topo;
            jobs.push(SweepJob::new(
                format!("{pattern:?}/{name}"),
                pattern,
                cfg.clone(),
                params,
                move || RouterlessSim::with_routing(topo, table.clone()),
            ));
            meta.push((pattern, name, avg));
        }
    }
    let results = SweepEngine::available().sweep_many(&jobs);

    let mut rows = Vec::new();
    for ((pattern, name, avg), sweep) in meta.iter().zip(&results) {
        rows.push(vec![
            format!("{pattern:?}"),
            s(name),
            format!("{avg:.3}"),
            format!("{:.2}", sweep.zero_load_latency),
            format!("{:.3}", sweep.saturation),
        ]);
    }

    let headers = [
        "pattern",
        "routing",
        "table_hops",
        "zero_load_latency",
        "saturation",
    ];
    print_table(
        &format!("Ablation: routing policy on the {n}x{n} DRL design"),
        &headers,
        &rows,
    );
    write_csv("exp_ablation_routing", &headers, &rows);
}
