//! Ablation — MCTS-guided search vs experience replay vs pure greedy
//! (the paper's §4.5 design-choice discussion).
//!
//! The paper argues the Monte-Carlo tree beats replay buffers for design
//! exploration because it preserves the correlation between design states.
//! This ablation runs three agents under the same cycle budget on the same
//! environment:
//!
//! - **mcts**: the full framework (DNN + tree + ε-greedy),
//! - **replay**: DNN + replay-buffer training, actions sampled from the
//!   policy with the same ε-greedy override, no tree,
//! - **greedy**: ε = 1 (Algorithm 1 only, no learning).
//!
//! Usage: `exp_ablation_search [n] [cycles]` (defaults 4, 8).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlnoc_bench::{f3, print_table, s, write_csv};
use rlnoc_core::explorer::{run_episode, Explorer, ExplorerConfig};
use rlnoc_core::mcts::Mcts;
use rlnoc_core::policy::{PolicyAgent, TrainConfig};
use rlnoc_core::replay::{train_on_replay, ReplayBuffer};
use rlnoc_core::routerless::RouterlessEnv;
use rlnoc_core::{Environment, NoCache};
use rlnoc_topology::Grid;

struct Outcome {
    valid: usize,
    best_hops: Option<f64>,
}

fn summarize(results: Vec<(bool, f64)>) -> Outcome {
    let valid = results.iter().filter(|(ok, _)| *ok).count();
    let best_hops = results
        .iter()
        .filter(|(ok, _)| *ok)
        .map(|&(_, h)| h)
        .min_by(f64::total_cmp);
    Outcome { valid, best_hops }
}

fn run_mcts(env: &RouterlessEnv, config: &ExplorerConfig, cycles: usize, seed: u64) -> Outcome {
    let mut cfg = config.clone();
    cfg.cycles = cycles;
    let report = Explorer::new(env.clone(), cfg, seed).run();
    summarize(
        report
            .designs
            .into_iter()
            .map(|d| (d.successful, d.env.average_hops()))
            .collect(),
    )
}

fn run_replay(env: &RouterlessEnv, config: &ExplorerConfig, cycles: usize, seed: u64) -> Outcome {
    let mut env = env.clone();
    let mut agent = PolicyAgent::for_env(&env, config.train.clone(), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut buffer = ReplayBuffer::new(2048);
    // A throwaway tree that is never trained on: selection still needs a
    // source of actions, so we reuse the episode runner with an empty tree
    // per cycle (no knowledge carries over — that is the ablation).
    let mut results = Vec::new();
    let mut cache = NoCache;
    for _ in 0..cycles {
        let mut blank_tree = Mcts::new(config.mcts);
        let (episode, _path) = run_episode(
            &mut env,
            &mut agent,
            &mut blank_tree,
            &mut cache,
            config,
            &mut rng,
        );
        buffer.push_episode(&env, &episode, config.train.gamma);
        for _ in 0..4 {
            train_on_replay(&mut agent, &buffer, 16, &mut rng);
        }
        results.push((env.is_successful(), env.average_hops()));
    }
    summarize(results)
}

fn run_greedy(env: &RouterlessEnv, cycles: usize) -> Outcome {
    // Deterministic: every cycle produces the same design.
    let mut e = env.clone();
    while let Some(a) = e.greedy_action() {
        e.apply(a);
    }
    let ok = e.is_fully_connected();
    summarize(vec![(ok, e.average_hops()); cycles])
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let cycles: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let grid = Grid::square(n).expect("grid");
    let cap = 2 * (n as u32 - 1);
    let env = RouterlessEnv::new(grid, cap);
    let mut config = ExplorerConfig::fast();
    config.max_steps = (grid.len() / 8).max(4);
    config.epsilon = 0.3;
    config.train = TrainConfig::default();

    let rows: Vec<Vec<String>> = [
        ("mcts", run_mcts(&env, &config, cycles, 11)),
        ("replay", run_replay(&env, &config, cycles, 11)),
        ("greedy", run_greedy(&env, cycles)),
    ]
    .into_iter()
    .map(|(name, o)| {
        vec![
            s(name),
            s(cycles),
            s(o.valid),
            o.best_hops.map_or_else(|| s("-"), f3),
        ]
    })
    .collect();

    let headers = ["strategy", "cycles", "valid_designs", "best_hops"];
    print_table(
        &format!("Ablation (§4.5): search memory, {n}x{n} cap {cap}"),
        &headers,
        &rows,
    );
    write_csv("exp_ablation_search", &headers, &rows);
    println!(
        "\nReading: greedy is reliable but fixed; replay learns yet forgets design\n\
         structure between cycles; the tree accumulates it (the paper's argument\n\
         for MCTS over experience replay)."
    );
}
