//! §2.1 background — hop-count scaling of the fabric families the paper
//! surveys before motivating routerless designs: single ring, hierarchical
//! ring, mesh, REC, and DRL.
//!
//! Usage: `exp_background_fabrics [max_n]` (default 10, even sizes only).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{f3, greedy_rollout, print_table, s, write_csv};
use rlnoc_topology::reference::{single_ring_average_hops, HierarchicalRing};
use rlnoc_topology::{mesh, Grid};

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let mut rows = Vec::new();
    let mut n = 4;
    while n <= max_n {
        let grid = Grid::square(n).expect("grid");
        let hier = HierarchicalRing::new(grid).expect("n ≥ 2");
        let rec = rec_topology(grid).expect("REC");
        let drl = greedy_rollout(grid, 2 * (n as u32 - 1));
        rows.push(vec![
            format!("{n}x{n}"),
            f3(single_ring_average_hops(grid.len())),
            f3(hier.average_hops()),
            f3(mesh::average_hops(&grid)),
            f3(rec.average_hops()),
            f3(drl.average_hops()),
        ]);
        n += 2;
    }

    let headers = ["size", "single_ring", "hier_ring", "mesh", "REC", "DRL"];
    print_table(
        "Background (§2.1): average hop count by fabric family",
        &headers,
        &rows,
    );
    write_csv("exp_background_fabrics", &headers, &rows);
    println!(
        "\nReading: single rings scale linearly in node count; hierarchy helps but\n\
         routers pay per-hop latency; routerless designs approach mesh hop counts\n\
         while keeping single-cycle hops (§2.1's motivation; see fig10/fig11 for\n\
         the latency consequences).\nNote: {}",
        s("mesh hops assume 2-cycle routers in latency terms — compare via fig10.")
    );
}
