//! Chaos harness experiment: the resilience layer under injected faults.
//!
//! Runs the supervised parallel learner through a scenario matrix — one
//! scenario per fault class (NaN gradients, exploding norms, NaN
//! parameters, worker panics, stalls) plus a seed-scheduled mix — at 1 and
//! 8 threads, and verifies the tentpole contract dynamically:
//!
//! - **1 thread**: recovery is asserted as *bit identity* — the per-cycle
//!   outcomes and training history of every faulted run must equal the
//!   clean run's exactly.
//! - **8 threads**: interleaving is nondeterministic even without faults,
//!   so the assertion is completion (every requested cycle finishes) plus
//!   fault accounting (each injected fault was detected and survived).
//!
//! `--smoke` shortens the runs for CI. Anomaly-counter telemetry goes to
//! `results/exp_chaos.telemetry.jsonl`.

use rlnoc_bench::{print_table, s, write_telemetry};
use rlnoc_core::parallel::explore_parallel_supervised;
use rlnoc_core::{ChaosInjector, ChaosPlan, ExplorerConfig, RouterlessEnv, SupervisionConfig};
use rlnoc_telemetry::TelemetrySink;
use rlnoc_topology::Grid;
use std::time::Duration;

const SEED: u64 = 11;

fn env3() -> RouterlessEnv {
    RouterlessEnv::new(Grid::square(3).expect("3x3 grid is within bounds"), 4)
}

/// One named fault scenario: the plan to inject and the policy tweaks it
/// needs (the exploding-norm scenario arms the EWMA sentinel early; the
/// stall scenario tightens the watchdog so CI never waits out a window).
struct Scenario {
    name: &'static str,
    plan: fn(usize) -> ChaosPlan,
    tweak: fn(&mut ExplorerConfig),
    /// Whether single-thread recovery is asserted as bit identity. True
    /// for every deterministic injection; false only for the seeded
    /// schedule, where an explosion can land before the sentinel's warmup
    /// and be (correctly) clipped rather than rejected.
    bit_exact: bool,
}

fn no_tweak(_: &mut ExplorerConfig) {}

fn arm_sentinel(c: &mut ExplorerConfig) {
    // Warmup 0 arms the sentinel before the first step, so detection does
    // not depend on which cycle a worker happens to step first at 8
    // threads. The floor-based threshold (ewma_mult x ewma_floor = 1e3)
    // sits far above sane pre-clip norms and far below the 1e12-scaled
    // injection.
    c.resilience.anomaly.ewma_warmup = 0;
    c.resilience.anomaly.ewma_mult = 1e3;
}

fn tight_watchdog(c: &mut ExplorerConfig) {
    c.resilience.watchdog.deadline = Duration::from_millis(200);
    c.resilience.watchdog.poll = Duration::from_millis(25);
}

fn arm_and_tighten(c: &mut ExplorerConfig) {
    arm_sentinel(c);
    tight_watchdog(c);
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "nan_grad",
            plan: |_| {
                let mut p = ChaosPlan::none();
                p.nan_grad_cycles = vec![1];
                p
            },
            tweak: no_tweak,
            bit_exact: true,
        },
        Scenario {
            name: "explode_grad",
            plan: |_| {
                let mut p = ChaosPlan::none();
                p.explode_grad_cycles = vec![2];
                p
            },
            tweak: arm_sentinel,
            bit_exact: true,
        },
        Scenario {
            name: "nan_param",
            plan: |_| {
                let mut p = ChaosPlan::none();
                p.nan_param_cycles = vec![1];
                p
            },
            tweak: no_tweak,
            bit_exact: true,
        },
        Scenario {
            name: "worker_panic",
            plan: |_| {
                let mut p = ChaosPlan::none();
                p.panic_cycles = vec![1];
                p
            },
            tweak: no_tweak,
            bit_exact: true,
        },
        Scenario {
            name: "stall",
            plan: |_| {
                let mut p = ChaosPlan::none();
                p.stall_cycles = vec![1];
                p.stall_window = Duration::from_secs(10);
                p
            },
            tweak: tight_watchdog,
            bit_exact: true,
        },
        Scenario {
            // Every fault class in one run, on a fixed schedule.
            name: "mixed",
            plan: |_| {
                let mut p = ChaosPlan::none();
                p.panic_cycles = vec![1];
                p.nan_grad_cycles = vec![1];
                p.stall_cycles = vec![2];
                p.explode_grad_cycles = vec![2];
                p.nan_param_cycles = vec![3];
                p.stall_window = Duration::from_secs(10);
                p
            },
            tweak: arm_and_tighten,
            bit_exact: true,
        },
        Scenario {
            // The seed-scheduled round-robin of the chaos suite.
            name: "seeded",
            plan: |cycles| {
                let mut p = ChaosPlan::seeded(23, cycles, 4);
                p.stall_window = Duration::from_secs(10);
                p
            },
            tweak: tight_watchdog,
            bit_exact: false,
        },
    ]
}

fn base_config(sink: &TelemetrySink, tweak: fn(&mut ExplorerConfig)) -> ExplorerConfig {
    let mut c = ExplorerConfig::fast();
    c.max_steps = 30;
    c.telemetry = sink.clone();
    tweak(&mut c);
    c
}

/// Per-cycle outcome signature used for the 1-thread bit-identity check.
fn sig(report: &rlnoc_core::ExploreReport<RouterlessEnv>) -> Vec<(usize, usize, bool, f64)> {
    report
        .designs
        .iter()
        .map(|d| (d.cycle, d.steps, d.successful, d.final_return))
        .collect()
}

fn run(
    config: &ExplorerConfig,
    threads: usize,
    cycles: usize,
) -> rlnoc_core::SupervisedReport<RouterlessEnv> {
    explore_parallel_supervised(
        &env3(),
        config,
        threads,
        cycles,
        SEED,
        SupervisionConfig::default(),
    )
    .expect("every scenario must recover, not fail the run")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cycles = if smoke { 4 } else { 8 };
    let sink = TelemetrySink::enabled();

    let mut rows = Vec::new();
    for threads in [1usize, 8] {
        for sc in scenarios() {
            // The clean baseline this faulted run must replay exactly:
            // same policy tweaks, no chaos. Guards against false trips
            // (an armed sentinel rejecting a sane norm) at the same time.
            let baseline = run(&base_config(&sink, sc.tweak), threads, cycles);
            assert_eq!(
                baseline.supervision.anomalies, 0,
                "{} at {threads} threads: a fault-free run must not trip the checks",
                sc.name
            );

            let mut cfg = base_config(&sink, sc.tweak);
            cfg.resilience.chaos = Some(ChaosInjector::new((sc.plan)(cycles)));
            let chaotic = run(&cfg, threads, cycles);
            let s_ = &chaotic.supervision;

            assert_eq!(
                chaotic.report.cycles_run, cycles,
                "{} at {threads} threads: every requested cycle must finish",
                sc.name
            );
            let fired = s_.anomalies + s_.panics + s_.stalls_detected + s_.stalls_recovered;
            assert!(
                fired > 0,
                "{} at {threads} threads: the injected fault never fired",
                sc.name
            );
            let identical = sig(&chaotic.report) == sig(&baseline.report)
                && chaotic.report.train_history == baseline.report.train_history;
            if threads == 1 && sc.bit_exact {
                assert!(
                    identical,
                    "{} at 1 thread: recovery must be bit-identical to the clean run",
                    sc.name
                );
            }
            rows.push(vec![
                s(sc.name),
                s(threads),
                s(cycles),
                s(s_.anomalies),
                s(s_.rollbacks),
                s(s_.panics),
                s(s_.respawns),
                s(s_.stalls_detected + s_.stalls_recovered),
                s(s_.quarantined),
                s(identical),
            ]);
        }
    }

    print_table(
        "Chaos scenario matrix (recovered runs)",
        &[
            "scenario",
            "threads",
            "cycles",
            "anomalies",
            "rollbacks",
            "panics",
            "respawns",
            "stalls",
            "quarantined",
            "bit_identical",
        ],
        &rows,
    );
    write_telemetry("exp_chaos", &sink);
    let health = rlnoc_telemetry::report::resilience_summary(&sink.events());
    assert!(
        !health.clean(),
        "the injected faults must show up in telemetry"
    );
    println!(
        "resilience counters: {} anomalies ({} rollbacks), {} panics ({} respawned), \
         {} stalls detected ({} recovered), {} quarantined, {} workers lost",
        health.anomalies,
        health.rollbacks,
        health.panics,
        health.respawns,
        health.stalls_detected,
        health.stalls_recovered,
        health.quarantined,
        health.workers_lost
    );
    println!("chaos matrix OK: every scenario recovered at 1 and 8 threads");
}
