//! Fault tolerance under loop failures: the dynamic companion to §6.7.
//!
//! The paper argues DRL topologies are more *reliable* than REC because
//! they give each node pair more loop choices (3.79 vs 2.77 paths/pair at
//! 8x8). `exp_reliability` reproduces that static count; this experiment
//! actually fails k ∈ {0,1,2,3} random loops and measures what survives:
//!
//! - **static**: reachable-pair fraction and degraded average hops from
//!   `RoutingTable::rebuild_excluding` (averaged over fault draws);
//! - **dynamic**: delivered fraction, average latency, and accepted
//!   throughput from `RouterlessSim::with_faults` runs where the loops are
//!   killed mid-warm-up, in-flight flits on them are dropped, and sources
//!   fall back to the degraded routing table.
//!
//! `--smoke` runs a reduced sweep (fewer fault draws, shorter windows) and
//! asserts the headline invariants for CI.

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, f3, print_table, s, write_csv, write_telemetry, Effort};
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{run_synthetic_traced, FaultPlan, RouterlessSim, SimConfig};
use rlnoc_telemetry::TelemetrySink;
use rlnoc_topology::{FaultSet, Grid, RoutingTable, Topology};

/// One design's averaged degradation numbers at a given k.
struct Row {
    reachability: f64,
    avg_hops: f64,
    delivered: f64,
    latency: f64,
    throughput: f64,
}

fn measure(
    topo: &Topology,
    k: usize,
    seeds: &[u64],
    cfg: &SimConfig,
    kill_at: u64,
    mut rec: rlnoc_telemetry::Recorder,
) -> Row {
    let num_loops = topo.loops().len();
    let mut acc = Row {
        reachability: 0.0,
        avg_hops: 0.0,
        delivered: 0.0,
        latency: 0.0,
        throughput: 0.0,
    };
    for &fs in seeds {
        // Static: what the degraded routing table still connects.
        let faults = FaultSet::random_loop_failures(k, num_loops, fs);
        let (_, report) = RoutingTable::rebuild_excluding(topo, &faults);
        acc.reachability += report.reachability();
        acc.avg_hops += report.average_hops.unwrap_or(f64::NAN);

        // Dynamic: kill the same loops mid-warm-up and run traffic.
        let plan = FaultPlan::random_loop_kills(kill_at, k, num_loops, fs);
        let mut sim = RouterlessSim::with_faults(topo, plan);
        let m = run_synthetic_traced(
            &mut sim,
            Pattern::UniformRandom,
            0.08,
            cfg,
            0xFA17 + fs,
            &mut rec,
        );
        acc.delivered += m.delivery_ratio();
        acc.latency += m.avg_packet_latency();
        acc.throughput += m.accepted_throughput();
    }
    let n = seeds.len() as f64;
    Row {
        reachability: acc.reachability / n,
        avg_hops: acc.avg_hops / n,
        delivered: acc.delivered / n,
        latency: acc.latency / n,
        throughput: acc.throughput / n,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let grid = Grid::square(8).expect("8x8 grid");
    let rec = rec_topology(grid).expect("REC");
    let drl = drl_topology(grid, 14, Effort::from_env(), 3);

    let fault_seeds: Vec<u64> = if smoke {
        (0..2).collect()
    } else {
        (0..8).collect()
    };
    let cfg = if smoke {
        SimConfig {
            warmup: 200,
            measure: 800,
            drain: 600,
            ..SimConfig::routerless()
        }
    } else {
        SimConfig {
            warmup: 500,
            measure: 4000,
            drain: 1500,
            ..SimConfig::routerless()
        }
    };
    let kill_at = cfg.warmup / 2;

    let sink = TelemetrySink::enabled();
    let mut rows = Vec::new();
    let mut summary: Vec<(String, usize, Row)> = Vec::new();
    for (name, topo) in [("REC", &rec), ("DRL", &drl)] {
        for k in 0..=3 {
            let rec_tel = sink.recorder(&format!("{name}.k{k}"));
            let row = measure(topo, k, &fault_seeds, &cfg, kill_at, rec_tel);
            // Reachability both ways: the raw pair fraction (what the
            // invariants below compare) and the percentage EXPERIMENTS.md
            // quotes — keeping the table and the doc on one scale.
            rows.push(vec![
                s(name),
                s(k),
                f3(row.reachability),
                format!("{:.2}%", row.reachability * 100.0),
                f3(row.avg_hops),
                f3(row.delivered),
                f3(row.latency),
                f3(row.throughput),
            ]);
            summary.push((name.to_string(), k, row));
        }
    }

    let headers = [
        "design",
        "loops_failed",
        "reachability",
        "reachability_pct",
        "avg_hops",
        "delivered_fraction",
        "avg_latency",
        "accepted_throughput",
    ];
    print_table(
        &format!(
            "fault tolerance under k random loop failures, 8x8, \
             uniform 0.08 flits/node/cycle, {} fault draws",
            fault_seeds.len()
        ),
        &headers,
        &rows,
    );
    write_csv("exp_fault_tolerance", &headers, &rows);
    write_telemetry("exp_fault_tolerance", &sink);

    // The traced runs' drop accounting must balance: everything injected
    // is delivered, still in flight at drain end, unroutable under the
    // degraded table, or dropped on a killed loop.
    let injected = sink.counter_total("sim.packets_injected");
    let accounted = sink.counter_total("sim.packets_delivered")
        + sink.counter_total("sim.packets_in_flight_end")
        + sink.counter_total("sim.unroutable_packets")
        + sink.counter_total("sim.dropped_by_fault_packets");
    assert_eq!(
        injected, accounted,
        "packet conservation must hold across all traced runs"
    );

    // Degradation relative to each design's own fault-free baseline.
    let baseline = |name: &str| -> &Row {
        summary
            .iter()
            .find(|(n, k, _)| n == name && *k == 0)
            .map(|(_, _, r)| r)
            .expect("k=0 row")
    };
    println!("\nreachability loss vs own k=0 baseline:");
    for (name, k, row) in &summary {
        if *k == 0 {
            continue;
        }
        let b = baseline(name);
        println!(
            "  {name} k={k}: reachability -{:.4}, delivered -{:.4}",
            b.reachability - row.reachability,
            b.delivered - row.delivered,
        );
    }

    // Headline invariants (always checked; `--smoke` is just the short
    // configuration CI runs them under).
    for name in ["REC", "DRL"] {
        let b = baseline(name);
        assert!(
            (b.reachability - 1.0).abs() < 1e-12,
            "{name}: zero faults must keep full reachability"
        );
        assert!(
            b.delivered > 0.99,
            "{name}: zero-fault run must deliver what it offers (got {})",
            b.delivered
        );
    }
    for (name, k, row) in &summary {
        if *k == 0 {
            continue;
        }
        let b = baseline(name);
        assert!(
            row.reachability <= b.reachability + 1e-12,
            "{name} k={k}: reachability cannot improve under faults"
        );
    }
    // §6.7's claim, exercised dynamically. The discriminating axis at
    // laptop-scale search effort is latency degradation: the DRL design's
    // many small loops each carry a small share of the wiring, so killing
    // k of them perturbs routes far less than killing k of REC's large
    // rings. (Reachability stays above 99% for both designs at k ≤ 3 and
    // differs only in the fourth decimal; with the paper's fully trained
    // agent the reachability gap widens too — see EXPERIMENTS.md.)
    for k in [1usize, 2] {
        let row = |name: &str| {
            &summary
                .iter()
                .find(|(n, kk, _)| n == name && *kk == k)
                .unwrap_or_else(|| panic!("summary has a row for design {name} at k={k}"))
                .2
        };
        let (rec_k, drl_k) = (row("REC"), row("DRL"));
        let rec_lat_loss = (rec_k.latency - baseline("REC").latency) / baseline("REC").latency;
        let drl_lat_loss = (drl_k.latency - baseline("DRL").latency) / baseline("DRL").latency;
        println!(
            "k={k}: relative latency growth REC {:.4} vs DRL {:.4}; \
             reachability REC {:.4} vs DRL {:.4}",
            rec_lat_loss, drl_lat_loss, rec_k.reachability, drl_k.reachability
        );
        assert!(
            drl_lat_loss < rec_lat_loss,
            "DRL should degrade more gracefully than REC at k={k} \
             (REC latency growth {rec_lat_loss:.4}, DRL {drl_lat_loss:.4})"
        );
        assert!(
            rec_k.reachability > 0.99 && drl_k.reachability > 0.99,
            "both designs must stay essentially connected at k={k}"
        );
    }
    println!("\nfault-tolerance invariants hold");
}
