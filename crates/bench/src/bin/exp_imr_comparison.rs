//! §6.7 / §3.1 — the IMR genetic algorithm vs REC vs DRL.
//!
//! The paper cites IMR's weaknesses (random mutation, no constraint
//! handling, unreliable search) from the REC study rather than re-running
//! it; this reproduction re-runs a rectangular-loop IMR directly and
//! measures hop count, constraint violations, and search reliability
//! against REC and the DRL rollout at equal wiring budgets.
//!
//! Usage: `exp_imr_comparison [n] [generations]` (defaults 8, 80).

use rlnoc_baselines::{rec_topology, ImrConfig, ImrSearch};
use rlnoc_bench::{drl_topology, f3, print_table, s, write_csv, Effort};
use rlnoc_topology::{diversity, Grid};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let generations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(80);
    let grid = Grid::square(n).expect("grid");
    let cap = 2 * (n as u32 - 1);

    let rec = rec_topology(grid).expect("REC");
    let drl = drl_topology(grid, cap, Effort::from_env(), 3);

    // IMR without constraint handling (the published algorithm)...
    let imr_free = ImrSearch::new(
        grid,
        ImrConfig {
            generations,
            initial_loops: 3 * n,
            ..ImrConfig::default()
        },
        7,
    )
    .run();
    // ...and with the soft overlap penalty bolted on (the paper's §3.1
    // point: soft constraints get traded away for fitness).
    let imr_soft = ImrSearch::new(
        grid,
        ImrConfig {
            generations,
            initial_loops: 3 * n,
            overlap_cap: Some(cap),
            overlap_penalty: 10.0,
            ..ImrConfig::default()
        },
        7,
    )
    .run();

    let mut rows = Vec::new();
    for (name, topo, connected) in [
        ("REC", &rec, true),
        ("DRL", &drl, drl.is_fully_connected()),
        ("IMR", &imr_free.topology, imr_free.fully_connected),
        ("IMR+softcap", &imr_soft.topology, imr_soft.fully_connected),
    ] {
        rows.push(vec![
            s(name),
            if connected {
                f3(topo.average_hops())
            } else {
                s("disconnected")
            },
            s(topo.loops().len()),
            s(topo.max_overlap()),
            s(topo.max_overlap() <= cap),
            f3(diversity::average_path_diversity(topo)),
        ]);
    }

    let headers = [
        "method",
        "avg_hops",
        "loops",
        "max_overlap",
        format!("within_cap_{cap}").leak(),
        "path_diversity",
    ];
    print_table(
        &format!("IMR vs REC vs DRL, {n}x{n}, {generations} GA generations"),
        &headers,
        &rows,
    );
    write_csv("exp_imr_comparison", &headers, &rows);
    println!(
        "\nIMR fitness history (first → last): {:.2} → {:.2} over {} generations",
        imr_free.history.first().copied().unwrap_or(0.0),
        imr_free.history.last().copied().unwrap_or(0.0),
        imr_free.history.len()
    );
    println!(
        "Paper context: REC beats IMR by 1.25x zero-load latency and 1.61x throughput;\n\
         IMR enforces no wiring constraint (observe max_overlap above)."
    );
}
