//! §6.1 — multi-threaded search efficacy: single-threaded vs
//! multi-threaded exploration under the same cycle budget.
//!
//! The paper reports that in a fixed 10-hour window the multi-threaded
//! search found 49 valid 10x10 designs vs 6 single-threaded, with 44%
//! lower hop-count standard deviation. Here the budget is a fixed number
//! of exploration cycles on a smaller default grid, and the comparison
//! point is wall-clock per valid design plus result consistency.
//!
//! Usage: `exp_multithread [n] [cycles] [threads]` (defaults 6, 6, 4).

use rlnoc_bench::{f3, print_table, s, write_csv, write_telemetry};
use rlnoc_core::explorer::ExplorerConfig;
use rlnoc_core::parallel::explore_parallel;
use rlnoc_core::routerless::RouterlessEnv;
use rlnoc_telemetry::TelemetrySink;
use rlnoc_topology::Grid;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let cycles: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let grid = Grid::square(n).expect("grid");
    let cap = 2 * (n as u32 - 1);
    let env = RouterlessEnv::new(grid, cap);
    let mut config = ExplorerConfig::fast();
    config.max_steps = (grid.len() / 8).max(4); // DNN/MCTS prefix; completion finishes
    config.epsilon = 0.3;
    let sink = TelemetrySink::enabled();
    config.telemetry = sink.clone();

    let mut rows = Vec::new();
    for t in [1usize, threads] {
        let start = Instant::now();
        let report = explore_parallel(&env, &config, t, cycles, 7);
        let elapsed = start.elapsed().as_secs_f64();
        let hops: Vec<f64> = report
            .designs
            .iter()
            .filter(|d| d.successful)
            .map(|d| d.env.average_hops())
            .collect();
        let mean = hops.iter().sum::<f64>() / hops.len().max(1) as f64;
        let sd = if hops.len() > 1 {
            (hops.iter().map(|h| (h - mean) * (h - mean)).sum::<f64>() / (hops.len() - 1) as f64)
                .sqrt()
        } else {
            0.0
        };
        // Each TrainStats covers one episode's batched forward/backward, so
        // its step count is that update's batch size.
        let mean_batch = report
            .train_history
            .iter()
            .map(|st| st.steps as f64)
            .sum::<f64>()
            / report.train_history.len().max(1) as f64;
        let cache = report.cache_stats;
        rows.push(vec![
            s(t),
            s(cycles),
            s(hops.len()),
            f3(mean),
            f3(sd),
            format!("{elapsed:.1}s"),
            format!("{:.1}s", elapsed / hops.len().max(1) as f64),
            f3(mean_batch),
            s(cache.hits),
            s(cache.misses),
            format!("{:.0}%", cache.hit_rate() * 100.0),
        ]);
    }

    let headers = [
        "threads",
        "cycles",
        "valid",
        "mean_hops",
        "sd_hops",
        "wall",
        "wall_per_valid",
        "mean_batch",
        "cache_hits",
        "cache_miss",
        "hit_rate",
    ];
    print_table(
        &format!("§6.1: single vs multi-threaded exploration, {n}x{n} cap {cap}"),
        &headers,
        &rows,
    );
    write_csv("exp_multithread", &headers, &rows);
    write_telemetry("exp_multithread", &sink);
    println!(
        "\nPaper reference (10x10, 10 h budget): 6 valid designs single-threaded vs 49\n\
         multi-threaded, with 44% lower hop-count SD."
    );
}
