//! §6.7 — reliability: path diversity of REC vs DRL on 8x8.
//!
//! The paper reports an average of 2.77 loops serving each node pair in
//! REC vs 3.79 in DRL at equal overlap, so DRL tolerates more link
//! failures.

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, f3, print_table, s, write_csv, Effort};
use rlnoc_topology::{diversity, Grid};

fn main() {
    let grid = Grid::square(8).expect("8x8 grid");
    let rec = rec_topology(grid).expect("REC");
    let drl = drl_topology(grid, 14, Effort::from_env(), 3);

    let mut rows = Vec::new();
    for (name, topo, paper) in [("REC", &rec, "2.77"), ("DRL", &drl, "3.79")] {
        rows.push(vec![
            s(name),
            s(topo.loops().len()),
            f3(diversity::average_path_diversity(topo)),
            s(diversity::min_path_diversity(topo)),
            s(diversity::tolerable_single_failures(topo)),
            s(paper),
        ]);
    }

    let headers = [
        "design",
        "loops",
        "avg_path_diversity",
        "min_diversity",
        "survivable_loop_failures",
        "paper_avg_diversity",
    ];
    print_table(
        "§6.7: reliability / path diversity, 8x8 overlap 14",
        &headers,
        &rows,
    );
    write_csv("exp_reliability", &headers, &rows);
}
