//! Figure 10 — average packet latency vs injection rate, 10x10, synthetic
//! workloads (uniform random, tornado, bit complement, bit rotation,
//! shuffle, transpose) for Mesh-2, Mesh-1, REC, and DRL.
//!
//! All 24 pattern x fabric sweeps run as one [`SweepEngine::sweep_many`]
//! batch: points are distributed over the machine's cores and the results
//! are bit-identical to the serial sweeps at any thread count.
//!
//! Usage: `fig10_synthetic_latency [n] [measure_cycles] [step]`
//! (defaults 10, 3000, 0.02; the paper uses 100k cycles and step 0.005 —
//! pass those for a full-fidelity run).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, print_table, s, write_csv, Effort};
use rlnoc_sim::sweep::{SweepEngine, SweepJob, SweepParams};
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{MeshSim, RouterlessSim, SimConfig};
use rlnoc_topology::Grid;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let measure: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3_000);
    let step: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.02);
    let grid = Grid::square(n).expect("grid");
    let cap = 2 * (n as u32 - 1);
    let rec = rec_topology(grid).expect("REC");
    let drl = drl_topology(grid, cap, Effort::from_env(), 9);
    let mesh_cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::mesh()
    };
    let rl_cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::routerless()
    };
    let params = SweepParams {
        start: 0.005,
        step,
        max_rate: 1.0,
        latency_factor: 4.0,
        seed: 2,
    };

    let mut jobs = Vec::new();
    let mut meta = Vec::new();
    for pattern in Pattern::ALL {
        jobs.push(SweepJob::new(
            format!("{pattern:?}/Mesh-2"),
            pattern,
            mesh_cfg.clone(),
            params,
            move || MeshSim::mesh2(grid),
        ));
        meta.push((pattern, "Mesh-2"));
        jobs.push(SweepJob::new(
            format!("{pattern:?}/Mesh-1"),
            pattern,
            mesh_cfg.clone(),
            params,
            move || MeshSim::mesh1(grid),
        ));
        meta.push((pattern, "Mesh-1"));
        jobs.push(SweepJob::new(
            format!("{pattern:?}/REC"),
            pattern,
            rl_cfg.clone(),
            params,
            || RouterlessSim::new(&rec),
        ));
        meta.push((pattern, "REC"));
        jobs.push(SweepJob::new(
            format!("{pattern:?}/DRL"),
            pattern,
            rl_cfg.clone(),
            params,
            || RouterlessSim::new(&drl),
        ));
        meta.push((pattern, "DRL"));
    }
    let results = SweepEngine::available().sweep_many(&jobs);

    let mut all_rows = Vec::new();
    let mut summary = Vec::new();
    for ((pattern, name), sweep) in meta.iter().zip(&results) {
        for p in &sweep.points {
            all_rows.push(vec![
                format!("{pattern:?}"),
                s(name),
                format!("{:.3}", p.rate),
                format!("{:.2}", p.latency),
                format!("{:.3}", p.accepted),
            ]);
        }
        summary.push(vec![
            format!("{pattern:?}"),
            s(name),
            format!("{:.2}", sweep.zero_load_latency),
            format!("{:.3}", sweep.saturation),
        ]);
    }

    let headers = ["pattern", "fabric", "zero_load_latency", "saturation_flits"];
    print_table(
        &format!("Figure 10 summary: {n}x{n} synthetic latency/throughput"),
        &headers,
        &summary,
    );
    write_csv("fig10_summary", &headers, &summary);
    write_csv(
        "fig10_curves",
        &["pattern", "fabric", "rate", "latency", "accepted"],
        &all_rows,
    );
    println!(
        "\nPaper reference (10x10 uniform): zero-load 26.85 / 19.24 / 11.67 / 9.89 cycles and\n\
         saturation ~0.10 / 0.125 / 0.195 / 0.305 flits/node/cycle for Mesh-2 / Mesh-1 / REC / DRL."
    );
}
