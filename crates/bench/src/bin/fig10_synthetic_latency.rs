//! Figure 10 — average packet latency vs injection rate, 10x10, synthetic
//! workloads (uniform random, tornado, bit complement, bit rotation,
//! shuffle, transpose) for Mesh-2, Mesh-1, REC, and DRL.
//!
//! Usage: `fig10_synthetic_latency [n] [measure_cycles] [step]`
//! (defaults 10, 3000, 0.02; the paper uses 100k cycles and step 0.005 —
//! pass those for a full-fidelity run).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, print_table, s, write_csv, Effort};
use rlnoc_sim::sweep::latency_sweep;
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{MeshSim, RouterlessSim, SimConfig};
use rlnoc_topology::Grid;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let measure: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3_000);
    let step: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.02);
    let grid = Grid::square(n).expect("grid");
    let cap = 2 * (n as u32 - 1);
    let rec = rec_topology(grid).expect("REC");
    let drl = drl_topology(grid, cap, Effort::from_env(), 9);
    let mesh_cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::mesh()
    };
    let rl_cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::routerless()
    };

    let mut all_rows = Vec::new();
    let mut summary = Vec::new();
    for pattern in Pattern::ALL {
        let sweeps: Vec<(&str, rlnoc_sim::sweep::SweepResult)> = vec![
            (
                "Mesh-2",
                latency_sweep(
                    || MeshSim::mesh2(grid),
                    pattern,
                    &mesh_cfg,
                    0.005,
                    step,
                    1.0,
                    4.0,
                    2,
                ),
            ),
            (
                "Mesh-1",
                latency_sweep(
                    || MeshSim::mesh1(grid),
                    pattern,
                    &mesh_cfg,
                    0.005,
                    step,
                    1.0,
                    4.0,
                    2,
                ),
            ),
            (
                "REC",
                latency_sweep(
                    || RouterlessSim::new(&rec),
                    pattern,
                    &rl_cfg,
                    0.005,
                    step,
                    1.0,
                    4.0,
                    2,
                ),
            ),
            (
                "DRL",
                latency_sweep(
                    || RouterlessSim::new(&drl),
                    pattern,
                    &rl_cfg,
                    0.005,
                    step,
                    1.0,
                    4.0,
                    2,
                ),
            ),
        ];
        for (name, sweep) in &sweeps {
            for p in &sweep.points {
                all_rows.push(vec![
                    format!("{pattern:?}"),
                    s(name),
                    format!("{:.3}", p.rate),
                    format!("{:.2}", p.latency),
                    format!("{:.3}", p.accepted),
                ]);
            }
            summary.push(vec![
                format!("{pattern:?}"),
                s(name),
                format!("{:.2}", sweep.zero_load_latency),
                format!("{:.3}", sweep.saturation),
            ]);
        }
    }

    let headers = ["pattern", "fabric", "zero_load_latency", "saturation_flits"];
    print_table(
        &format!("Figure 10 summary: {n}x{n} synthetic latency/throughput"),
        &headers,
        &summary,
    );
    write_csv("fig10_summary", &headers, &summary);
    write_csv(
        "fig10_curves",
        &["pattern", "fabric", "rate", "latency", "accepted"],
        &all_rows,
    );
    println!(
        "\nPaper reference (10x10 uniform): zero-load 26.85 / 19.24 / 11.67 / 9.89 cycles and\n\
         saturation ~0.10 / 0.125 / 0.195 / 0.305 flits/node/cycle for Mesh-2 / Mesh-1 / REC / DRL."
    );
}
