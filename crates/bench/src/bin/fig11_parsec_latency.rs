//! Figure 11 — PARSEC packet latency on 4x4 and 8x8 NoCs for Mesh-2,
//! Mesh-1, Mesh-0, REC, and DRL.
//!
//! Usage: `fig11_parsec_latency [measure_cycles]` (default 15000).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, print_table, s, write_csv, Effort};
use rlnoc_sim::sweep::SweepEngine;
use rlnoc_sim::{MeshSim, RouterlessSim, SimConfig};
use rlnoc_topology::{Grid, Topology};
use rlnoc_workloads::{run_benchmark, Benchmark};

fn main() {
    let measure: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15_000);
    let mesh_cfg = SimConfig {
        warmup: 1_000,
        measure,
        drain: 4_000,
        ..SimConfig::mesh()
    };
    let rl_cfg = SimConfig {
        warmup: 1_000,
        measure,
        drain: 4_000,
        ..SimConfig::routerless()
    };

    let topos: Vec<(usize, Grid, Topology, Topology)> = [4usize, 8]
        .iter()
        .map(|&n| {
            let grid = Grid::square(n).expect("grid");
            let cap = 2 * (n as u32 - 1);
            (
                n,
                grid,
                rec_topology(grid).expect("REC"),
                drl_topology(grid, cap, Effort::from_env(), 3),
            )
        })
        .collect();

    // Independent (size, workload) runs fan out over the engine's worker
    // pool; output order is preserved.
    let mut tasks = Vec::new();
    for (n, grid, rec, drl) in &topos {
        for (i, bench) in Benchmark::ALL.iter().enumerate() {
            tasks.push((*n, *grid, rec, drl, *bench, 60 + i as u64));
        }
    }
    let rows = SweepEngine::available().map(&tasks, |_, &(n, grid, rec, drl, bench, seed)| {
        let lat = |m: rlnoc_sim::Metrics| format!("{:.2}", m.avg_packet_latency());
        vec![
            format!("{n}x{n}"),
            s(bench),
            lat(run_benchmark(
                &mut MeshSim::mesh2(grid),
                bench,
                &mesh_cfg,
                seed,
            )),
            lat(run_benchmark(
                &mut MeshSim::mesh1(grid),
                bench,
                &mesh_cfg,
                seed,
            )),
            lat(run_benchmark(
                &mut MeshSim::mesh0(grid),
                bench,
                &mesh_cfg,
                seed,
            )),
            lat(run_benchmark(
                &mut RouterlessSim::new(rec),
                bench,
                &rl_cfg,
                seed,
            )),
            lat(run_benchmark(
                &mut RouterlessSim::new(drl),
                bench,
                &rl_cfg,
                seed,
            )),
        ]
    });

    let headers = [
        "size", "workload", "Mesh-2", "Mesh-1", "Mesh-0", "REC", "DRL",
    ];
    print_table(
        "Figure 11: PARSEC average packet latency (cycles)",
        &headers,
        &rows,
    );
    write_csv("fig11_parsec_latency", &headers, &rows);
    println!(
        "\nPaper reference (8x8 averages): DRL reduces latency by 60.0% / 46.2% / 27.7% / 13.5%\n\
         vs Mesh-2 / Mesh-1 / Mesh-0 / REC (e.g. fluidanimate: 21.7/16.4/12.9/11.8/9.7)."
    );
}
