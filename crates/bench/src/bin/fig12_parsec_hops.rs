//! Figure 12 — PARSEC average hop count on 4x4 and 8x8 NoCs for Mesh,
//! REC, and DRL.
//!
//! Usage: `fig12_parsec_hops [measure_cycles]` (default 15000).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, print_table, s, write_csv, Effort};
use rlnoc_sim::sweep::SweepEngine;
use rlnoc_sim::{MeshSim, RouterlessSim, SimConfig};
use rlnoc_topology::{Grid, Topology};
use rlnoc_workloads::{run_benchmark, Benchmark};

fn main() {
    let measure: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15_000);
    let mesh_cfg = SimConfig {
        warmup: 1_000,
        measure,
        drain: 4_000,
        ..SimConfig::mesh()
    };
    let rl_cfg = SimConfig {
        warmup: 1_000,
        measure,
        drain: 4_000,
        ..SimConfig::routerless()
    };

    let topos: Vec<(usize, Grid, Topology, Topology)> = [4usize, 8]
        .iter()
        .map(|&n| {
            let grid = Grid::square(n).expect("grid");
            let cap = 2 * (n as u32 - 1);
            (
                n,
                grid,
                rec_topology(grid).expect("REC"),
                drl_topology(grid, cap, Effort::from_env(), 3),
            )
        })
        .collect();

    let mut tasks = Vec::new();
    for (n, grid, rec, drl) in &topos {
        for (i, bench) in Benchmark::ALL.iter().enumerate() {
            tasks.push((*n, *grid, rec, drl, *bench, 80 + i as u64));
        }
    }
    let rows = SweepEngine::available().map(&tasks, |_, &(n, grid, rec, drl, bench, seed)| {
        let hops = |m: rlnoc_sim::Metrics| format!("{:.2}", m.avg_hops());
        vec![
            format!("{n}x{n}"),
            s(bench),
            hops(run_benchmark(
                &mut MeshSim::mesh2(grid),
                bench,
                &mesh_cfg,
                seed,
            )),
            hops(run_benchmark(
                &mut RouterlessSim::new(rec),
                bench,
                &rl_cfg,
                seed,
            )),
            hops(run_benchmark(
                &mut RouterlessSim::new(drl),
                bench,
                &rl_cfg,
                seed,
            )),
        ]
    });

    let headers = ["size", "workload", "Mesh", "REC", "DRL"];
    print_table("Figure 12: PARSEC average hop count", &headers, &rows);
    write_csv("fig12_parsec_hops", &headers, &rows);
    println!(
        "\nPaper reference: 4x4 — DRL 3.8% below REC, 22.4% above mesh;\n\
         8x8 — DRL 13.7% below REC, 35.7% above mesh\n\
         (e.g. streamcluster 4x4: mesh 1.79, REC 2.48, DRL 2.34)."
    );
}
