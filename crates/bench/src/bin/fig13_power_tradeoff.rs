//! Figure 13 — power vs hop-count trade-off on 8x8 across node-overlapping
//! caps (8–20), with REC as the single fixed point.
//!
//! Power is the per-node total under uniform-random traffic at a light
//! fixed load, from the calibrated analytical model scaled by simulated
//! link activity.
//!
//! Usage: `fig13_power_tradeoff [rate] [measure_cycles]`
//! (defaults 0.05 flits/node/cycle, 5000 cycles).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, f3, print_table, s, write_csv, Effort};
use rlnoc_power::{Fabric, PowerModel};
use rlnoc_sim::sweep::SweepEngine;
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{run_synthetic, RouterlessSim, SimConfig};
use rlnoc_topology::{Grid, Topology};

fn main() {
    let mut args = std::env::args().skip(1);
    let rate: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.05);
    let measure: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let grid = Grid::square(8).expect("8x8 grid");
    let cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::routerless()
    };
    let power = PowerModel::default();

    let measure_power = |topo: &Topology, overlap: u32, seed: u64| {
        let m = run_synthetic(
            &mut RouterlessSim::new(topo),
            Pattern::UniformRandom,
            rate,
            &cfg,
            seed,
        );
        (
            topo.average_hops(),
            power.from_metrics(Fabric::Routerless { overlap }, &m),
        )
    };

    let rec = rec_topology(grid).expect("REC");
    let (rec_hops, rec_p) = measure_power(&rec, 14, 1);
    let mut rows = vec![vec![
        s("REC"),
        s(14),
        f3(rec_hops),
        f3(rec_p.static_mw),
        f3(rec_p.dynamic_mw),
        f3(rec_p.total_mw()),
    ]];
    // Each cap's design + measurement is independent and seeded by the cap,
    // so the fan-out is deterministic and order-preserving.
    let caps = [8u32, 10, 12, 13, 14, 16, 18, 20];
    rows.extend(SweepEngine::available().map(&caps, |_, &cap| {
        let drl = drl_topology(grid, cap, Effort::from_env(), u64::from(cap));
        if !drl.is_fully_connected() {
            return vec![
                s("DRL"),
                s(cap),
                s("not found at this search budget"),
                s("-"),
                s("-"),
                s("-"),
            ];
        }
        let (hops, p) = measure_power(&drl, cap, u64::from(cap));
        vec![
            s("DRL"),
            s(cap),
            f3(hops),
            f3(p.static_mw),
            f3(p.dynamic_mw),
            f3(p.total_mw()),
        ]
    }));

    let headers = [
        "design",
        "overlap",
        "avg_hops",
        "static_mW",
        "dynamic_mW",
        "total_mW",
    ];
    print_table(
        &format!("Figure 13: 8x8 power-performance trade-off (uniform {rate} flits/node/cycle)"),
        &headers,
        &rows,
    );
    write_csv("fig13_power_tradeoff", &headers, &rows);
    println!(
        "\nPaper reference: DRL(10) ≈ 1% lower hops than REC at 15.9% less power;\n\
         DRL(16) ≈ 18.9% lower hops at equal (±0.2%) power."
    );
}
