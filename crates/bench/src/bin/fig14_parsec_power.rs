//! Figure 14 — PARSEC power consumption (static + dynamic) per node for
//! Mesh, REC, and DRL on 8x8.
//!
//! Usage: `fig14_parsec_power [measure_cycles]` (default 15000).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, f3, print_table, s, write_csv, Effort};
use rlnoc_power::{Fabric, PowerModel};
use rlnoc_sim::sweep::SweepEngine;
use rlnoc_sim::{MeshSim, RouterlessSim, SimConfig};
use rlnoc_topology::Grid;
use rlnoc_workloads::{run_benchmark, Benchmark};

fn main() {
    let measure: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15_000);
    let grid = Grid::square(8).expect("8x8 grid");
    let rec = rec_topology(grid).expect("REC");
    let drl = drl_topology(grid, 14, Effort::from_env(), 3);
    let mesh_cfg = SimConfig {
        warmup: 1_000,
        measure,
        drain: 4_000,
        ..SimConfig::mesh()
    };
    let rl_cfg = SimConfig {
        warmup: 1_000,
        measure,
        drain: 4_000,
        ..SimConfig::routerless()
    };
    let power = PowerModel::default();
    let rl14 = Fabric::Routerless { overlap: 14 };

    // One task per workload; each yields its table row plus the three
    // (static, dynamic) pairs so the average row can be summed in order.
    let per_bench = SweepEngine::available().map(&Benchmark::ALL, |i, bench| {
        let seed = 120 + i as u64;
        let pm = power.from_metrics(
            Fabric::Mesh,
            &run_benchmark(&mut MeshSim::mesh2(grid), *bench, &mesh_cfg, seed),
        );
        let pr = power.from_metrics(
            rl14,
            &run_benchmark(&mut RouterlessSim::new(&rec), *bench, &rl_cfg, seed),
        );
        let pd = power.from_metrics(
            rl14,
            &run_benchmark(&mut RouterlessSim::new(&drl), *bench, &rl_cfg, seed),
        );
        let row = vec![
            s(bench),
            f3(pm.static_mw),
            f3(pm.dynamic_mw),
            f3(pr.static_mw),
            f3(pr.dynamic_mw),
            f3(pd.static_mw),
            f3(pd.dynamic_mw),
        ];
        let pairs = [pm, pr, pd].map(|p| (p.static_mw, p.dynamic_mw));
        (row, pairs)
    });

    let mut rows = Vec::new();
    let mut sums = [(0.0f64, 0.0f64); 3];
    for (row, pairs) in per_bench {
        for (acc, p) in sums.iter_mut().zip(pairs) {
            acc.0 += p.0;
            acc.1 += p.1;
        }
        rows.push(row);
    }
    let nb = Benchmark::ALL.len() as f64;
    rows.push(vec![
        s("average"),
        f3(sums[0].0 / nb),
        f3(sums[0].1 / nb),
        f3(sums[1].0 / nb),
        f3(sums[1].1 / nb),
        f3(sums[2].0 / nb),
        f3(sums[2].1 / nb),
    ]);

    let headers = [
        "workload",
        "mesh_static",
        "mesh_dyn",
        "REC_static",
        "REC_dyn",
        "DRL_static",
        "DRL_dyn",
    ];
    print_table(
        "Figure 14: PARSEC power per node (mW), 8x8",
        &headers,
        &rows,
    );
    write_csv("fig14_parsec_power", &headers, &rows);
    println!(
        "\nPaper reference: static 1.23 mW (mesh) vs 0.23 mW (REC/DRL); average dynamic\n\
         power of DRL is 80.8% below mesh and 11.7% below REC."
    );
}
