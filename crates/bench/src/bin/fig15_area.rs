//! Figure 15 — node area after place & route: Mesh vs REC/DRL(14) vs
//! DRL(10), from the calibrated area model.

use rlnoc_bench::{f3, print_table, s, write_csv};
use rlnoc_power::{AreaModel, Fabric};

fn main() {
    let area = AreaModel::default();
    let mesh = area.node_area_um2(Fabric::Mesh);
    let r14 = area.node_area_um2(Fabric::Routerless { overlap: 14 });
    let r10 = area.node_area_um2(Fabric::Routerless { overlap: 10 });

    let rows = vec![
        vec![s("Mesh (2-cycle router)"), f3(mesh), s("45278"), s("1.00x")],
        vec![
            s("REC / DRL (overlap 14)"),
            f3(r14),
            s("7981"),
            format!("{:.2}x", mesh / r14),
        ],
        vec![
            s("DRL (overlap 10)"),
            f3(r10),
            s("5860"),
            format!("{:.2}x", mesh / r10),
        ],
    ];
    let headers = ["node", "area_um2", "paper_um2", "mesh/own"];
    print_table(
        "Figure 15: per-node area (um^2, 15nm, after P&R)",
        &headers,
        &rows,
    );
    write_csv("fig15_area", &headers, &rows);

    println!(
        "\nExtras (paper §6.6): source lookup table 443 um^2 (0.9% of a mesh router);\n\
         DRL(14) repeaters {:.0} um^2/node.",
        area.repeater_area_um2(14)
    );
}
