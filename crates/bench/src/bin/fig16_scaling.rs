//! Figure 16 — synthetic scaling: uniform-random latency curves for 4x4,
//! 6x6, 8x8, and 10x10, highlighting the throughput drop from 4x4 to
//! 10x10 (paper: −31.6% for REC vs only −4.7% for DRL).
//!
//! Usage: `fig16_scaling [measure_cycles] [step]` (defaults 3000, 0.02).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, print_table, s, write_csv, Effort};
use rlnoc_sim::sweep::latency_sweep;
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{MeshSim, RouterlessSim, SimConfig};
use rlnoc_topology::Grid;
use std::collections::HashMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let measure: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3_000);
    let step: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.02);
    let mesh_cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::mesh()
    };
    let rl_cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::routerless()
    };

    let mut rows = Vec::new();
    let mut saturations: HashMap<(&str, usize), f64> = HashMap::new();
    for n in [4usize, 6, 8, 10] {
        let grid = Grid::square(n).expect("grid");
        let cap = 2 * (n as u32 - 1);
        let rec = rec_topology(grid).expect("REC");
        let drl = drl_topology(grid, cap, Effort::from_env(), 17);
        let sweeps: Vec<(&str, rlnoc_sim::sweep::SweepResult)> = vec![
            (
                "Mesh-2",
                latency_sweep(
                    || MeshSim::mesh2(grid),
                    Pattern::UniformRandom,
                    &mesh_cfg,
                    0.005,
                    step,
                    1.0,
                    4.0,
                    6,
                ),
            ),
            (
                "Mesh-1",
                latency_sweep(
                    || MeshSim::mesh1(grid),
                    Pattern::UniformRandom,
                    &mesh_cfg,
                    0.005,
                    step,
                    1.0,
                    4.0,
                    6,
                ),
            ),
            (
                "REC",
                latency_sweep(
                    || RouterlessSim::new(&rec),
                    Pattern::UniformRandom,
                    &rl_cfg,
                    0.005,
                    step,
                    1.0,
                    4.0,
                    6,
                ),
            ),
            (
                "DRL",
                latency_sweep(
                    || RouterlessSim::new(&drl),
                    Pattern::UniformRandom,
                    &rl_cfg,
                    0.005,
                    step,
                    1.0,
                    4.0,
                    6,
                ),
            ),
        ];
        for (name, sweep) in sweeps {
            saturations.insert((name, n), sweep.saturation);
            rows.push(vec![
                format!("{n}x{n}"),
                s(name),
                format!("{:.2}", sweep.zero_load_latency),
                format!("{:.3}", sweep.saturation),
            ]);
        }
    }

    let headers = ["size", "fabric", "zero_load_latency", "saturation_flits"];
    print_table("Figure 16: uniform-random scaling", &headers, &rows);
    write_csv("fig16_scaling", &headers, &rows);

    for fabric in ["REC", "DRL"] {
        let s4 = saturations[&(fabric, 4)];
        let s10 = saturations[&(fabric, 10)];
        if s4 > 0.0 {
            println!(
                "{fabric}: throughput change 4x4 → 10x10: {:+.1}% (paper: REC −31.6%, DRL −4.7%)",
                100.0 * (s10 - s4) / s4
            );
        }
    }
}
