//! Figure 16 — synthetic scaling: uniform-random latency curves for 4x4,
//! 6x6, 8x8, and 10x10, highlighting the throughput drop from 4x4 to
//! 10x10 (paper: −31.6% for REC vs only −4.7% for DRL).
//!
//! All 16 size x fabric sweeps run as one deterministic
//! [`SweepEngine::sweep_many`] batch.
//!
//! Usage: `fig16_scaling [measure_cycles] [step]` (defaults 3000, 0.02).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, print_table, s, write_csv, Effort};
use rlnoc_sim::sweep::{SweepEngine, SweepJob, SweepParams};
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{MeshSim, RouterlessSim, SimConfig};
use rlnoc_topology::{Grid, Topology};
use std::collections::HashMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let measure: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3_000);
    let step: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.02);
    let mesh_cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::mesh()
    };
    let rl_cfg = SimConfig {
        warmup: 500,
        measure,
        drain: 2_000,
        ..SimConfig::routerless()
    };
    let params = SweepParams {
        start: 0.005,
        step,
        max_rate: 1.0,
        latency_factor: 4.0,
        seed: 6,
    };

    let sizes = [4usize, 6, 8, 10];
    let topos: Vec<(Grid, Topology, Topology)> = sizes
        .iter()
        .map(|&n| {
            let grid = Grid::square(n).expect("grid");
            let cap = 2 * (n as u32 - 1);
            (
                grid,
                rec_topology(grid).expect("REC"),
                drl_topology(grid, cap, Effort::from_env(), 17),
            )
        })
        .collect();

    let mut jobs = Vec::new();
    let mut meta: Vec<(&str, usize)> = Vec::new();
    for (&n, (grid, rec, drl)) in sizes.iter().zip(&topos) {
        let grid = *grid;
        jobs.push(SweepJob::new(
            format!("{n}x{n}/Mesh-2"),
            Pattern::UniformRandom,
            mesh_cfg.clone(),
            params,
            move || MeshSim::mesh2(grid),
        ));
        meta.push(("Mesh-2", n));
        jobs.push(SweepJob::new(
            format!("{n}x{n}/Mesh-1"),
            Pattern::UniformRandom,
            mesh_cfg.clone(),
            params,
            move || MeshSim::mesh1(grid),
        ));
        meta.push(("Mesh-1", n));
        jobs.push(SweepJob::new(
            format!("{n}x{n}/REC"),
            Pattern::UniformRandom,
            rl_cfg.clone(),
            params,
            || RouterlessSim::new(rec),
        ));
        meta.push(("REC", n));
        jobs.push(SweepJob::new(
            format!("{n}x{n}/DRL"),
            Pattern::UniformRandom,
            rl_cfg.clone(),
            params,
            || RouterlessSim::new(drl),
        ));
        meta.push(("DRL", n));
    }
    let results = SweepEngine::available().sweep_many(&jobs);

    let mut rows = Vec::new();
    let mut saturations: HashMap<(&str, usize), f64> = HashMap::new();
    for ((name, n), sweep) in meta.iter().zip(&results) {
        saturations.insert((name, *n), sweep.saturation);
        rows.push(vec![
            format!("{n}x{n}"),
            s(name),
            format!("{:.2}", sweep.zero_load_latency),
            format!("{:.3}", sweep.saturation),
        ]);
    }

    let headers = ["size", "fabric", "zero_load_latency", "saturation_flits"];
    print_table("Figure 16: uniform-random scaling", &headers, &rows);
    write_csv("fig16_scaling", &headers, &rows);

    for fabric in ["REC", "DRL"] {
        let s4 = saturations[&(fabric, 4)];
        let s10 = saturations[&(fabric, 10)];
        if s4 > 0.0 {
            println!(
                "{fabric}: throughput change 4x4 → 10x10: {:+.1}% (paper: REC −31.6%, DRL −4.7%)",
                100.0 * (s10 - s4) / s4
            );
        }
    }
}
