//! `rlnoc_cli` — a small command-line front end for the workspace:
//! design, inspect, and simulate routerless NoC topologies.
//!
//! ```text
//! rlnoc_cli design   --size 8 --cap 14 [--effort learn:8:4] [--seed 3] [--out topo.json]
//! rlnoc_cli show     topo.json
//! rlnoc_cli simulate topo.json [--pattern uniform|tornado|bitcomp|bitrot|shuffle|transpose]
//!                              [--rate 0.1] [--cycles 5000]
//! rlnoc_cli sweep    topo.json [--pattern uniform] [--step 0.02] [--cycles 3000]
//! ```

use rlnoc_bench::{drl_topology, Effort};
use rlnoc_power::{AreaModel, Fabric, PowerModel};
use rlnoc_sim::sweep::{SweepEngine, SweepParams};
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{run_synthetic, RouterlessSim, SimConfig};
use rlnoc_topology::{diversity, render, Grid, Topology};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "design" => cmd_design(rest),
        "show" => cmd_show(rest),
        "simulate" => cmd_simulate(rest),
        "sweep" => cmd_sweep(rest),
        _ => Err(format!("unknown command `{cmd}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: rlnoc_cli <design|show|simulate|sweep> [options]
  design   --size N --cap K [--effort learn[:cycles[:threads]]] [--seed S] [--out FILE]
  show     FILE
  simulate FILE [--pattern P] [--rate R] [--cycles C]
  sweep    FILE [--pattern P] [--step S] [--cycles C]
patterns: uniform tornado bitcomp bitrot shuffle transpose";

/// Splits `rest` into positional arguments and `--flag value` pairs.
fn parse(rest: &[String]) -> (Vec<&str>, HashMap<&str, &str>) {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        if let Some(name) = rest[i].strip_prefix("--") {
            if i + 1 < rest.len() {
                flags.insert(name, rest[i + 1].as_str());
                i += 2;
            } else {
                flags.insert(name, "");
                i += 1;
            }
        } else {
            pos.push(rest[i].as_str());
            i += 1;
        }
    }
    (pos, flags)
}

fn parse_pattern(name: &str) -> Result<Pattern, String> {
    Ok(match name {
        "uniform" => Pattern::UniformRandom,
        "tornado" => Pattern::Tornado,
        "bitcomp" => Pattern::BitComplement,
        "bitrot" => Pattern::BitRotation,
        "shuffle" => Pattern::Shuffle,
        "transpose" => Pattern::Transpose,
        other => return Err(format!("unknown pattern `{other}`")),
    })
}

fn load_topology(path: &str) -> Result<Topology, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_design(rest: &[String]) -> Result<(), String> {
    let (_, flags) = parse(rest);
    let n: usize = flags
        .get("size")
        .ok_or("design requires --size N")?
        .parse()
        .map_err(|e| format!("--size: {e}"))?;
    let grid = Grid::square(n).map_err(|e| e.to_string())?;
    let cap: u32 = flags
        .get("cap")
        .map(|v| v.parse())
        .transpose()
        .map_err(|e| format!("--cap: {e}"))?
        .unwrap_or(2 * (n as u32 - 1));
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse())
        .transpose()
        .map_err(|e| format!("--seed: {e}"))?
        .unwrap_or(3);
    let effort = match flags.get("effort") {
        Some(v) if v.starts_with("learn") => {
            let mut parts = v.split(':').skip(1);
            Effort::Learn {
                cycles: parts.next().and_then(|s| s.parse().ok()).unwrap_or(8),
                threads: parts.next().and_then(|s| s.parse().ok()).unwrap_or(4),
            }
        }
        _ => Effort::Greedy,
    };
    let topo = drl_topology(grid, cap, effort, seed);
    if !topo.is_fully_connected() {
        return Err(format!(
            "no fully connected design found for {n}x{n} at cap {cap} with this budget; \
             try a larger --cap or --effort learn"
        ));
    }
    print_summary(&topo, cap);
    if let Some(out) = flags.get("out") {
        let json = serde_json::to_string_pretty(&topo).expect("topologies serialize");
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("(wrote {out})");
    }
    Ok(())
}

fn cmd_show(rest: &[String]) -> Result<(), String> {
    let (pos, _) = parse(rest);
    let path = pos.first().ok_or("show requires a topology file")?;
    let topo = load_topology(path)?;
    print_summary(&topo, topo.max_overlap());
    println!("\n{}", render::render_ascii(&topo));
    println!("{}", render::describe_loops(&topo));
    Ok(())
}

fn cmd_simulate(rest: &[String]) -> Result<(), String> {
    let (pos, flags) = parse(rest);
    let path = pos.first().ok_or("simulate requires a topology file")?;
    let topo = load_topology(path)?;
    let pattern = parse_pattern(flags.get("pattern").copied().unwrap_or("uniform"))?;
    let rate: f64 = flags
        .get("rate")
        .map(|v| v.parse())
        .transpose()
        .map_err(|e| format!("--rate: {e}"))?
        .unwrap_or(0.1);
    let cycles: u64 = flags
        .get("cycles")
        .map(|v| v.parse())
        .transpose()
        .map_err(|e| format!("--cycles: {e}"))?
        .unwrap_or(5_000);
    let cfg = SimConfig {
        warmup: cycles / 5,
        measure: cycles,
        drain: cycles / 2,
        ..SimConfig::routerless()
    };
    let mut sim = RouterlessSim::new(&topo);
    let m = run_synthetic(&mut sim, pattern, rate, &cfg, 1);
    println!("pattern {pattern:?} at {rate} flits/node/cycle over {cycles} cycles:");
    println!(
        "  avg packet latency: {:.2} cycles (max {})",
        m.avg_packet_latency(),
        m.max_latency
    );
    println!("  avg hops:           {:.2}", m.avg_hops());
    println!(
        "  accepted:           {:.3} flits/node/cycle",
        m.accepted_throughput()
    );
    println!("  delivery ratio:     {:.3}", m.delivery_ratio());
    let power = PowerModel::default();
    let fabric = Fabric::Routerless {
        overlap: topo.max_overlap(),
    };
    let p = power.from_metrics(fabric, &m);
    println!(
        "  power/node:         {:.3} mW ({:.3} static + {:.3} dynamic)",
        p.total_mw(),
        p.static_mw,
        p.dynamic_mw
    );
    Ok(())
}

fn cmd_sweep(rest: &[String]) -> Result<(), String> {
    let (pos, flags) = parse(rest);
    let path = pos.first().ok_or("sweep requires a topology file")?;
    let topo = load_topology(path)?;
    let pattern = parse_pattern(flags.get("pattern").copied().unwrap_or("uniform"))?;
    let step: f64 = flags
        .get("step")
        .map(|v| v.parse())
        .transpose()
        .map_err(|e| format!("--step: {e}"))?
        .unwrap_or(0.02);
    let cycles: u64 = flags
        .get("cycles")
        .map(|v| v.parse())
        .transpose()
        .map_err(|e| format!("--cycles: {e}"))?
        .unwrap_or(3_000);
    let cfg = SimConfig {
        warmup: 500,
        measure: cycles,
        drain: 2_000,
        ..SimConfig::routerless()
    };
    // Adaptive sweep: a serial coarse pass brackets the saturation point,
    // then the remaining fine points fill in across cores — bit-identical
    // to the full serial sweep (see `rlnoc_sim::sweep`).
    let sweep = SweepEngine::available().adaptive_sweep(
        || RouterlessSim::new(&topo),
        pattern,
        &cfg,
        SweepParams {
            start: step,
            step,
            max_rate: 1.0,
            latency_factor: 4.0,
            seed: 1,
        },
        4,
    );
    println!("rate      latency   accepted");
    for p in &sweep.points {
        println!("{:<8.3}  {:<8.2}  {:<8.3}", p.rate, p.latency, p.accepted);
    }
    println!(
        "zero-load {:.2} cycles, saturation {:.3} flits/node/cycle",
        sweep.zero_load_latency, sweep.saturation
    );
    Ok(())
}

fn print_summary(topo: &Topology, cap: u32) {
    let area = AreaModel::default();
    println!(
        "{} | cap {cap} | wire length {} | path diversity {:.2} | node area {:.0} um^2",
        topo.describe().lines().next().unwrap_or(""),
        topo.total_wire_length(),
        diversity::average_path_diversity(topo),
        area.node_area_um2(Fabric::Routerless { overlap: cap }),
    );
}
