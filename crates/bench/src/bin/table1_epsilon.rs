//! Table 1 — Hyperparameter exploration: the ε-greedy knob.
//!
//! Runs multi-threaded DRL exploration on an 8x8 NoC (overlap cap 14) at
//! ε ∈ {0.05, 0.1, 0.2, 0.3} with a fixed exploration-cycle budget
//! (standing in for the paper's fixed five-hour budget) and reports the
//! number of valid (fully connected) designs, the minimum average hop
//! count, and the hop-count standard deviation.
//!
//! Usage: `table1_epsilon [cycles_per_epsilon] [threads]`
//! (defaults 4 and 2; larger budgets sharpen the trend).

use rlnoc_bench::{f3, print_table, s, write_csv};
use rlnoc_core::explorer::ExplorerConfig;
use rlnoc_core::parallel::explore_parallel;
use rlnoc_core::routerless::RouterlessEnv;
use rlnoc_topology::Grid;

fn main() {
    let mut args = std::env::args().skip(1);
    let cycles: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let grid = Grid::square(8).expect("8x8 grid");
    let cap = 14;

    let paper = [
        (0.05, "25", "5.59", "0.140"),
        (0.10, "27", "5.60", "0.065"),
        (0.20, "11", "5.61", "0.050"),
        (0.30, "2", "5.53", "0.040"),
    ];

    let mut rows = Vec::new();
    for (i, &(epsilon, p_valid, p_min, p_sd)) in paper.iter().enumerate() {
        let env = RouterlessEnv::new(grid, cap);
        let mut config = ExplorerConfig::fast();
        config.epsilon = epsilon;
        config.max_steps = grid.len() / 8; // the DNN/MCTS prefix; completion finishes
        let report = explore_parallel(&env, &config, threads, cycles, 100 + i as u64);
        let hops: Vec<f64> = report
            .designs
            .iter()
            .filter(|d| d.successful)
            .map(|d| d.env.average_hops())
            .collect();
        let valid = hops.len();
        let min = hops.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = hops.iter().sum::<f64>() / hops.len().max(1) as f64;
        let sd = if hops.len() > 1 {
            (hops.iter().map(|h| (h - mean) * (h - mean)).sum::<f64>() / (hops.len() - 1) as f64)
                .sqrt()
        } else {
            0.0
        };
        rows.push(vec![
            s(epsilon),
            s(valid),
            if valid > 0 { f3(min) } else { s("-") },
            f3(sd),
            s(p_valid),
            s(p_min),
            s(p_sd),
        ]);
    }

    let headers = [
        "epsilon",
        "valid",
        "min_hops",
        "sd_hops",
        "paper_valid",
        "paper_min",
        "paper_sd",
    ];
    print_table(
        &format!("Table 1: epsilon sweep, 8x8 cap 14, {cycles} cycles x {threads} threads"),
        &headers,
        &rows,
    );
    write_csv("table1_epsilon", &headers, &rows);
    println!(
        "\nNote: the paper's budget is wall-clock (5 h); this run uses a fixed cycle\n\
         budget, so absolute design counts differ — the comparison point is the\n\
         valid-design/min-hop trade-off across epsilon."
    );
}
