//! Table 2 — DRL supports larger NoCs under a fixed overlap cap of 18.
//!
//! REC requires overlap exactly `2(N−1)`, so with 18 wires it stops at
//! 10x10; the DRL framework keeps producing fully connected designs up to
//! the theoretical 18x18 limit. Reports average hop count per size.
//!
//! Usage: `table2_large_noc [max_n]` (default 18; pass 14 for a quicker
//! run).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, f3, print_table, s, write_csv, Effort};
use rlnoc_topology::Grid;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(18);
    let cap = 18u32;
    let paper: &[(usize, &str, &str)] = &[
        (10, "9.64", "7.94"),
        (12, "N/A", "12.25"),
        (14, "N/A", "15.11"),
        (16, "N/A", "18.03"),
        (18, "N/A", "21.01"),
    ];

    let mut rows = Vec::new();
    for &(n, p_rec, p_drl) in paper.iter().filter(|&&(n, _, _)| n <= max_n) {
        // REC is only constructible when its required overlap fits the cap.
        let rec = if rlnoc_baselines::rec::required_overlap(n) <= cap {
            let t = rec_topology(Grid::square(n).expect("grid")).expect("REC");
            f3(t.average_hops())
        } else {
            s("N/A")
        };
        let start = std::time::Instant::now();
        let drl = drl_topology(Grid::square(n).expect("grid"), cap, Effort::from_env(), 7);
        let connected = drl.is_fully_connected();
        rows.push(vec![
            format!("{n}x{n}"),
            rec,
            if connected {
                f3(drl.average_hops())
            } else {
                s("disconnected")
            },
            s(p_rec),
            s(p_drl),
            format!("{:.1}s", start.elapsed().as_secs_f64()),
        ]);
    }

    let headers = [
        "size",
        "REC_hops",
        "DRL_hops",
        "paper_REC",
        "paper_DRL",
        "time",
    ];
    print_table(
        &format!("Table 2: fixed overlap cap {cap}, sizes up to {max_n}x{max_n}"),
        &headers,
        &rows,
    );
    write_csv("table2_large_noc", &headers, &rows);
}
