//! Table 3 — DRL exploits additional wiring resources on 8x8.
//!
//! REC is pinned at overlap 14 (= 2(N−1)); DRL keeps improving hop count
//! as the cap grows to 16, 18, 20.

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, f3, print_table, s, write_csv, Effort};
use rlnoc_topology::Grid;

fn main() {
    let grid = Grid::square(8).expect("8x8 grid");
    let rec = rec_topology(grid).expect("REC 8x8");
    let rec_hops = rec.average_hops();

    let paper = [(14u32, "6.22"), (16, "5.94"), (18, "5.82"), (20, "5.80")];
    let mut rows = vec![vec![
        s("REC"),
        s(14),
        f3(rec_hops),
        s("-"),
        s("7.33"),
        s("-"),
    ]];
    for &(cap, p_drl) in &paper {
        let drl = drl_topology(grid, cap, Effort::from_env(), 3);
        let hops = drl.average_hops();
        let improve = 100.0 * (rec_hops - hops) / rec_hops;
        rows.push(vec![
            s("DRL"),
            s(cap),
            f3(hops),
            format!("{improve:.2}%"),
            s(p_drl),
            s("15.1-20.9%"),
        ]);
    }

    let headers = [
        "design",
        "overlap",
        "avg_hops",
        "improve_vs_REC",
        "paper_hops",
        "paper_improve",
    ];
    print_table(
        "Table 3: 8x8 hop count vs node overlapping",
        &headers,
        &rows,
    );
    write_csv("table3_overlap_8x8", &headers, &rows);
}
