//! Table 4 — DRL exploits additional wiring resources on 10x10.
//!
//! REC is pinned at overlap 18; DRL keeps improving through caps 20–24.

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, f3, print_table, s, write_csv, Effort};
use rlnoc_topology::Grid;

fn main() {
    let grid = Grid::square(10).expect("10x10 grid");
    let rec = rec_topology(grid).expect("REC 10x10");
    let rec_hops = rec.average_hops();

    let paper = [(18u32, "7.94"), (20, "7.67"), (22, "7.59"), (24, "7.55")];
    let mut rows = vec![vec![
        s("REC"),
        s(18),
        f3(rec_hops),
        s("-"),
        s("9.64"),
        s("-"),
    ]];
    for &(cap, p_drl) in &paper {
        let drl = drl_topology(grid, cap, Effort::from_env(), 5);
        let hops = drl.average_hops();
        let improve = 100.0 * (rec_hops - hops) / rec_hops;
        rows.push(vec![
            s("DRL"),
            s(cap),
            f3(hops),
            format!("{improve:.2}%"),
            s(p_drl),
            s("17.6-21.7%"),
        ]);
    }

    let headers = [
        "design",
        "overlap",
        "avg_hops",
        "improve_vs_REC",
        "paper_hops",
        "paper_improve",
    ];
    print_table(
        "Table 4: 10x10 hop count vs node overlapping",
        &headers,
        &rows,
    );
    write_csv("table4_overlap_10x10", &headers, &rows);
}
