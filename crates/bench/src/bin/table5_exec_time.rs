//! Table 5 — 8x8 PARSEC workload execution time (ms).
//!
//! Simulates each benchmark's traffic model on Mesh-2, Mesh-1, REC, and
//! DRL, then converts the measured packet latencies to execution time via
//! the per-benchmark latency-sensitivity model (see `rlnoc-workloads`).
//!
//! Usage: `table5_exec_time [measure_cycles]` (default 20000).

use rlnoc_baselines::rec_topology;
use rlnoc_bench::{drl_topology, print_table, s, write_csv, Effort};
use rlnoc_sim::sweep::SweepEngine;
use rlnoc_sim::{MeshSim, RouterlessSim, SimConfig};
use rlnoc_topology::Grid;
use rlnoc_workloads::{run_benchmark, Benchmark};

fn main() {
    let measure: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let grid = Grid::square(8).expect("8x8 grid");
    let rec = rec_topology(grid).expect("REC");
    let drl = drl_topology(grid, 14, Effort::from_env(), 3);
    let mesh_cfg = SimConfig {
        warmup: 2_000,
        measure,
        drain: 5_000,
        ..SimConfig::mesh()
    };
    let rl_cfg = SimConfig {
        warmup: 2_000,
        measure,
        drain: 5_000,
        ..SimConfig::routerless()
    };

    let paper: &[(&str, &str, &str, &str, &str)] = &[
        ("blackscholes", "4.4", "4.2", "4.0", "4.0"),
        ("bodytrack", "5.4", "5.3", "5.1", "5.1"),
        ("canneal", "7.1", "6.4", "6.1", "6.0"),
        ("facesim", "626.0", "587.0", "515.2", "512.3"),
        ("fluidanimate", "35.3", "29.2", "25.2", "24.4"),
        ("streamcluster", "11.0", "11.0", "11.0", "11.0"),
    ];

    let rows = SweepEngine::available().map(&Benchmark::TABLE5, |i, bench| {
        let seed = 40 + i as u64;
        let m2 = run_benchmark(&mut MeshSim::mesh2(grid), *bench, &mesh_cfg, seed);
        let m1 = run_benchmark(&mut MeshSim::mesh1(grid), *bench, &mesh_cfg, seed);
        let mr = run_benchmark(&mut RouterlessSim::new(&rec), *bench, &rl_cfg, seed);
        let md = run_benchmark(&mut RouterlessSim::new(&drl), *bench, &rl_cfg, seed);
        let model = bench.model();
        let l_ref = m2.avg_packet_latency();
        let t = |m: &rlnoc_sim::Metrics| model.execution_time_ms(m.avg_packet_latency(), l_ref);
        let p = paper[i];
        vec![
            s(bench),
            format!("{:.1}", t(&m2)),
            format!("{:.1}", t(&m1)),
            format!("{:.1}", t(&mr)),
            format!("{:.1}", t(&md)),
            format!("{}/{}/{}/{}", p.1, p.2, p.3, p.4),
        ]
    });

    let headers = [
        "workload",
        "Mesh-2",
        "Mesh-1",
        "REC",
        "DRL",
        "paper(M2/M1/REC/DRL)",
    ];
    print_table("Table 5: 8x8 PARSEC execution time (ms)", &headers, &rows);
    write_csv("table5_exec_time", &headers, &rows);
}
