//! Renders per-phase summary tables from a telemetry JSONL file — the
//! offline companion to the sinks the experiment binaries write under
//! `results/*.telemetry.jsonl`.
//!
//! Usage: `telemetry_report <path.telemetry.jsonl>`

use rlnoc_telemetry::report::{parse_jsonl, render, summarize};

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: telemetry_report <path.telemetry.jsonl>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match parse_jsonl(&text) {
        Ok(events) => {
            println!("{} events from {path}\n", events.len());
            println!("{}", render(&summarize(&events)));
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
