//! Shared harness utilities for the paper-reproduction experiment
//! binaries (`src/bin/table*.rs`, `src/bin/fig*.rs`, `src/bin/exp_*.rs`).
//!
//! Every table and figure of the paper's evaluation has a binary that
//! regenerates its rows/series; `DESIGN.md` §3 is the index, and
//! `EXPERIMENTS.md` records paper-vs-measured values. Binaries print a
//! human-readable table and write CSV under `results/`.

#![warn(missing_docs)]

use rlnoc_core::explorer::ExplorerConfig;
use rlnoc_core::parallel::explore_parallel;
use rlnoc_core::routerless::RouterlessEnv;
use rlnoc_topology::{Grid, Topology};
use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// How much compute to spend producing each DRL design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Pure Algorithm-1 rollout (the framework with ε = 1 and no
    /// training): deterministic and fast. Used for large grids and quick
    /// runs.
    Greedy,
    /// Greedy rollout plus a number of learning cycles of DNN+MCTS
    /// exploration, keeping the best design found.
    Learn {
        /// Exploration cycles.
        cycles: usize,
        /// Parallel search threads (§4.6).
        threads: usize,
    },
}

impl Effort {
    /// Reads effort from the `RLNOC_EFFORT` environment variable:
    /// `greedy` (default) or `learn[:cycles[:threads]]`.
    pub fn from_env() -> Effort {
        match std::env::var("RLNOC_EFFORT") {
            Ok(v) if v.starts_with("learn") => {
                let mut parts = v.split(':').skip(1);
                let cycles = parts.next().and_then(|s| s.parse().ok()).unwrap_or(8);
                let threads = parts.next().and_then(|s| s.parse().ok()).unwrap_or(4);
                Effort::Learn { cycles, threads }
            }
            _ => Effort::Greedy,
        }
    }
}

/// Produces a DRL routerless design for `grid` under the node-overlapping
/// `cap`.
///
/// With [`Effort::Greedy`] this runs the framework's deterministic
/// Algorithm-1 rollout to completion, falling back to the budget-aware
/// random-restart rollout (`rlnoc_core::rollout::best_connected`) when the
/// cap is too tight for plain greedy. With [`Effort::Learn`] it
/// additionally runs multi-threaded DNN+MCTS exploration and returns the
/// best design seen.
///
/// The result may be disconnected when `cap` sits below this search
/// budget's reach (the paper's fully trained agent reaches cap 8 on 8x8;
/// laptop-scale search bottoms out around 13).
pub fn drl_topology(grid: Grid, cap: u32, effort: Effort, seed: u64) -> Topology {
    let mut best = greedy_rollout(grid, cap);
    if !best.is_fully_connected() {
        // Tight caps: the cap-N skeleton construction plus greedy filling.
        if let Some(t) = rlnoc_core::rollout::skeleton_rollout(grid, cap) {
            best = t;
        }
    }
    if !best.is_fully_connected() && grid.len() <= 100 {
        // Last resort on small grids: randomized-restart frugal search.
        if let Some(t) = rlnoc_core::rollout::best_connected(grid, cap, 24, seed) {
            best = t;
        }
    }
    if let Effort::Learn { cycles, threads } = effort {
        let env = RouterlessEnv::new(grid, cap);
        let config = ExplorerConfig::fast();
        let report = explore_parallel(&env, &config, threads, cycles, seed);
        if let Some(b) = report.best() {
            if b.env.is_fully_connected()
                && (!best.is_fully_connected() || b.env.average_hops() < best.average_hops())
            {
                best = b.env.topology().clone();
            }
        }
    }
    best
}

/// The framework's ε = 1 deterministic rollout: repeat Algorithm 1 until
/// no legal loop remains. Re-exported from `rlnoc_core::rollout`.
pub fn greedy_rollout(grid: Grid, cap: u32) -> Topology {
    rlnoc_core::rollout::greedy_rollout(grid, cap)
}

/// Prints an aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes rows as CSV under `results/<name>.csv`, returning the path.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Err(e) = fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(wrote {})", path.display());
    }
    path
}

/// Writes a live sink's events as JSONL under
/// `results/<name>.telemetry.jsonl` and prints the per-phase summary
/// tables (the same rendering as the `telemetry_report` binary). Returns
/// the path written, or `None` for a disabled sink or write failure.
pub fn write_telemetry(name: &str, sink: &rlnoc_telemetry::TelemetrySink) -> Option<PathBuf> {
    if !sink.is_enabled() {
        return None;
    }
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.telemetry.jsonl"));
    if let Err(e) = sink.write_jsonl(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
        return None;
    }
    println!("(wrote {})", path.display());
    let summaries = rlnoc_telemetry::report::summarize(&sink.events());
    println!("{}", rlnoc_telemetry::report::render(&summaries));
    Some(path)
}

/// Formats a float with 3 decimals (the tables' usual precision).
pub fn f3(x: impl Into<f64>) -> String {
    format!("{:.3}", x.into())
}

/// Formats any displayable value.
pub fn s(x: impl Display) -> String {
    x.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_rollout_connects_4x4() {
        let t = greedy_rollout(Grid::square(4).unwrap(), 6);
        assert!(t.is_fully_connected());
        assert!(t.max_overlap() <= 6);
    }

    #[test]
    fn drl_topology_greedy_effort_is_deterministic() {
        let g = Grid::square(4).unwrap();
        let a = drl_topology(g, 6, Effort::Greedy, 1);
        let b = drl_topology(g, 6, Effort::Greedy, 2);
        assert_eq!(a.loops(), b.loops());
    }

    #[test]
    fn effort_from_env_parses() {
        // Not setting the variable yields greedy.
        std::env::remove_var("RLNOC_EFFORT");
        assert_eq!(Effort::from_env(), Effort::Greedy);
    }
}
