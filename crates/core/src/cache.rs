//! A bounded LRU cache for policy evaluations.
//!
//! MCTS revisits states constantly — every cycle walks the tree from the
//! root, and `run_episode` evaluates a state both when expanding it and
//! when sampling an action from it. The network is deterministic given its
//! parameters, so an evaluation is fully determined by the pair
//! `(Environment::state_key, parameter generation)`; caching on that key
//! returns exactly what [`crate::PolicyAgent::evaluate`] would, and bumping
//! the generation on every optimizer step invalidates stale entries without
//! any explicit flush.

use crate::policy::Evaluation;
use std::collections::HashMap;

/// Hit/miss counters of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a network forward.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Sink/source of cached evaluations, so the same episode runner serves a
/// locally owned cache, a mutex-shared cache across A3C workers, or no
/// cache at all ([`NoCache`]).
pub trait EvalCacheHandle {
    /// Returns the cached evaluation for `(state_key, generation)`, if any.
    fn lookup(&mut self, state_key: u64, generation: u64) -> Option<Evaluation>;
    /// Stores an evaluation under `(state_key, generation)`.
    fn store(&mut self, state_key: u64, generation: u64, eval: &Evaluation);
}

/// A cache handle that caches nothing (every lookup misses silently).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCache;

impl EvalCacheHandle for NoCache {
    fn lookup(&mut self, _state_key: u64, _generation: u64) -> Option<Evaluation> {
        None
    }
    fn store(&mut self, _state_key: u64, _generation: u64, _eval: &Evaluation) {}
}

/// A capacity-bounded LRU map from `(state_key, parameter generation)` to
/// [`Evaluation`], with hit/miss counters.
///
/// Recency is tracked with a monotone tick; eviction scans for the
/// least-recently-used entry, which is O(capacity) but only runs once the
/// cache is full — negligible next to the network forward each eviction
/// stands in for.
#[derive(Debug, Clone)]
pub struct EvalCache {
    capacity: usize,
    entries: HashMap<(u64, u64), (Evaluation, u64)>,
    tick: u64,
    stats: CacheStats,
}

impl EvalCache {
    /// Creates a cache holding at most `capacity` evaluations. A capacity
    /// of zero disables the cache entirely (no storage, no counting).
    pub fn new(capacity: usize) -> Self {
        EvalCache {
            capacity,
            entries: HashMap::with_capacity(capacity.min(4096)),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Whether the cache can hold anything.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of cached evaluations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

impl EvalCacheHandle for EvalCache {
    fn lookup(&mut self, state_key: u64, generation: u64) -> Option<Evaluation> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        match self.entries.get_mut(&(state_key, generation)) {
            Some((eval, used)) => {
                *used = self.tick;
                self.stats.hits += 1;
                Some(eval.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn store(&mut self, state_key: u64, generation: u64, eval: &Evaluation) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity
            && !self.entries.contains_key(&(state_key, generation))
        {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries
            .insert((state_key, generation), (eval.clone(), self.tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(v: f64) -> Evaluation {
        Evaluation {
            probs: [vec![1.0], vec![1.0], vec![1.0], vec![1.0]],
            p_clockwise: 0.5,
            value: v,
        }
    }

    #[test]
    fn lookup_after_store_hits() {
        let mut c = EvalCache::new(8);
        assert!(c.lookup(1, 0).is_none());
        c.store(1, 0, &eval(2.0));
        assert_eq!(c.lookup(1, 0).unwrap().value, 2.0);
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn generation_change_invalidates() {
        let mut c = EvalCache::new(8);
        c.store(1, 0, &eval(2.0));
        assert!(c.lookup(1, 1).is_none(), "new generation must miss");
        assert!(c.lookup(1, 0).is_some(), "old generation entry intact");
    }

    #[test]
    fn eviction_drops_least_recently_used() {
        let mut c = EvalCache::new(2);
        c.store(1, 0, &eval(1.0));
        c.store(2, 0, &eval(2.0));
        assert!(c.lookup(1, 0).is_some()); // refresh key 1
        c.store(3, 0, &eval(3.0)); // evicts key 2
        assert_eq!(c.len(), 2);
        assert!(c.lookup(2, 0).is_none());
        assert!(c.lookup(1, 0).is_some());
        assert!(c.lookup(3, 0).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = EvalCache::new(0);
        c.store(1, 0, &eval(1.0));
        assert!(c.lookup(1, 0).is_none());
        assert!(!c.is_enabled());
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn hit_rate_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.merge(CacheStats { hits: 3, misses: 1 });
        assert_eq!(s.hit_rate(), 0.75);
    }
}
