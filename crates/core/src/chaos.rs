//! Deterministic fault injection for the resilience layer.
//!
//! A [`ChaosInjector`] carries a [`ChaosPlan`] — which global cycles get a
//! NaN gradient, a scaled (exploding) gradient, a poisoned parameter, a
//! worker panic, or a stall window — and fires each scheduled fault exactly
//! once, on the *first* attempt of its cycle. Because faults are keyed on
//! the cycle index (not the worker or wall clock), a chaos run is
//! reproducible at any thread count, and a recovered retry of the same
//! cycle observes a clean world: with the retry machinery restoring the
//! worker RNG, the recovered run is bit-identical to the never-faulted run
//! (asserted in `tests/chaos.rs`).
//!
//! The injector is intended for tests and the `exp_chaos` smoke binary,
//! but it ships in the library so the hook sites in [`crate::parallel`]
//! exercise the exact production code path; with no injector configured
//! each hook is one `Option` branch.

use rlnoc_nn::Tensor;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which faults fire at which global cycle indices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// Cycles whose gradient snapshot gets a NaN written into its first
    /// tensor (first attempt only — the retry computes clean gradients).
    pub nan_grad_cycles: Vec<usize>,
    /// Cycles whose gradients get a NaN on *every* attempt, modelling a
    /// persistent numerical failure that must end in quarantine and a
    /// typed [`crate::parallel::ExploreError::Numerical`].
    pub persistent_nan_grad_cycles: Vec<usize>,
    /// Cycles whose gradients are scaled by [`ChaosPlan::explode_factor`]
    /// (finite, but far beyond any sane norm) to trip the EWMA check.
    pub explode_grad_cycles: Vec<usize>,
    /// Gradient scale applied on exploding cycles.
    pub explode_factor: f32,
    /// Cycles after whose optimizer step the first parent parameter is
    /// poisoned with NaN, forcing the post-step check to roll back.
    pub nan_param_cycles: Vec<usize>,
    /// Cycles whose first attempt panics at cycle start (exercises the
    /// catch_unwind/respawn path).
    pub panic_cycles: Vec<usize>,
    /// Cycles whose first attempt stalls at cycle start for
    /// [`ChaosPlan::stall_window`] unless the watchdog interrupts sooner.
    pub stall_cycles: Vec<usize>,
    /// How long a stalled worker sleeps if nothing interrupts it. Keep this
    /// finite: it is the harness's own upper bound on damage.
    pub stall_window: Duration,
}

impl ChaosPlan {
    /// A plan that injects nothing (useful as a mutation base).
    pub fn none() -> Self {
        ChaosPlan {
            explode_factor: 1e12,
            stall_window: Duration::from_secs(60),
            ..ChaosPlan::default()
        }
    }

    /// A seed-scheduled plan over `total_cycles`: `faults` cycles are drawn
    /// without replacement via SplitMix64 and dealt round-robin across the
    /// recoverable fault classes (NaN grad, exploding grad, NaN param,
    /// panic, stall). Deterministic in `(seed, total_cycles, faults)`.
    pub fn seeded(seed: u64, total_cycles: usize, faults: usize) -> Self {
        let mut plan = ChaosPlan::none();
        if total_cycles == 0 {
            return plan;
        }
        let mut state = seed;
        let mut next = move || {
            // SplitMix64: the workspace's standard stateless stream.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut chosen = BTreeSet::new();
        while chosen.len() < faults.min(total_cycles) {
            chosen.insert((next() % total_cycles as u64) as usize);
        }
        for (i, cycle) in chosen.into_iter().enumerate() {
            match i % 5 {
                0 => plan.nan_grad_cycles.push(cycle),
                1 => plan.explode_grad_cycles.push(cycle),
                2 => plan.nan_param_cycles.push(cycle),
                3 => plan.panic_cycles.push(cycle),
                _ => plan.stall_cycles.push(cycle),
            }
        }
        plan
    }
}

/// The distinct fault classes, used to key the fired-once bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FaultClass {
    NanGrad,
    ExplodeGrad,
    NanParam,
    Panic,
    Stall,
}

#[derive(Debug)]
struct InjectorState {
    plan: ChaosPlan,
    /// `(class, cycle)` pairs that already fired (persistent faults are
    /// never recorded here).
    fired: parking_lot::Mutex<BTreeSet<(FaultClass, usize)>>,
    injected: AtomicU64,
}

/// A cloneable handle to one shared fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosInjector(Arc<InjectorState>);

/// What [`ChaosInjector::on_cycle_start`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartOutcome {
    /// No fault scheduled here (or it already fired).
    Clean,
    /// The worker stalled; `interrupted` is true when the watchdog's
    /// interrupt flag cut the window short.
    Stalled {
        /// Whether the stall ended by interrupt rather than timeout.
        interrupted: bool,
    },
}

impl ChaosInjector {
    /// Wraps a plan for sharing across workers.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosInjector(Arc::new(InjectorState {
            plan,
            fired: parking_lot::Mutex::new(BTreeSet::new()),
            injected: AtomicU64::new(0),
        }))
    }

    /// The schedule this injector executes.
    pub fn plan(&self) -> &ChaosPlan {
        &self.0.plan
    }

    /// Total faults injected so far (all classes).
    pub fn injected(&self) -> u64 {
        self.0.injected.load(Ordering::Relaxed)
    }

    /// Claims the one-shot fault `(class, cycle)` if scheduled and not yet
    /// fired.
    fn claim(&self, class: FaultClass, cycle: usize, scheduled: &[usize]) -> bool {
        if !scheduled.contains(&cycle) {
            return false;
        }
        if !self.0.fired.lock().insert((class, cycle)) {
            return false;
        }
        self.0.injected.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Cycle-start hook: may panic (panic injection) or stall. A stall
    /// parks in short slices, re-checking `interrupt` each slice so a
    /// watchdog can cancel it; the flag is consumed when honored.
    pub fn on_cycle_start(&self, cycle: usize, interrupt: &AtomicBool) -> StartOutcome {
        if self.claim(FaultClass::Panic, cycle, &self.0.plan.panic_cycles) {
            panic!("chaos: injected worker panic at cycle {cycle}");
        }
        if self.claim(FaultClass::Stall, cycle, &self.0.plan.stall_cycles) {
            let end = Instant::now() + self.0.plan.stall_window;
            while Instant::now() < end {
                if interrupt.swap(false, Ordering::AcqRel) {
                    return StartOutcome::Stalled { interrupted: true };
                }
                std::thread::park_timeout(Duration::from_millis(2));
            }
            return StartOutcome::Stalled { interrupted: false };
        }
        StartOutcome::Clean
    }

    /// Gradient hook: corrupts `grads` when cycle is scheduled. Returns
    /// true when something was injected.
    pub fn corrupt_grads(&self, cycle: usize, grads: &mut [Tensor]) -> bool {
        if grads.is_empty() {
            return false;
        }
        if self.0.plan.persistent_nan_grad_cycles.contains(&cycle) {
            // Persistent: fires on every attempt, bypassing fired-once.
            self.0.injected.fetch_add(1, Ordering::Relaxed);
            grads[0].as_mut_slice()[0] = f32::NAN;
            return true;
        }
        if self.claim(FaultClass::NanGrad, cycle, &self.0.plan.nan_grad_cycles) {
            grads[0].as_mut_slice()[0] = f32::NAN;
            return true;
        }
        if self.claim(
            FaultClass::ExplodeGrad,
            cycle,
            &self.0.plan.explode_grad_cycles,
        ) {
            let factor = self.0.plan.explode_factor;
            for g in grads.iter_mut() {
                *g = g.scale(factor);
            }
            return true;
        }
        false
    }

    /// Post-step hook: reports whether the parent's parameters should be
    /// poisoned for `cycle` (the caller writes the NaN while holding the
    /// parent lock, so the post-step verifier sees it).
    pub fn take_param_corruption(&self, cycle: usize) -> bool {
        self.claim(FaultClass::NanParam, cycle, &self.0.plan.nan_param_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_per_cycle() {
        let mut plan = ChaosPlan::none();
        plan.nan_grad_cycles = vec![2];
        let inj = ChaosInjector::new(plan);
        let mut grads = vec![Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap()];
        assert!(!inj.corrupt_grads(1, &mut grads));
        assert!(inj.corrupt_grads(2, &mut grads), "scheduled cycle fires");
        assert!(grads[0].as_slice()[0].is_nan());
        grads[0].as_mut_slice()[0] = 1.0;
        assert!(
            !inj.corrupt_grads(2, &mut grads),
            "retry sees a clean world"
        );
        assert!(grads[0].as_slice()[0].is_finite());
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn persistent_faults_fire_every_attempt() {
        let mut plan = ChaosPlan::none();
        plan.persistent_nan_grad_cycles = vec![0];
        let inj = ChaosInjector::new(plan);
        let mut grads = vec![Tensor::zeros(&[2])];
        for _ in 0..3 {
            grads[0].as_mut_slice()[0] = 0.0;
            assert!(inj.corrupt_grads(0, &mut grads));
            assert!(grads[0].as_slice()[0].is_nan());
        }
        assert_eq!(inj.injected(), 3);
    }

    #[test]
    fn explode_scales_all_tensors() {
        let mut plan = ChaosPlan::none();
        plan.explode_grad_cycles = vec![0];
        plan.explode_factor = 100.0;
        let inj = ChaosInjector::new(plan);
        let mut grads = vec![
            Tensor::from_vec(vec![1.0], &[1]).unwrap(),
            Tensor::from_vec(vec![-2.0], &[1]).unwrap(),
        ];
        assert!(inj.corrupt_grads(0, &mut grads));
        assert_eq!(grads[0].as_slice(), &[100.0]);
        assert_eq!(grads[1].as_slice(), &[-200.0]);
    }

    #[test]
    #[should_panic(expected = "injected worker panic")]
    fn panic_injection_panics() {
        let mut plan = ChaosPlan::none();
        plan.panic_cycles = vec![0];
        let inj = ChaosInjector::new(plan);
        let flag = AtomicBool::new(false);
        inj.on_cycle_start(0, &flag);
    }

    #[test]
    fn stall_honors_interrupt_flag() {
        let mut plan = ChaosPlan::none();
        plan.stall_cycles = vec![0];
        plan.stall_window = Duration::from_secs(30);
        let inj = ChaosInjector::new(plan);
        let flag = AtomicBool::new(true); // pre-raised: cancels immediately
        let start = Instant::now();
        let outcome = inj.on_cycle_start(0, &flag);
        assert_eq!(outcome, StartOutcome::Stalled { interrupted: true });
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "must not sit out the window"
        );
        assert!(!flag.load(Ordering::Relaxed), "flag consumed");
        // Retry is clean.
        assert_eq!(inj.on_cycle_start(0, &flag), StartOutcome::Clean);
    }

    #[test]
    fn stall_times_out_without_interrupt() {
        let mut plan = ChaosPlan::none();
        plan.stall_cycles = vec![0];
        plan.stall_window = Duration::from_millis(20);
        let inj = ChaosInjector::new(plan);
        let flag = AtomicBool::new(false);
        let outcome = inj.on_cycle_start(0, &flag);
        assert_eq!(outcome, StartOutcome::Stalled { interrupted: false });
    }

    #[test]
    fn seeded_plans_are_deterministic_and_disjoint() {
        let a = ChaosPlan::seeded(7, 40, 10);
        let b = ChaosPlan::seeded(7, 40, 10);
        assert_eq!(a, b);
        let c = ChaosPlan::seeded(8, 40, 10);
        assert_ne!(a, c, "different seeds should differ");
        let mut all: Vec<usize> = a
            .nan_grad_cycles
            .iter()
            .chain(&a.explode_grad_cycles)
            .chain(&a.nan_param_cycles)
            .chain(&a.panic_cycles)
            .chain(&a.stall_cycles)
            .copied()
            .collect();
        assert_eq!(all.len(), 10);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 10, "fault cycles drawn without replacement");
        assert!(all.iter().all(|&cy| cy < 40));
    }
}
