//! Checkpoint/resume for long exploration runs.
//!
//! A checkpoint captures the *learned* state of a run — the parent
//! network's parameters and generation, the number of cycles completed, and
//! the best design found so far. The search tree and evaluation cache are
//! deliberately not captured: both are derived state the restored network
//! re-learns, and the cache is invalidated by any parameter change anyway.
//!
//! # On-disk format (v2)
//!
//! ```text
//! RLNOC-CKPT v2 <payload-bytes>\n
//! <payload: the checkpoint as JSON>
//! \nCRC32 <8 hex digits>\n
//! ```
//!
//! The header declares the payload length (so a truncated file is
//! distinguishable from a corrupt one) and the footer carries an IEEE
//! CRC32 of the payload (so any bit flip is detected rather than resumed
//! from). [`ExploreCheckpoint::save`] writes a temp file, `fsync`s it,
//! rotates any existing checkpoint to `<path>.prev`, renames the temp file
//! into place, and best-effort-syncs the parent directory — so at every
//! instant there is at least one intact generation on disk, and
//! [`ExploreCheckpoint::load_with_recovery`] falls back to `.prev` when
//! the primary is torn. Plain-JSON v1 checkpoints (pre-CRC) still load.
//!
//! Consumers: [`crate::Explorer::run_checkpointed`] for the
//! single-threaded driver and
//! [`crate::parallel::explore_parallel_checkpointed`] for the supervised
//! parallel learner.

use crate::explorer::DesignResult;
use crate::policy::PolicyAgent;
use crate::resilience::NormSentinel;
use rlnoc_nn::Tensor;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Magic prefix opening every versioned checkpoint header.
const MAGIC: &str = "RLNOC-CKPT";
/// Format version written by [`ExploreCheckpoint::save`].
const VERSION: &str = "v2";
/// Footer: `\nCRC32 ` + 8 hex digits + `\n`.
const FOOTER_LEN: usize = 16;

/// A checkpoint save/load failure.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the checkpoint file.
    Io(std::io::Error),
    /// The payload (or a legacy v1 file) does not parse as a checkpoint.
    Format(serde_json::Error),
    /// The file ends before the length declared in its header: a torn
    /// write. `.prev` recovery applies.
    Truncated {
        /// Bytes the header + footer promised.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The file is complete but its bytes fail validation (CRC mismatch,
    /// mangled header/footer, non-UTF-8 payload). `.prev` recovery
    /// applies. The detail names what failed, including both CRC values on
    /// a checksum mismatch.
    Corrupt {
        /// Human-readable description of the failed validation.
        detail: String,
    },
    /// The file is a well-formed checkpoint of an unsupported format
    /// version. Deliberate, so no `.prev` fallback: silently resuming an
    /// older generation under a newer format is a foot-gun.
    VersionMismatch {
        /// The version token found in the header.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(e) => write!(f, "checkpoint format error: {e}"),
            CheckpointError::Truncated { expected, found } => write!(
                f,
                "checkpoint truncated: expected {expected} bytes, found {found}"
            ),
            CheckpointError::Corrupt { detail } => write!(f, "checkpoint corrupt: {detail}"),
            CheckpointError::VersionMismatch { found } => write!(
                f,
                "checkpoint version mismatch: found `{found}`, this build reads {VERSION}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Format(e)
    }
}

/// Which on-disk generation a recovered load came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointSource {
    /// The primary checkpoint file was intact.
    Primary,
    /// The primary was missing or damaged; the rotated `.prev` generation
    /// was used (the run re-executes the cycles since that save, which the
    /// batch-pure replay design makes bit-identical).
    Previous,
}

/// IEEE CRC32 (the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The rotated previous-generation path: `<path>.prev`.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".prev");
    PathBuf::from(p)
}

/// Where and how often to checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file location. If the file (or its `.prev` rotation)
    /// exists when a checkpointed run starts, the run resumes from it.
    pub path: PathBuf,
    /// Save every this many completed cycles (clamped to ≥ 1); a final
    /// save always happens at completion.
    pub every: usize,
}

impl CheckpointConfig {
    /// A config saving to `path` every `every` cycles.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointConfig {
            path: path.into(),
            every,
        }
    }
}

/// Optimizer and anomaly-sentinel state saved alongside the parameters.
///
/// Adam's moment estimates are not parameters, so a checkpoint holding
/// only [`ExploreCheckpoint::params`] restores the *weights* but restarts
/// bias correction from step zero — every post-resume update then differs
/// from the uninterrupted run's. Capturing this state is what makes
/// resume-after-crash bit-identical to never crashing (asserted by
/// `tests/chaos.rs`). Absent from a checkpoint (legacy v1 files and early
/// v2 saves), resume falls back to the old fresh-optimizer behavior.
#[derive(Debug, Clone)]
pub struct LearnerState {
    /// Adam step count.
    pub adam_t: u64,
    /// Adam first-moment estimates, one per parameter tensor.
    pub adam_m: Vec<Tensor>,
    /// Adam second-moment estimates, one per parameter tensor.
    pub adam_v: Vec<Tensor>,
    /// Gradient-norm sentinel EWMA (see [`NormSentinel`]).
    pub sentinel_ewma: f64,
    /// Accepted steps the sentinel has observed.
    pub sentinel_observed: u64,
}

impl LearnerState {
    /// Captures the agent's optimizer and sentinel state for saving.
    pub fn capture(agent: &PolicyAgent) -> Self {
        let (adam_t, adam_m, adam_v, sentinel) = agent.optimizer_snapshot();
        LearnerState {
            adam_t,
            adam_m,
            adam_v,
            sentinel_ewma: sentinel.ewma(),
            sentinel_observed: sentinel.observed(),
        }
    }

    /// Restores the captured state into a resumed agent.
    pub fn restore_into(&self, agent: &mut PolicyAgent) {
        agent.restore_optimizer(
            self.adam_t,
            self.adam_m.clone(),
            self.adam_v.clone(),
            NormSentinel::from_parts(self.sentinel_ewma, self.sentinel_observed),
        );
    }
}

impl Serialize for LearnerState {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            (String::from("adam_t"), self.adam_t.serialize()),
            (String::from("adam_m"), self.adam_m.serialize()),
            (String::from("adam_v"), self.adam_v.serialize()),
            (
                String::from("sentinel_ewma"),
                self.sentinel_ewma.serialize(),
            ),
            (
                String::from("sentinel_observed"),
                self.sentinel_observed.serialize(),
            ),
        ])
    }
}

impl Deserialize for LearnerState {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        let field = |name: &str| {
            value.get(name).ok_or_else(|| {
                SerdeError::custom(format!("missing field `{name}` in LearnerState"))
            })
        };
        Ok(LearnerState {
            adam_t: u64::deserialize(field("adam_t")?)?,
            adam_m: Vec::deserialize(field("adam_m")?)?,
            adam_v: Vec::deserialize(field("adam_v")?)?,
            sentinel_ewma: f64::deserialize(field("sentinel_ewma")?)?,
            sentinel_observed: u64::deserialize(field("sentinel_observed")?)?,
        })
    }
}

/// The durable state of an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreCheckpoint<E> {
    /// Exploration cycles completed across all runs so far.
    pub cycles_done: usize,
    /// The seed of the run (restored runs must pass the same seed).
    pub seed: u64,
    /// Parameter generation matching [`ExploreCheckpoint::params`].
    pub param_generation: u64,
    /// Snapshot of the (parent) network parameters.
    pub params: Vec<rlnoc_nn::Tensor>,
    /// Optimizer + sentinel state matching [`ExploreCheckpoint::params`].
    /// `None` in legacy checkpoints, where resume restarts the optimizer.
    pub learner: Option<LearnerState>,
    /// Best successful design found so far, across all runs.
    pub best: Option<DesignResult<E>>,
}

// Manual serde impls: the vendored derive does not handle generic types.
impl<E: Serialize> Serialize for ExploreCheckpoint<E> {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            (String::from("cycles_done"), self.cycles_done.serialize()),
            (String::from("seed"), self.seed.serialize()),
            (
                String::from("param_generation"),
                self.param_generation.serialize(),
            ),
            (String::from("params"), self.params.serialize()),
            (String::from("learner"), self.learner.serialize()),
            (String::from("best"), self.best.serialize()),
        ])
    }
}

impl<E: Deserialize> Deserialize for ExploreCheckpoint<E> {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        let field = |name: &str| {
            value.get(name).ok_or_else(|| {
                SerdeError::custom(format!("missing field `{name}` in ExploreCheckpoint"))
            })
        };
        Ok(ExploreCheckpoint {
            cycles_done: usize::deserialize(field("cycles_done")?)?,
            seed: u64::deserialize(field("seed")?)?,
            param_generation: u64::deserialize(field("param_generation")?)?,
            params: Vec::deserialize(field("params")?)?,
            // Tolerated when absent: legacy checkpoints predate the
            // learner state and resume with a fresh optimizer.
            learner: match value.get("learner") {
                Some(v) => Option::deserialize(v)?,
                None => None,
            },
            best: Option::deserialize(field("best")?)?,
        })
    }
}

/// Frames `payload` in the v2 header/footer.
fn encode_v2(payload: &str) -> Vec<u8> {
    let mut out = format!("{MAGIC} {VERSION} {}\n", payload.len()).into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out.extend_from_slice(format!("\nCRC32 {:08x}\n", crc32(payload.as_bytes())).as_bytes());
    out
}

impl<E: Serialize + Deserialize> ExploreCheckpoint<E> {
    /// Writes the checkpoint durably and atomically: the framed payload
    /// goes to `<path>.tmp` and is `fsync`ed, any existing checkpoint
    /// rotates to `<path>.prev`, the temp file renames over `path`, and
    /// the parent directory is synced (best effort — not every filesystem
    /// supports it). A crash at any point leaves an intact generation.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(self)?;
        let bytes = encode_v2(&json);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        if path.exists() {
            std::fs::rename(path, prev_path(path))?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and validates a checkpoint, distinguishing
    /// [`CheckpointError::Truncated`] (file shorter than its header
    /// declares), [`CheckpointError::Corrupt`] (CRC or framing damage),
    /// and [`CheckpointError::VersionMismatch`]. Files without the v2
    /// magic are tried as legacy plain-JSON v1 checkpoints.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }

    /// Parses checkpoint bytes (the validation half of
    /// [`ExploreCheckpoint::load`], exposed for corruption tests).
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let magic_prefix = format!("{MAGIC} ");
        if !bytes.starts_with(magic_prefix.as_bytes()) {
            // Legacy v1: the whole file is bare JSON.
            let text = std::str::from_utf8(bytes).map_err(|_| CheckpointError::Corrupt {
                detail: "file is neither a framed checkpoint nor UTF-8 JSON".into(),
            })?;
            return Ok(serde_json::from_str(text)?);
        }
        let header_end =
            bytes
                .iter()
                .position(|&b| b == b'\n')
                .ok_or(CheckpointError::Truncated {
                    expected: bytes.len() + 1,
                    found: bytes.len(),
                })?;
        let header =
            std::str::from_utf8(&bytes[..header_end]).map_err(|_| CheckpointError::Corrupt {
                detail: "header is not UTF-8".into(),
            })?;
        let mut fields = header.split(' ');
        let _magic = fields.next();
        let version = fields.next().unwrap_or("");
        if version != VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: version.to_string(),
            });
        }
        let declared: usize =
            fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| CheckpointError::Corrupt {
                    detail: format!("unparseable header `{header}`"),
                })?;
        let body = &bytes[header_end + 1..];
        let expected_total = header_end + 1 + declared + FOOTER_LEN;
        if body.len() < declared + FOOTER_LEN {
            return Err(CheckpointError::Truncated {
                expected: expected_total,
                found: bytes.len(),
            });
        }
        let payload = &body[..declared];
        let footer =
            std::str::from_utf8(&body[declared..]).map_err(|_| CheckpointError::Corrupt {
                detail: "footer is not UTF-8".into(),
            })?;
        let stored = footer
            .strip_prefix("\nCRC32 ")
            .and_then(|rest| rest.strip_suffix('\n'))
            .and_then(|hex| u32::from_str_radix(hex, 16).ok())
            .ok_or_else(|| CheckpointError::Corrupt {
                detail: format!("malformed footer `{}`", footer.escape_default()),
            })?;
        let computed = crc32(payload);
        if stored != computed {
            return Err(CheckpointError::Corrupt {
                detail: format!("CRC mismatch: stored {stored:08x}, computed {computed:08x}"),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|_| CheckpointError::Corrupt {
            detail: "payload is not UTF-8 despite matching CRC".into(),
        })?;
        Ok(serde_json::from_str(text)?)
    }

    /// [`ExploreCheckpoint::load`], falling back to the rotated `.prev`
    /// generation when the primary is missing or damaged (torn write,
    /// CRC failure, truncation, unparseable payload). Reports which
    /// generation was used. A [`CheckpointError::VersionMismatch`] never
    /// falls back; if the fallback also fails, the *primary's* error is
    /// returned.
    pub fn load_with_recovery(path: &Path) -> Result<(Self, CheckpointSource), CheckpointError> {
        let primary = match Self::load(path) {
            Ok(cp) => return Ok((cp, CheckpointSource::Primary)),
            Err(e @ CheckpointError::VersionMismatch { .. }) => return Err(e),
            Err(e) => e,
        };
        match Self::load(&prev_path(path)) {
            Ok(cp) => Ok((cp, CheckpointSource::Previous)),
            Err(_) => Err(primary),
        }
    }

    /// Resume helper for checkpointed runs: `Ok(None)` when no generation
    /// exists on disk (fresh start), `Ok(Some(..))` on a successful
    /// (possibly `.prev`-recovered) load, and the typed error when a
    /// checkpoint exists but cannot be trusted.
    pub fn try_resume(path: &Path) -> Result<Option<(Self, CheckpointSource)>, CheckpointError> {
        match Self::load_with_recovery(path) {
            Ok(loaded) => Ok(Some(loaded)),
            Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routerless::RouterlessEnv;
    use rlnoc_topology::Grid;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rlnoc_ckpt_{}_{name}.json", std::process::id()))
    }

    fn sample(cycles_done: usize) -> ExploreCheckpoint<RouterlessEnv> {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        ExploreCheckpoint {
            cycles_done,
            seed: 42,
            param_generation: cycles_done as u64,
            params: vec![rlnoc_nn::Tensor::zeros(&[2, 3])],
            learner: Some(LearnerState {
                adam_t: cycles_done as u64,
                adam_m: vec![Tensor::full(&[2, 3], 0.125)],
                adam_v: vec![Tensor::full(&[2, 3], 0.25)],
                sentinel_ewma: 1.5,
                sentinel_observed: cycles_done as u64,
            }),
            best: Some(DesignResult {
                env,
                final_return: -1.25,
                cycle: 3,
                steps: 5,
                successful: true,
            }),
        }
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(prev_path(path));
    }

    #[test]
    fn save_load_roundtrip() {
        let cp = sample(7);
        let path = scratch("roundtrip");
        cleanup(&path);
        cp.save(&path).unwrap();
        let back = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap();
        assert_eq!(back.cycles_done, 7);
        assert_eq!(back.seed, 42);
        assert_eq!(back.param_generation, 7);
        assert_eq!(back.params, cp.params);
        let learner = back.learner.as_ref().expect("learner state round-trips");
        assert_eq!(learner.adam_t, 7);
        assert_eq!(learner.adam_m, cp.learner.as_ref().unwrap().adam_m);
        assert_eq!(learner.adam_v, cp.learner.as_ref().unwrap().adam_v);
        assert_eq!(learner.sentinel_ewma, 1.5);
        assert_eq!(learner.sentinel_observed, 7);
        let best = back.best.unwrap();
        assert_eq!(best.final_return, -1.25);
        assert_eq!(best.cycle, 3);
        assert!(best.successful);
        // The temp file is gone after the atomic rename.
        assert!(!path.with_extension("json.tmp").exists());
        cleanup(&path);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = ExploreCheckpoint::<RouterlessEnv>::load(&scratch("missing")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn load_garbage_is_format_error() {
        let path = scratch("garbage");
        std::fs::write(&path, b"not json {").unwrap();
        let err = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
        cleanup(&path);
    }

    #[test]
    fn missing_learner_field_deserializes_as_none() {
        // Legacy payloads (v1 files and early v2 saves) predate the
        // learner field; they must load with `learner: None`, not error.
        let stripped = match sample(5).serialize() {
            Value::Object(fields) => {
                Value::Object(fields.into_iter().filter(|(k, _)| k != "learner").collect())
            }
            other => panic!("checkpoints serialize as objects, got {other:?}"),
        };
        let back = ExploreCheckpoint::<RouterlessEnv>::deserialize(&stripped).unwrap();
        assert_eq!(back.cycles_done, 5);
        assert!(
            back.learner.is_none(),
            "absent field resumes optimizer-fresh"
        );
    }

    #[test]
    fn legacy_plain_json_still_loads() {
        let path = scratch("legacy");
        let json = serde_json::to_string(&sample(5)).unwrap();
        std::fs::write(&path, json).unwrap();
        let back = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap();
        assert_eq!(back.cycles_done, 5);
        cleanup(&path);
    }

    #[test]
    fn truncation_is_typed() {
        let path = scratch("truncated");
        cleanup(&path);
        sample(3).save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap_err();
        match err {
            CheckpointError::Truncated { expected, found } => {
                assert_eq!(expected, full.len());
                assert_eq!(found, full.len() / 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        cleanup(&path);
    }

    #[test]
    fn bit_flip_is_corrupt_with_both_crcs() {
        let path = scratch("flipped");
        cleanup(&path);
        sample(3).save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20; // flip a payload bit
        std::fs::write(&path, &bytes).unwrap();
        let err = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap_err();
        match err {
            CheckpointError::Corrupt { detail } => {
                assert!(detail.contains("CRC mismatch"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        cleanup(&path);
    }

    #[test]
    fn future_version_is_mismatch_and_never_recovers() {
        let path = scratch("version");
        cleanup(&path);
        sample(1).save(&path).unwrap(); // leaves a valid primary...
        sample(2).save(&path).unwrap(); // ...rotated to .prev
        let mut bytes = std::fs::read(&path).unwrap();
        let v = format!("{MAGIC} {VERSION}");
        bytes[v.len() - 1] = b'9'; // v2 -> v9
        std::fs::write(&path, &bytes).unwrap();
        let err = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::VersionMismatch { ref found } if found == "v9"));
        // load_with_recovery must surface the mismatch, not fall back.
        let err = ExploreCheckpoint::<RouterlessEnv>::load_with_recovery(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::VersionMismatch { .. }));
        cleanup(&path);
    }

    #[test]
    fn save_rotates_prev_and_recovery_uses_it() {
        let path = scratch("rotate");
        cleanup(&path);
        sample(1).save(&path).unwrap();
        assert!(
            !prev_path(&path).exists(),
            "first save has nothing to rotate"
        );
        sample(2).save(&path).unwrap();
        assert!(prev_path(&path).exists(), "second save rotates the first");

        let (cp, source) = ExploreCheckpoint::<RouterlessEnv>::load_with_recovery(&path).unwrap();
        assert_eq!(cp.cycles_done, 2);
        assert_eq!(source, CheckpointSource::Primary);

        // Tear the primary: recovery serves the rotated generation.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (cp, source) = ExploreCheckpoint::<RouterlessEnv>::load_with_recovery(&path).unwrap();
        assert_eq!(cp.cycles_done, 1);
        assert_eq!(source, CheckpointSource::Previous);

        // Both generations damaged: the primary's typed error surfaces.
        std::fs::write(prev_path(&path), b"\0\0\0").unwrap();
        let err = ExploreCheckpoint::<RouterlessEnv>::load_with_recovery(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Truncated { .. }));
        assert!(ExploreCheckpoint::<RouterlessEnv>::try_resume(&path).is_err());
        cleanup(&path);
    }

    #[test]
    fn try_resume_distinguishes_fresh_start() {
        let path = scratch("fresh");
        cleanup(&path);
        assert!(ExploreCheckpoint::<RouterlessEnv>::try_resume(&path)
            .unwrap()
            .is_none());
        sample(4).save(&path).unwrap();
        let (cp, _) = ExploreCheckpoint::<RouterlessEnv>::try_resume(&path)
            .unwrap()
            .expect("saved checkpoint resumes");
        assert_eq!(cp.cycles_done, 4);
        // Primary deleted but .prev present: still resumes.
        sample(5).save(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let (cp, source) = ExploreCheckpoint::<RouterlessEnv>::try_resume(&path)
            .unwrap()
            .expect("prev generation resumes");
        assert_eq!(cp.cycles_done, 4);
        assert_eq!(source, CheckpointSource::Previous);
        cleanup(&path);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
