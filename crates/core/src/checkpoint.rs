//! Checkpoint/resume for long exploration runs.
//!
//! A checkpoint captures the *learned* state of a run — the parent
//! network's parameters and generation, the number of cycles completed, and
//! the best design found so far — as one JSON file written atomically
//! (temp file + rename), so a killed run restarts where it left off
//! instead of from scratch. The search tree and evaluation cache are
//! deliberately not captured: both are derived state the restored network
//! re-learns, and the cache is invalidated by any parameter change anyway.
//!
//! Consumers: [`crate::Explorer::run_checkpointed`] for the
//! single-threaded driver and
//! [`crate::parallel::explore_parallel_checkpointed`] for the supervised
//! parallel learner.

use crate::explorer::DesignResult;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::path::{Path, PathBuf};

/// A checkpoint save/load failure.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the checkpoint file.
    Io(std::io::Error),
    /// The file exists but does not parse as a checkpoint (corrupt,
    /// truncated mid-write on a non-atomic filesystem, or from an
    /// incompatible version).
    Format(serde_json::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(e) => write!(f, "checkpoint format error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Format(e)
    }
}

/// Where and how often to checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file location. If the file exists when a checkpointed
    /// run starts, the run resumes from it.
    pub path: PathBuf,
    /// Save every this many completed cycles (clamped to ≥ 1); a final
    /// save always happens at completion.
    pub every: usize,
}

impl CheckpointConfig {
    /// A config saving to `path` every `every` cycles.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointConfig {
            path: path.into(),
            every,
        }
    }
}

/// The durable state of an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreCheckpoint<E> {
    /// Exploration cycles completed across all runs so far.
    pub cycles_done: usize,
    /// The seed of the run (restored runs must pass the same seed).
    pub seed: u64,
    /// Parameter generation matching [`ExploreCheckpoint::params`].
    pub param_generation: u64,
    /// Snapshot of the (parent) network parameters.
    pub params: Vec<rlnoc_nn::Tensor>,
    /// Best successful design found so far, across all runs.
    pub best: Option<DesignResult<E>>,
}

// Manual serde impls: the vendored derive does not handle generic types.
impl<E: Serialize> Serialize for ExploreCheckpoint<E> {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            (String::from("cycles_done"), self.cycles_done.serialize()),
            (String::from("seed"), self.seed.serialize()),
            (
                String::from("param_generation"),
                self.param_generation.serialize(),
            ),
            (String::from("params"), self.params.serialize()),
            (String::from("best"), self.best.serialize()),
        ])
    }
}

impl<E: Deserialize> Deserialize for ExploreCheckpoint<E> {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        let field = |name: &str| {
            value.get(name).ok_or_else(|| {
                SerdeError::custom(format!("missing field `{name}` in ExploreCheckpoint"))
            })
        };
        Ok(ExploreCheckpoint {
            cycles_done: usize::deserialize(field("cycles_done")?)?,
            seed: u64::deserialize(field("seed")?)?,
            param_generation: u64::deserialize(field("param_generation")?)?,
            params: Vec::deserialize(field("params")?)?,
            best: Option::deserialize(field("best")?)?,
        })
    }
}

impl<E: Serialize + Deserialize> ExploreCheckpoint<E> {
    /// Writes the checkpoint atomically: serialized to `<path>.tmp`, then
    /// renamed over `path`, so a crash mid-write never corrupts an
    /// existing checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(self)?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a checkpoint back.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routerless::RouterlessEnv;
    use rlnoc_topology::Grid;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rlnoc_ckpt_{}_{name}.json", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let cp = ExploreCheckpoint {
            cycles_done: 7,
            seed: 42,
            param_generation: 7,
            params: vec![rlnoc_nn::Tensor::zeros(&[2, 3])],
            best: Some(DesignResult {
                env,
                final_return: -1.25,
                cycle: 3,
                steps: 5,
                successful: true,
            }),
        };
        let path = scratch("roundtrip");
        cp.save(&path).unwrap();
        let back = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap();
        assert_eq!(back.cycles_done, 7);
        assert_eq!(back.seed, 42);
        assert_eq!(back.param_generation, 7);
        assert_eq!(back.params, cp.params);
        let best = back.best.unwrap();
        assert_eq!(best.final_return, -1.25);
        assert_eq!(best.cycle, 3);
        assert!(best.successful);
        // The temp file is gone after the atomic rename.
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = ExploreCheckpoint::<RouterlessEnv>::load(&scratch("missing")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn load_garbage_is_format_error() {
        let path = scratch("garbage");
        std::fs::write(&path, b"not json {").unwrap();
        let err = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
        std::fs::remove_file(&path).unwrap();
    }
}
