//! The environment abstraction the DRL framework explores.

use rlnoc_nn::Tensor;
use std::fmt::Debug;
use std::hash::Hash;

/// A design-space environment: a mutable design state that actions modify,
/// with the reward structure of the paper's §4.3.
///
/// Environments are `Clone` because the tree search replays and forks
/// design trajectories; cloning must produce an independent copy of the
/// current design state.
///
/// The action type is the environment's atomic design modification (for
/// routerless NoCs: add one rectangular loop). Actions may be *proposed*
/// that are invalid or illegal — [`Environment::apply`] must accept them,
/// leave the design unchanged, and return the appropriate penalty, exactly
/// as the paper's reward taxonomy prescribes (valid 0, repetitive/invalid
/// −1, constraint-violating −5·N).
pub trait Environment: Clone + Debug {
    /// The action representation.
    type Action: Copy + Eq + Hash + Debug;

    /// Resets to the blank design (e.g. a fully disconnected NoC).
    fn reset(&mut self);

    /// A hash of the current design state, used as the MCTS node key.
    /// States that compare equal must hash equal.
    fn state_key(&self) -> u64;

    /// The DNN input encoding of the current state, shaped
    /// `[1, 1, side, side]`.
    fn state_tensor(&self) -> Tensor;

    /// Side length of the square state tensor.
    fn state_side(&self) -> usize;

    /// Applies `action`, returning its immediate reward. Invalid or illegal
    /// actions leave the state unchanged and return a negative reward.
    fn apply(&mut self, action: Self::Action) -> f64;

    /// Whether any action with non-negative reward remains. When no legal
    /// action exists the episode ends (paper §4.1: loops are added "until
    /// no more loops can be added without violating constraints").
    fn is_terminal(&self) -> bool;

    /// The terminal bonus added to the final step's reward — for routerless
    /// NoCs, mesh average hop count minus achieved average hop count
    /// (§4.3), so better-than-useless designs earn less-negative returns.
    fn final_return(&self) -> f64;

    /// Enumerates legal actions from the current state (used by greedy
    /// search and, in small environments, exhaustive expansion). The list
    /// may be empty exactly when [`Environment::is_terminal`] is true.
    fn legal_actions(&self) -> Vec<Self::Action>;

    /// The cardinality of each categorical policy head. Actions are encoded
    /// for the DNN as four categorical indices in
    /// `0..head_cardinality()` plus one binary flag (the paper's
    /// `(x1, y1, x2, y2, dir)`).
    fn head_cardinality(&self) -> usize;

    /// Encodes an action into its four head indices and binary flag.
    fn encode_action(&self, action: Self::Action) -> ([usize; 4], bool);

    /// Decodes head indices and the binary flag back into an action.
    fn decode_action(&self, coords: [usize; 4], flag: bool) -> Self::Action;

    /// Whether the current design meets the environment's success criterion
    /// (full connectivity for routerless NoCs). Used to count "valid
    /// designs" as in the paper's Table 1.
    fn is_successful(&self) -> bool {
        true
    }

    /// A domain-specific deterministic fallback action (the ε branch of the
    /// paper's search). The default takes the first legal action;
    /// environments with a meaningful heuristic (Algorithm 1 for routerless
    /// NoCs) override it.
    fn greedy_action(&self) -> Option<Self::Action> {
        self.legal_actions().into_iter().next()
    }

    /// The action used by the Figure 4 completion phase ("additional
    /// actions … to complete the design"). Defaults to
    /// [`Environment::greedy_action`]; environments where completion has a
    /// different objective than exploration (connectivity-first for
    /// routerless NoCs) override it.
    fn completion_action(&self) -> Option<Self::Action> {
        self.greedy_action()
    }
}
