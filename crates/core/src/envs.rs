//! Additional environments demonstrating the framework's broad
//! applicability (paper §6.8).
//!
//! The paper argues the same DNN+MCTS framework generalizes to other
//! NoC-related design problems by swapping the state/action encoding. This
//! module provides one concrete second environment: express-link insertion
//! on a mesh (a small-world / interposer-style wiring problem), reusing the
//! hop-count-matrix state encoding and the `(x1, y1, x2, y2, flag)` action
//! encoding unchanged.

use crate::env::Environment;
use rlnoc_nn::Tensor;
use rlnoc_topology::{Grid, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// An express-link action: wire node `(x1, y1)` to `(x2, y2)`. When
/// `bidirectional` is set the link carries traffic both ways; otherwise
/// only forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkAction {
    /// Source column.
    pub x1: usize,
    /// Source row.
    pub y1: usize,
    /// Destination column.
    pub x2: usize,
    /// Destination row.
    pub y2: usize,
    /// Whether the link is usable in both directions.
    pub bidirectional: bool,
}

/// A mesh NoC augmented with long-range express links under a per-node
/// link-budget constraint — the §6.8 generalization example.
///
/// State: the same `N²×N²` hop-count matrix encoding as the routerless
/// environment, with hops computed by BFS over mesh + express links.
/// Rewards follow the paper's taxonomy: 0 for a valid link, −1 for
/// self-links/duplicates, −5·N for links that exceed the per-node budget.
///
/// # Example
///
/// ```
/// use rlnoc_core::envs::{ExpressLinkEnv, LinkAction};
/// use rlnoc_core::Environment;
/// use rlnoc_topology::Grid;
///
/// let mut env = ExpressLinkEnv::new(Grid::square(4).unwrap(), 2);
/// let base = env.average_hops();
/// env.apply(LinkAction { x1: 0, y1: 0, x2: 3, y2: 3, bidirectional: true });
/// assert!(env.average_hops() < base);
/// ```
#[derive(Debug, Clone)]
pub struct ExpressLinkEnv {
    grid: Grid,
    /// Maximum express links incident to any node.
    budget: u32,
    /// Express links added so far.
    links: Vec<LinkAction>,
    /// Express-link count per node.
    degree: Vec<u32>,
    mesh_avg: f64,
}

impl ExpressLinkEnv {
    /// Creates a mesh of `grid`'s dimensions with an express-link budget of
    /// `budget` links per node.
    pub fn new(grid: Grid, budget: u32) -> Self {
        ExpressLinkEnv {
            grid,
            budget,
            links: Vec::new(),
            degree: vec![0; grid.len()],
            mesh_avg: rlnoc_topology::mesh::average_hops(&grid),
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The express links placed so far.
    pub fn links(&self) -> &[LinkAction] {
        &self.links
    }

    /// Average hop count over all ordered pairs of distinct nodes.
    pub fn average_hops(&self) -> f64 {
        let n = self.grid.len();
        let mut total = 0u64;
        for s in 0..n {
            let d = self.bfs_from(s);
            total += d.iter().map(|&x| u64::from(x)).sum::<u64>();
        }
        total as f64 / (n * (n - 1)) as f64
    }

    /// BFS hop counts from `src` over mesh plus express links.
    fn bfs_from(&self, src: NodeId) -> Vec<u32> {
        let n = self.grid.len();
        let (w, h) = (self.grid.width(), self.grid.height());
        let mut dist = vec![u32::MAX; n];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let (x, y) = self.grid.coord_of(u);
            let push = |v: NodeId, dist: &mut Vec<u32>, q: &mut VecDeque<NodeId>| {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            };
            if x > 0 {
                push(u - 1, &mut dist, &mut q);
            }
            if x + 1 < w {
                push(u + 1, &mut dist, &mut q);
            }
            if y > 0 {
                push(u - w, &mut dist, &mut q);
            }
            if y + 1 < h {
                push(u + w, &mut dist, &mut q);
            }
            for l in &self.links {
                let a = self.grid.node_at(l.x1, l.y1);
                let b = self.grid.node_at(l.x2, l.y2);
                if a == u {
                    push(b, &mut dist, &mut q);
                } else if b == u && l.bidirectional {
                    push(a, &mut dist, &mut q);
                }
            }
        }
        dist
    }

    fn endpoints(&self, a: LinkAction) -> Option<(NodeId, NodeId)> {
        let src = self.grid.try_node_at(a.x1, a.y1)?;
        let dst = self.grid.try_node_at(a.x2, a.y2)?;
        Some((src, dst))
    }
}

impl Environment for ExpressLinkEnv {
    type Action = LinkAction;

    fn reset(&mut self) {
        self.links.clear();
        self.degree = vec![0; self.grid.len()];
    }

    fn state_key(&self) -> u64 {
        let mut sorted: Vec<_> = self
            .links
            .iter()
            .map(|l| (l.x1, l.y1, l.x2, l.y2, l.bidirectional))
            .collect();
        sorted.sort_unstable();
        let mut hsh = DefaultHasher::new();
        self.grid.hash(&mut hsh);
        sorted.hash(&mut hsh);
        hsh.finish()
    }

    fn state_tensor(&self) -> Tensor {
        let n = self.grid.len();
        let (w, hh) = (self.grid.width(), self.grid.height());
        let scale = 1.0 / self.grid.unconnected_hops() as f32;
        let mut out = vec![0f32; n * n];
        for src in 0..n {
            let dist = self.bfs_from(src);
            let (bx, by) = (src % w, src / w);
            for (dst, &d) in dist.iter().enumerate() {
                let (cx, cy) = (dst % w, dst / w);
                let row = by * hh + cy;
                let col = bx * w + cx;
                out[row * n + col] = d as f32 * scale;
            }
        }
        Tensor::from_vec(out, &[1, 1, n, n]).expect("N²·N² elements")
    }

    fn state_side(&self) -> usize {
        self.grid.len()
    }

    fn apply(&mut self, action: LinkAction) -> f64 {
        let Some((src, dst)) = self.endpoints(action) else {
            return -1.0; // outside the grid
        };
        if src == dst {
            return -1.0; // invalid: self link
        }
        if self.links.contains(&action) {
            return -1.0; // repetitive
        }
        if self.degree[src] + 1 > self.budget || self.degree[dst] + 1 > self.budget {
            return -(self.grid.unconnected_hops() as f64); // illegal
        }
        self.degree[src] += 1;
        self.degree[dst] += 1;
        self.links.push(action);
        0.0
    }

    fn is_terminal(&self) -> bool {
        self.legal_actions().is_empty()
    }

    fn final_return(&self) -> f64 {
        self.mesh_avg - self.average_hops()
    }

    fn legal_actions(&self) -> Vec<LinkAction> {
        let mut out = Vec::new();
        let n = self.grid.len();
        for s in 0..n {
            if self.degree[s] >= self.budget {
                continue;
            }
            for d in 0..n {
                if s == d || self.degree[d] >= self.budget {
                    continue;
                }
                let (x1, y1) = self.grid.coord_of(s);
                let (x2, y2) = self.grid.coord_of(d);
                for bidi in [false, true] {
                    let a = LinkAction {
                        x1,
                        y1,
                        x2,
                        y2,
                        bidirectional: bidi,
                    };
                    if !self.links.contains(&a) {
                        out.push(a);
                    }
                }
            }
        }
        out
    }

    fn head_cardinality(&self) -> usize {
        self.grid.width().max(self.grid.height())
    }

    fn encode_action(&self, a: LinkAction) -> ([usize; 4], bool) {
        ([a.x1, a.y1, a.x2, a.y2], a.bidirectional)
    }

    fn decode_action(&self, coords: [usize; 4], flag: bool) -> LinkAction {
        LinkAction {
            x1: coords[0],
            y1: coords[1],
            x2: coords[2],
            y2: coords[3],
            bidirectional: flag,
        }
    }

    fn is_successful(&self) -> bool {
        !self.links.is_empty() && self.average_hops() < self.mesh_avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> ExpressLinkEnv {
        ExpressLinkEnv::new(Grid::square(4).unwrap(), 1)
    }

    #[test]
    fn express_link_reduces_hops() {
        let mut e = env();
        let base = e.average_hops();
        assert!((base - rlnoc_topology::mesh::average_hops(e.grid())).abs() < 1e-9);
        let r = e.apply(LinkAction {
            x1: 0,
            y1: 0,
            x2: 3,
            y2: 3,
            bidirectional: true,
        });
        assert_eq!(r, 0.0);
        assert!(e.average_hops() < base);
        assert!(e.final_return() > 0.0);
        assert!(e.is_successful());
    }

    #[test]
    fn reward_taxonomy_matches_paper() {
        let mut e = env();
        // Self link: invalid.
        assert_eq!(
            e.apply(LinkAction {
                x1: 1,
                y1: 1,
                x2: 1,
                y2: 1,
                bidirectional: true
            }),
            -1.0
        );
        // Valid, then duplicate.
        let a = LinkAction {
            x1: 0,
            y1: 0,
            x2: 2,
            y2: 2,
            bidirectional: false,
        };
        assert_eq!(e.apply(a), 0.0);
        assert_eq!(e.apply(a), -1.0);
        // Budget exceeded (budget 1, node (0,0) already used): illegal −5·N.
        let b = LinkAction {
            x1: 0,
            y1: 0,
            x2: 3,
            y2: 0,
            bidirectional: false,
        };
        assert_eq!(e.apply(b), -20.0);
    }

    #[test]
    fn unidirectional_links_are_one_way() {
        let mut e = ExpressLinkEnv::new(Grid::square(4).unwrap(), 4);
        e.apply(LinkAction {
            x1: 0,
            y1: 0,
            x2: 3,
            y2: 3,
            bidirectional: false,
        });
        let fwd = e.bfs_from(e.grid.node_at(0, 0))[e.grid.node_at(3, 3)];
        let rev = e.bfs_from(e.grid.node_at(3, 3))[e.grid.node_at(0, 0)];
        assert_eq!(fwd, 1);
        assert_eq!(rev, 6, "reverse must fall back to the mesh");
    }

    #[test]
    fn framework_runs_on_express_env() {
        use crate::explorer::{Explorer, ExplorerConfig};
        let mut cfg = ExplorerConfig::fast();
        cfg.cycles = 2;
        cfg.max_steps = 6;
        let env = ExpressLinkEnv::new(Grid::square(3).unwrap(), 1);
        let report = Explorer::new(env, cfg, 3).run();
        assert_eq!(report.cycles_run, 2);
        // Any design with a useful link counts as successful.
        assert!(report.designs.iter().any(|d| d.steps > 0));
    }

    #[test]
    fn state_key_insensitive_to_insertion_order() {
        let a = LinkAction {
            x1: 0,
            y1: 0,
            x2: 1,
            y2: 1,
            bidirectional: true,
        };
        let b = LinkAction {
            x1: 2,
            y1: 2,
            x2: 3,
            y2: 3,
            bidirectional: true,
        };
        let mut e1 = ExpressLinkEnv::new(Grid::square(4).unwrap(), 2);
        e1.apply(a);
        e1.apply(b);
        let mut e2 = ExpressLinkEnv::new(Grid::square(4).unwrap(), 2);
        e2.apply(b);
        e2.apply(a);
        assert_eq!(e1.state_key(), e2.state_key());
    }
}
