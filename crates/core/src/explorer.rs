//! The exploration loop of the paper's Figure 4: DNN-guided, MCTS-refined
//! design cycles with actor-critic learning after each cycle.

use crate::cache::{CacheStats, EvalCache, EvalCacheHandle};
use crate::checkpoint::{CheckpointConfig, CheckpointError, ExploreCheckpoint};
use crate::env::Environment;
use crate::mcts::{Mcts, MctsConfig};
use crate::policy::{Episode, Evaluation, PolicyAgent, Step, TrainConfig, TrainStats};
use crate::resilience::ResilienceConfig;
use rand::prelude::*;
use rand::rngs::StdRng;
use rlnoc_nn::PolicyValueConfig;
use rlnoc_telemetry::{Recorder, TelemetrySink};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Tunables for the exploration loop.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Number of exploration cycles (episodes) to run.
    pub cycles: usize,
    /// The ε of the ε-greedy override: with this probability a step is
    /// taken by the environment's deterministic greedy heuristic
    /// (Algorithm 1) instead of Equation 21. Table 1 sweeps this knob.
    pub epsilon: f64,
    /// Tree-search constants.
    pub mcts: MctsConfig,
    /// Actor-critic training constants.
    pub train: TrainConfig,
    /// Length of the DNN/MCTS exploration prefix: the paper's cycle takes
    /// an initial DNN action then "several actions … by following MCTS"
    /// before handing over to the completion phase, so this should be a
    /// modest fraction of the design's total loop budget. Also guards
    /// against degenerate policies that only propose penalized actions.
    pub max_steps: usize,
    /// After this many consecutive penalized actions the explorer forces a
    /// greedy action to restore progress.
    pub invalid_streak_limit: usize,
    /// Maximum number of edges added per node expansion (the legal actions
    /// with the highest priors).
    pub expansion_candidates: usize,
    /// After the DNN/MCTS phase, finish incomplete designs with greedy
    /// actions — the paper's "additional actions can be taken, if
    /// necessary, to complete the design" (Figure 4). The completion steps
    /// are recorded and trained on like any others.
    pub complete_designs: bool,
    /// Network architecture; `None` selects
    /// [`PolicyValueConfig::small`] sized for the environment.
    pub net: Option<PolicyValueConfig>,
    /// Capacity of the evaluation cache keyed on `(state_key, parameter
    /// generation)`; 0 disables caching. MCTS revisits make this a large
    /// win — see [`crate::cache`].
    pub eval_cache_capacity: usize,
    /// Telemetry sink for run instrumentation (losses, search-depth and
    /// visit distributions, cache activity, kernel timings). The default
    /// disabled sink compiles the probes down to a branch — exploration
    /// results are bit-identical either way.
    pub telemetry: TelemetrySink,
    /// Training-run resilience policy (anomaly detection/rollback and
    /// stalled-worker supervision), honored by the supervised parallel
    /// drivers. Detection is read-only, so zero-anomaly runs are
    /// bit-identical with the layer on or off.
    pub resilience: ResilienceConfig,
}

impl ExplorerConfig {
    /// A laptop-friendly configuration: small network, short episodes.
    pub fn fast() -> Self {
        ExplorerConfig {
            cycles: 10,
            epsilon: 0.1,
            mcts: MctsConfig::default(),
            train: TrainConfig::default(),
            max_steps: 8,
            invalid_streak_limit: 8,
            expansion_candidates: 64,
            complete_designs: true,
            net: None,
            eval_cache_capacity: 4096,
            telemetry: TelemetrySink::disabled(),
            resilience: ResilienceConfig::default(),
        }
    }
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig::fast()
    }
}

/// The final state of one exploration cycle.
#[derive(Debug, Clone)]
pub struct DesignResult<E> {
    /// The environment at episode end (for routerless NoCs, carries the
    /// completed [`rlnoc_topology::Topology`]).
    pub env: E,
    /// The terminal return (mesh hop count − achieved hop count).
    pub final_return: f64,
    /// Index of the cycle that produced this design.
    pub cycle: usize,
    /// Number of actions taken.
    pub steps: usize,
    /// Whether the design meets the environment's success criterion (full
    /// connectivity for routerless NoCs).
    pub successful: bool,
}

// Manual serde impls: the vendored derive does not handle generic types.
impl<E: Serialize> Serialize for DesignResult<E> {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            (String::from("env"), self.env.serialize()),
            (String::from("final_return"), self.final_return.serialize()),
            (String::from("cycle"), self.cycle.serialize()),
            (String::from("steps"), self.steps.serialize()),
            (String::from("successful"), self.successful.serialize()),
        ])
    }
}

impl<E: Deserialize> Deserialize for DesignResult<E> {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        let field = |name: &str| {
            value.get(name).ok_or_else(|| {
                SerdeError::custom(format!("missing field `{name}` in DesignResult"))
            })
        };
        Ok(DesignResult {
            env: E::deserialize(field("env")?)?,
            final_return: f64::deserialize(field("final_return")?)?,
            cycle: usize::deserialize(field("cycle")?)?,
            steps: usize::deserialize(field("steps")?)?,
            successful: bool::deserialize(field("successful")?)?,
        })
    }
}

/// Outcome of a whole exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport<E> {
    /// One result per cycle, in order.
    pub designs: Vec<DesignResult<E>>,
    /// Per-cycle training statistics.
    pub train_history: Vec<TrainStats>,
    /// Number of cycles completed.
    pub cycles_run: usize,
    /// Evaluation-cache hit/miss counters over the run (all zero when the
    /// cache is disabled).
    pub cache_stats: CacheStats,
}

impl<E> ExploreReport<E> {
    /// The best *successful* design by final return, if any.
    pub fn best(&self) -> Option<&DesignResult<E>> {
        self.designs
            .iter()
            .filter(|d| d.successful)
            .max_by(|a, b| a.final_return.total_cmp(&b.final_return))
    }

    /// Number of successful (e.g. fully connected) designs found.
    pub fn successful_count(&self) -> usize {
        self.designs.iter().filter(|d| d.successful).count()
    }
}

/// Mediates tree access so the same episode runner serves both the local
/// single-threaded tree and the shared tree of the multi-threaded framework.
pub trait TreeHandle<A> {
    /// Whether the state has outgoing edges.
    fn is_expanded(&mut self, state: u64) -> bool;
    /// Adds prior-weighted edges to a state.
    fn expand(&mut self, state: u64, priors: &[(A, f32)]);
    /// Equation 21 selection.
    fn select(&mut self, state: u64) -> Option<A>;
    /// Propagates returns along a trajectory.
    fn backup(&mut self, path: &[(u64, A)], returns: &[f64]);
}

impl<A: Copy + Eq + std::hash::Hash + std::fmt::Debug> TreeHandle<A> for Mcts<A> {
    fn is_expanded(&mut self, state: u64) -> bool {
        Mcts::is_expanded(self, state)
    }
    fn expand(&mut self, state: u64, priors: &[(A, f32)]) {
        Mcts::expand(self, state, priors);
    }
    fn select(&mut self, state: u64) -> Option<A> {
        Mcts::select(self, state)
    }
    fn backup(&mut self, path: &[(u64, A)], returns: &[f64]) {
        Mcts::backup(self, path, returns);
    }
}

/// Evaluates `state` through the cache: a hit returns the stored
/// [`Evaluation`] (bit-identical to a fresh forward, since entries are
/// keyed on the parameter generation); a miss runs the network and stores
/// the result.
fn cached_evaluate<C: EvalCacheHandle>(
    agent: &mut PolicyAgent,
    cache: &mut C,
    key: u64,
    state: &rlnoc_nn::Tensor,
) -> Evaluation {
    let generation = agent.param_generation();
    if let Some(eval) = cache.lookup(key, generation) {
        return eval;
    }
    let eval = agent.evaluate(state);
    cache.store(key, generation, &eval);
    eval
}

/// Re-evaluates the states an episode visited in one batched forward and
/// stores the results under the agent's current parameter generation.
///
/// Called after an optimizer step, this warms the cache for the *new*
/// parameters: the next cycle starts from the same reset state and revisits
/// much of the same tree, so its expansion and root-sampling evaluations
/// hit instead of running single-state forwards. Batched evaluation is
/// bit-identical to per-sample evaluation (eval-mode BatchNorm uses running
/// statistics), so warmed entries never change search results.
///
/// At most `limit` states are evaluated (the DNN/MCTS prefix; greedy
/// completion tails can be long and are rarely revisited).
pub(crate) fn warm_cache<A>(
    agent: &mut PolicyAgent,
    cache: &mut impl EvalCacheHandle,
    episode: &Episode<A>,
    path: &[(u64, A)],
    limit: usize,
) {
    let warm = episode.steps.len().min(path.len()).min(limit);
    if warm == 0 {
        return;
    }
    let states: Vec<rlnoc_nn::Tensor> = episode.steps[..warm]
        .iter()
        .map(|s| s.state.clone())
        .collect();
    let evals = agent.evaluate_batch(&states);
    let generation = agent.param_generation();
    for ((key, _), eval) in path[..warm].iter().zip(&evals) {
        cache.store(*key, generation, eval);
    }
}

/// A recorded episode plus its `(state_key, action)` search path, as
/// returned by [`run_episode`]; the path is what [`Mcts::backup`] consumes.
pub type EpisodeTrace<A> = (Episode<A>, Vec<(u64, A)>);

/// Runs one exploration cycle (Figure 4's inner loop): DNN initial action,
/// then MCTS/ε-greedy actions until the design is complete, recording the
/// trajectory. Returns the episode and the `(state, action)` path for
/// backup.
///
/// Network evaluations go through `cache` (pass [`crate::NoCache`] to
/// disable); within one episode the expansion and the initial-action
/// sampling reuse the same evaluation, and across episodes MCTS revisits
/// hit the cache until an optimizer step bumps the parameter generation.
pub fn run_episode<E: Environment>(
    env: &mut E,
    agent: &mut PolicyAgent,
    tree: &mut impl TreeHandle<E::Action>,
    cache: &mut impl EvalCacheHandle,
    config: &ExplorerConfig,
    rng: &mut StdRng,
) -> EpisodeTrace<E::Action> {
    env.reset();
    let mut steps: Vec<Step<E::Action>> = Vec::new();
    let mut path: Vec<(u64, E::Action)> = Vec::new();
    let mut invalid_streak = 0usize;

    for t in 0..config.max_steps {
        if env.is_terminal() {
            break;
        }
        let key = env.state_key();
        let state = env.state_tensor();

        if !tree.is_expanded(key) {
            let eval = cached_evaluate(agent, cache, key, &state);
            let mut priors: Vec<(E::Action, f32)> = env
                .legal_actions()
                .into_iter()
                .map(|a| {
                    let (coords, flag) = env.encode_action(a);
                    (a, eval.action_prior(coords, flag))
                })
                .collect();
            priors.sort_by(|a, b| b.1.total_cmp(&a.1));
            priors.truncate(config.expansion_candidates);
            tree.expand(key, &priors);
        }

        let action = if invalid_streak >= config.invalid_streak_limit {
            // Restore progress deterministically.
            match env.greedy_action() {
                Some(a) => a,
                None => break,
            }
        } else if t == 0 {
            // The DNN picks the initial action, directing search to a
            // region of the design space (Figure 4, "DNN" box).
            let eval = cached_evaluate(agent, cache, key, &state);
            PolicyAgent::sample_from_eval(&eval, env, rng)
        } else if rng.gen_bool(config.epsilon) {
            match env.greedy_action() {
                Some(a) => a,
                None => break,
            }
        } else {
            match tree.select(key) {
                Some(a) => a,
                None => {
                    let eval = cached_evaluate(agent, cache, key, &state);
                    PolicyAgent::sample_from_eval(&eval, env, rng)
                }
            }
        };

        let reward = env.apply(action);
        invalid_streak = if reward < 0.0 { invalid_streak + 1 } else { 0 };
        steps.push(Step {
            state,
            action,
            reward,
        });
        path.push((key, action));
    }

    // Completion phase (Figure 4): "additional actions can be taken, if
    // necessary, to complete the design". Greedy actions drive the design
    // to full connectivity (or wiring exhaustion) within a bounded number
    // of extra steps, all recorded for learning.
    if config.complete_designs {
        // Safety bound only: greedy completion ends naturally when the
        // design succeeds or the wiring budget is exhausted.
        let completion_cap = 1024;
        let mut extra = 0;
        while !env.is_successful() && extra < completion_cap {
            let Some(action) = env.completion_action() else {
                break;
            };
            let key = env.state_key();
            let state = env.state_tensor();
            let reward = env.apply(action);
            steps.push(Step {
                state,
                action,
                reward,
            });
            path.push((key, action));
            extra += 1;
        }
    }

    let episode = Episode {
        steps,
        final_return: env.final_return(),
    };
    (episode, path)
}

/// The single-threaded exploration driver: repeats exploration cycles,
/// updating the tree and training the DNN after each (Figure 4).
#[derive(Debug)]
pub struct Explorer<E: Environment> {
    env: E,
    agent: PolicyAgent,
    mcts: Mcts<E::Action>,
    cache: EvalCache,
    config: ExplorerConfig,
    rng: StdRng,
    seed: u64,
    recorder: Recorder,
    last_cache: CacheStats,
}

impl<E: Environment> Explorer<E> {
    /// Creates an explorer over `env` with deterministic seeding.
    pub fn new(env: E, config: ExplorerConfig, seed: u64) -> Self {
        let agent = match &config.net {
            Some(net_cfg) => PolicyAgent::new(net_cfg.clone(), config.train.clone(), seed),
            None => PolicyAgent::for_env(&env, config.train.clone(), seed),
        };
        let mcts = Mcts::new(config.mcts);
        let cache = EvalCache::new(config.eval_cache_capacity);
        let recorder = config.telemetry.recorder("explorer");
        Explorer {
            env,
            agent,
            mcts,
            cache,
            config,
            rng: StdRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)),
            seed,
            recorder,
            last_cache: CacheStats::default(),
        }
    }

    /// The search tree accumulated so far.
    pub fn tree(&self) -> &Mcts<E::Action> {
        &self.mcts
    }

    /// Evaluation-cache hit/miss counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The learning agent.
    pub fn agent_mut(&mut self) -> &mut PolicyAgent {
        &mut self.agent
    }

    /// Runs the configured number of exploration cycles.
    pub fn run(&mut self) -> ExploreReport<E> {
        let cycles = self.config.cycles;
        self.run_cycles(cycles)
    }

    /// Runs `cycles` exploration cycles (callable repeatedly; the tree and
    /// network persist across calls).
    pub fn run_cycles(&mut self, cycles: usize) -> ExploreReport<E> {
        let traced = self.recorder.is_enabled();
        let prev_nn = if traced {
            rlnoc_nn::instrument::install(self.config.telemetry.recorder("nn:explorer"))
        } else {
            None
        };
        let mut designs = Vec::with_capacity(cycles);
        let mut train_history = Vec::with_capacity(cycles);
        for cycle in 0..cycles {
            let timer = self.recorder.timer();
            let (episode, path) = run_episode(
                &mut self.env,
                &mut self.agent,
                &mut self.mcts,
                &mut self.cache,
                &self.config,
                &mut self.rng,
            );
            let returns = episode.returns(self.config.train.gamma);
            self.mcts.backup(&path, &returns);
            let stats = self.agent.train_episode(&self.env, &episode);
            if self.cache.is_enabled() {
                warm_cache(
                    &mut self.agent,
                    &mut self.cache,
                    &episode,
                    &path,
                    self.config.max_steps,
                );
            }
            let successful = self.env.is_successful();
            if traced {
                self.record_cycle(&stats, successful, episode.steps.len(), path.len());
                self.recorder.observe_timer("explore.cycle_us", timer);
            }
            train_history.push(stats);
            designs.push(DesignResult {
                successful,
                env: self.env.clone(),
                final_return: episode.final_return,
                cycle,
                steps: episode.steps.len(),
            });
        }
        if traced {
            self.record_run_end();
            drop(rlnoc_nn::instrument::take());
            if let Some(p) = prev_nn {
                rlnoc_nn::instrument::install(p);
            }
        }
        ExploreReport {
            designs,
            train_history,
            cycles_run: cycles,
            cache_stats: self.cache.stats(),
        }
    }

    /// Publishes one exploration cycle's telemetry (live recorders only).
    fn record_cycle(&mut self, stats: &TrainStats, successful: bool, steps: usize, depth: usize) {
        let rec = &mut self.recorder;
        rec.incr("explore.cycles", 1);
        if successful {
            rec.incr("explore.designs_successful", 1);
        }
        rec.record("explore.steps", steps as u64);
        rec.record("mcts.path_depth", depth as u64);
        rec.gauge("train.policy_loss", f64::from(stats.policy_loss));
        rec.gauge("train.value_loss", f64::from(stats.value_loss));
        rec.gauge("train.grad_norm", f64::from(stats.grad_norm));
        rec.gauge("train.entropy", f64::from(stats.entropy));
        let cache = self.cache.stats();
        rec.incr("cache.hits", cache.hits - self.last_cache.hits);
        rec.incr("cache.misses", cache.misses - self.last_cache.misses);
        self.last_cache = cache;
    }

    /// Publishes end-of-run telemetry: tree size, the edge-visit
    /// distribution, and the parameter generation reached.
    fn record_run_end(&mut self) {
        let rec = &mut self.recorder;
        rec.gauge("mcts.nodes", self.mcts.len() as f64);
        for v in self.mcts.edge_visit_counts() {
            rec.record("mcts.edge_visits", u64::from(v));
        }
        rec.gauge(
            "train.param_generation",
            self.agent.param_generation() as f64,
        );
        rec.flush();
    }

    /// Re-derives the exploration RNG stream for the batch beginning at
    /// global cycle `cycles_done`, so [`Explorer::run_checkpointed`] is
    /// deterministic whether or not a run was interrupted between batches.
    fn reseed_at(&mut self, cycles_done: usize) {
        self.rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((cycles_done as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)),
        );
    }
}

/// The outcome of [`Explorer::run_checkpointed`].
#[derive(Debug, Clone)]
pub struct CheckpointedRun<E> {
    /// Report over the cycles run by *this* call (a resumed run only
    /// reports the cycles it actually executed).
    pub report: ExploreReport<E>,
    /// Cycles that were already complete in the loaded checkpoint
    /// (0 for a fresh run).
    pub resumed_from: usize,
    /// Best successful design across all runs, restored ones included.
    pub best: Option<DesignResult<E>>,
}

impl<E> Explorer<E>
where
    E: Environment + Serialize + Deserialize,
{
    /// Runs up to `total_cycles` cycles with periodic checkpointing: if
    /// [`CheckpointConfig::path`] exists the run resumes from it (network
    /// parameters and best design restored, only the remaining cycles
    /// executed), falling back to the rotated `.prev` generation if the
    /// primary is torn; every [`CheckpointConfig::every`] cycles, and at
    /// completion, the state is saved atomically and durably.
    ///
    /// The RNG stream is re-derived at each batch boundary from the seed
    /// and the global cycle index, so resuming from a given checkpoint is
    /// fully deterministic: two resumptions of the same file take identical
    /// cycles. A resumed run is a *continuation*, not a bit-identical
    /// replay of the uninterrupted one — the search tree, evaluation cache,
    /// and optimizer moments are derived state that is rebuilt rather than
    /// checkpointed (see [`crate::checkpoint`]).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the checkpoint cannot be read or
    /// written; exploration state already in memory is unaffected.
    pub fn run_checkpointed(
        &mut self,
        total_cycles: usize,
        ckpt: &CheckpointConfig,
    ) -> Result<CheckpointedRun<E>, CheckpointError> {
        let mut done = 0usize;
        let mut best: Option<DesignResult<E>> = None;
        if let Some((cp, _source)) = ExploreCheckpoint::<E>::try_resume(&ckpt.path)? {
            self.agent.net_mut().load_params(&cp.params);
            self.agent.set_param_generation(cp.param_generation);
            if let Some(learner) = &cp.learner {
                learner.restore_into(&mut self.agent);
            }
            done = cp.cycles_done;
            best = cp.best;
        }
        let resumed_from = done;
        let every = ckpt.every.max(1);
        let mut designs = Vec::new();
        let mut train_history = Vec::new();
        while done < total_cycles {
            let batch = every.min(total_cycles - done);
            self.reseed_at(done);
            let mut r = self.run_cycles(batch);
            for d in &mut r.designs {
                d.cycle += done; // local batch indices → global cycle indices
                let better = d.successful
                    && best
                        .as_ref()
                        .is_none_or(|b| d.final_return > b.final_return);
                if better {
                    best = Some(d.clone());
                }
            }
            designs.append(&mut r.designs);
            train_history.append(&mut r.train_history);
            done += batch;
            ExploreCheckpoint {
                cycles_done: done,
                seed: self.seed,
                param_generation: self.agent.param_generation(),
                params: self.agent.net_mut().param_snapshot(),
                learner: Some(crate::checkpoint::LearnerState::capture(&self.agent)),
                best: best.clone(),
            }
            .save(&ckpt.path)?;
        }
        Ok(CheckpointedRun {
            report: ExploreReport {
                cycles_run: designs.len(),
                designs,
                train_history,
                cache_stats: self.cache.stats(),
            },
            resumed_from,
            best,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routerless::RouterlessEnv;
    use rlnoc_topology::Grid;

    fn quick_config(cycles: usize) -> ExplorerConfig {
        let mut c = ExplorerConfig::fast();
        c.cycles = cycles;
        c.max_steps = 40;
        c
    }

    #[test]
    fn explorer_completes_cycles() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let mut ex = Explorer::new(env, quick_config(3), 1);
        let report = ex.run();
        assert_eq!(report.cycles_run, 3);
        assert_eq!(report.designs.len(), 3);
        assert_eq!(report.train_history.len(), 3);
        assert!(!ex.tree().is_empty(), "tree should record explored states");
    }

    #[test]
    fn explorer_finds_connected_designs_on_small_grid() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 6);
        // Seed chosen to converge within the quick budget under the
        // workspace PRNG stream (most seeds do; see vendor/rand).
        let mut ex = Explorer::new(env, quick_config(5), 1);
        let report = ex.run();
        assert!(
            report.successful_count() > 0,
            "3x3 at cap 6 should connect within 5 cycles (greedy fallback guarantees progress)"
        );
        let best = report.best().expect("at least one successful design");
        assert!(best.env.is_fully_connected());
    }

    #[test]
    fn explorer_is_deterministic_per_seed() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let a = Explorer::new(env.clone(), quick_config(2), 11).run();
        let b = Explorer::new(env, quick_config(2), 11).run();
        let ra: Vec<f64> = a.designs.iter().map(|d| d.final_return).collect();
        let rb: Vec<f64> = b.designs.iter().map(|d| d.final_return).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn explorer_reports_cache_activity() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let mut ex = Explorer::new(env, quick_config(2), 1);
        let report = ex.run();
        let stats = report.cache_stats;
        // First cycle evaluates the root once for expansion and reuses it
        // for the initial DNN action — at least one guaranteed hit.
        assert!(stats.hits > 0, "expected cache hits, got {stats:?}");
        assert!(stats.misses > 0, "fresh states must miss, got {stats:?}");
        assert_eq!(ex.cache_stats(), stats);
    }

    #[test]
    fn episodes_respect_max_steps() {
        let env = RouterlessEnv::new(Grid::square(4).unwrap(), 8);
        let mut cfg = quick_config(1);
        cfg.max_steps = 5;
        cfg.complete_designs = false;
        let mut ex = Explorer::new(env, cfg, 3);
        let report = ex.run();
        assert!(report.designs[0].steps <= 5);
    }

    #[test]
    fn completion_phase_drives_validity() {
        // With the Figure 4 completion phase, even a tiny exploration
        // budget yields fully connected designs (the greedy tail finishes
        // what the DNN/MCTS started); without it, a 2-step budget cannot.
        let env = RouterlessEnv::new(Grid::square(4).unwrap(), 10);
        let mut with = quick_config(2);
        with.max_steps = 6;
        with.complete_designs = true;
        let report = Explorer::new(env.clone(), with, 9).run();
        assert!(
            report.successful_count() > 0,
            "completion should finish designs"
        );

        let mut without = quick_config(1);
        without.max_steps = 2;
        without.complete_designs = false;
        let report = Explorer::new(env, without, 9).run();
        assert_eq!(report.successful_count(), 0);
    }

    #[test]
    fn checkpointed_run_resumes_deterministically() {
        use crate::checkpoint::CheckpointConfig;
        let path =
            std::env::temp_dir().join(format!("rlnoc_explorer_ckpt_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let ckpt = CheckpointConfig::new(&path, 2);
        let key = |r: &ExploreReport<RouterlessEnv>| {
            r.designs
                .iter()
                .map(|d| (d.cycle, d.steps, d.successful, d.final_return))
                .collect::<Vec<_>>()
        };

        // "Killed" run: one process completes 2 of 4 cycles.
        let first = Explorer::new(env.clone(), quick_config(2), 11)
            .run_checkpointed(2, &ckpt)
            .unwrap();
        assert_eq!(first.resumed_from, 0);
        assert_eq!(first.report.cycles_run, 2);
        let first_best = first.best.as_ref().map(|d| d.final_return);

        // Two fresh processes resuming from the *same* checkpoint must
        // take identical cycles (resume is deterministic).
        let snapshot = std::fs::read(&path).unwrap();
        let second = Explorer::new(env.clone(), quick_config(4), 11)
            .run_checkpointed(4, &ckpt)
            .unwrap();
        std::fs::write(&path, &snapshot).unwrap();
        let replay = Explorer::new(env.clone(), quick_config(4), 11)
            .run_checkpointed(4, &ckpt)
            .unwrap();
        assert_eq!(second.resumed_from, 2);
        assert_eq!(second.report.cycles_run, 2, "only the remaining cycles run");
        assert_eq!(
            second
                .report
                .designs
                .iter()
                .map(|d| d.cycle)
                .collect::<Vec<_>>(),
            vec![2, 3],
            "resumed cycles carry global indices"
        );
        assert_eq!(key(&second.report), key(&replay.report));
        // Best-so-far survives the restart (it can only improve).
        if let Some(fb) = first_best {
            let sb = second
                .best
                .expect("restored best must persist")
                .final_return;
            assert!(sb >= fb, "best degraded across resume: {sb} < {fb}");
        }

        // A finished checkpoint leaves nothing to do.
        let third = Explorer::new(env, quick_config(4), 11)
            .run_checkpointed(4, &ckpt)
            .unwrap();
        assert_eq!(third.resumed_from, 4);
        assert_eq!(third.report.cycles_run, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn epsilon_one_is_pure_greedy() {
        // With ε = 1 every non-initial action is Algorithm 1, which always
        // proposes legal loops, so only the first (DNN-sampled) action can
        // be penalized.
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let mut cfg = quick_config(1);
        cfg.epsilon = 1.0;
        let mut ex = Explorer::new(env, cfg, 5);
        let report = ex.run();
        assert!(report.designs[0].steps > 0);
    }
}
