//! The paper's Algorithm 1: deterministic greedy loop selection.
//!
//! With probability ε the MCTS ignores the learned policy and instead runs
//! this exhaustive sweep, which scores every in-cap rectangle by
//! `CheckCount` (how many node pairs can communicate after adding it) and
//! tie-breaks by `Imprv` (total hop-count improvement, which also selects
//! the loop direction).

use crate::routerless::{LoopAction, RouterlessEnv};
use rlnoc_topology::{Direction, RectLoop};

/// Result of scoring one rectangle with both directions.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    action: LoopAction,
    count: usize,
    imprv: u64,
}

/// Runs Algorithm 1 on the environment's current state: returns the legal
/// loop addition with the highest `CheckCount`, tie-broken by the largest
/// hop-count improvement (`Imprv`), which also chooses the direction.
///
/// Returns `None` when no legal action exists (terminal state).
pub fn greedy_action(env: &RouterlessEnv) -> Option<LoopAction> {
    let grid = *env.grid();
    let topo = env.topology();
    let hops = topo.hop_matrix();
    let mut best: Option<Scored> = None;
    for x1 in 0..grid.width() {
        for x2 in x1 + 1..grid.width() {
            for y1 in 0..grid.height() {
                for y2 in y1 + 1..grid.height() {
                    let cw = RectLoop::new(x1, y1, x2, y2, Direction::Clockwise)
                        .expect("non-degenerate by construction");
                    if !env.satisfies_constraints(&cw) {
                        continue;
                    }
                    let cw_ok = !topo.contains_loop(&cw);
                    let ccw = cw.reversed();
                    let ccw_ok = !topo.contains_loop(&ccw);
                    if !cw_ok && !ccw_ok {
                        continue;
                    }
                    // CheckCount: direction-independent (connectivity of
                    // on-loop pairs holds either way round).
                    let count = hops.connected_pairs_if_added(&grid, &cw);
                    // Imprv: evaluate each legal direction's total
                    // hop-count gain; keep the better.
                    let mut cand: Option<(u64, RectLoop)> = None;
                    if cw_ok {
                        cand = Some((hops.improvement_if_added(&grid, &cw), cw));
                    }
                    if ccw_ok {
                        let g = hops.improvement_if_added(&grid, &ccw);
                        if cand.as_ref().is_none_or(|&(bg, _)| g > bg) {
                            cand = Some((g, ccw));
                        }
                    }
                    let (imprv, ring) = cand.expect("at least one direction is legal");
                    let scored = Scored {
                        action: ring.into(),
                        count,
                        imprv,
                    };
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            scored.count > b.count
                                || (scored.count == b.count && scored.imprv > b.imprv)
                        }
                    };
                    if better {
                        best = Some(scored);
                    }
                }
            }
        }
    }
    best.map(|s| s.action)
}

/// Connectivity-first action selection for the completion phase: maximize
/// newly connected pairs discounted by overlap *pressure* (budget consumed
/// on nearly saturated nodes), tie-broken by `Imprv`.
///
/// Compared with [`greedy_action`] — which ranks by total `CheckCount` and
/// will happily spend scarce wiring on hop improvements — this selector
/// protects the remaining budget until the design is fully connected,
/// which is what the Figure 4 completion phase needs after an exploratory
/// prefix has consumed part of the budget. Falls back to [`greedy_action`]
/// once (or if) no new pair can be connected.
pub fn completion_action(env: &RouterlessEnv) -> Option<LoopAction> {
    let grid = *env.grid();
    let topo = env.topology();
    let cap = f64::from(env.overlap_cap().max(1));
    let hops = topo.hop_matrix();
    let mut best: Option<(f64, u64, RectLoop)> = None;
    for x1 in 0..grid.width() {
        for x2 in x1 + 1..grid.width() {
            for y1 in 0..grid.height() {
                for y2 in y1 + 1..grid.height() {
                    let cw = RectLoop::new(x1, y1, x2, y2, Direction::Clockwise)
                        .expect("non-degenerate by construction");
                    if !env.satisfies_constraints(&cw) {
                        continue;
                    }
                    let new_pairs = hops.newly_connected_pairs(&grid, &cw);
                    if new_pairs == 0 {
                        continue;
                    }
                    let nodes = cw.perimeter_nodes(&grid);
                    let pressure: f64 = nodes
                        .iter()
                        .map(|&n| {
                            let o = f64::from(topo.node_overlap(n)) / cap;
                            o * o
                        })
                        .sum::<f64>()
                        / nodes.len() as f64;
                    let score = new_pairs as f64 / (1.0 + pressure);
                    let ccw = cw.reversed();
                    let (g, ring) = {
                        let g_cw = hops.improvement_if_added(&grid, &cw);
                        let g_ccw = hops.improvement_if_added(&grid, &ccw);
                        if g_cw >= g_ccw {
                            (g_cw, cw)
                        } else {
                            (g_ccw, ccw)
                        }
                    };
                    let ring = if topo.contains_loop(&ring) {
                        ring.reversed()
                    } else {
                        ring
                    };
                    if topo.contains_loop(&ring) {
                        continue;
                    }
                    let better = best
                        .as_ref()
                        .is_none_or(|&(bs, bg, _)| score > bs || (score == bs && g > bg));
                    if better {
                        best = Some((score, g, ring));
                    }
                }
            }
        }
    }
    match best {
        Some((_, _, ring)) => Some(ring.into()),
        None => greedy_action(env),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;
    use rlnoc_topology::Grid;

    #[test]
    fn greedy_first_pick_maximizes_connectivity() {
        // On a blank 4x4, the outer ring connects the most pairs (12
        // perimeter nodes → 132 ordered pairs); greedy must pick it.
        let env = RouterlessEnv::new(Grid::square(4).unwrap(), 6);
        let a = greedy_action(&env).unwrap();
        assert_eq!((a.x1, a.y1, a.x2, a.y2), (0, 0, 3, 3));
    }

    #[test]
    fn greedy_actions_are_always_legal() {
        let mut env = RouterlessEnv::new(Grid::square(4).unwrap(), 4);
        for _ in 0..50 {
            match greedy_action(&env) {
                Some(a) => assert_eq!(env.apply(a), 0.0, "greedy proposed illegal {a:?}"),
                None => break,
            }
        }
        assert!(env.is_terminal() || env.topology().loops().len() == 50);
    }

    #[test]
    fn greedy_reaches_full_connectivity() {
        let mut env = RouterlessEnv::new(Grid::square(4).unwrap(), 6);
        while let Some(a) = greedy_action(&env) {
            env.apply(a);
            if env.is_fully_connected() {
                break;
            }
        }
        assert!(
            env.is_fully_connected(),
            "greedy should connect a 4x4 at cap 6"
        );
    }

    #[test]
    fn greedy_none_when_terminal() {
        let mut env = RouterlessEnv::new(Grid::square(2).unwrap(), 1);
        env.apply(crate::routerless::LoopAction::new(
            0,
            0,
            1,
            1,
            Direction::Clockwise,
        ));
        assert!(greedy_action(&env).is_none());
    }

    #[test]
    fn greedy_prefers_direction_with_more_improvement() {
        // Add a CW outer ring; the best second action includes direction
        // choice. Reverse of an existing ring halves round-trip distances,
        // so the CCW outer ring has the largest Imprv among same-count
        // candidates.
        let mut env = RouterlessEnv::new(Grid::square(4).unwrap(), 6);
        env.apply(crate::routerless::LoopAction::new(
            0,
            0,
            3,
            3,
            Direction::Clockwise,
        ));
        let a = greedy_action(&env).unwrap();
        // Whatever rectangle wins must be strictly legal and improve hops.
        let before = env.average_hops();
        env.apply(a);
        assert!(env.average_hops() < before);
    }
}
