//! The deep reinforcement learning framework of the paper — the primary
//! contribution being reproduced.
//!
//! The framework (paper Figure 4) couples three pieces:
//!
//! 1. a two-headed policy/value DNN ([`rlnoc_nn::PolicyValueNet`]) that
//!    proposes design actions and estimates returns,
//! 2. a Monte-Carlo tree search ([`mcts`]) that records explored designs and
//!    balances exploitation of known-good branches against exploration
//!    (Equations 21–22, with an ε-greedy override running the deterministic
//!    greedy sweep of Algorithm 1),
//! 3. an advantage actor-critic learner ([`policy`], Equations 15–18) that
//!    trains the DNN from each exploration cycle — no pre-existing dataset.
//!
//! The framework is generic over an [`Environment`] (§6.8 "broad
//! applicability"); the paper's case study, routerless NoC loop placement,
//! is implemented in [`routerless`]. Multi-threaded exploration with a
//! parent parameter server (§4.6, Figure 8) lives in [`parallel`].
//!
//! # Example
//!
//! Explore 4x4 routerless NoC designs for a few cycles:
//!
//! ```
//! use rlnoc_core::routerless::RouterlessEnv;
//! use rlnoc_core::explorer::{Explorer, ExplorerConfig};
//! use rlnoc_topology::Grid;
//!
//! let env = RouterlessEnv::new(Grid::square(4).unwrap(), 6);
//! let mut config = ExplorerConfig::fast();
//! config.cycles = 3;
//! let mut explorer = Explorer::new(env, config, 42);
//! let report = explorer.run();
//! assert!(report.cycles_run == 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod chaos;
pub mod checkpoint;
pub mod env;
pub mod envs;
pub mod explorer;
pub mod greedy;
pub mod mcts;
pub mod parallel;
pub mod policy;
pub mod replay;
pub mod resilience;
pub mod rollout;
pub mod routerless;

pub use cache::{CacheStats, EvalCache, EvalCacheHandle, NoCache};
pub use chaos::{ChaosInjector, ChaosPlan};
pub use checkpoint::{CheckpointConfig, CheckpointError, ExploreCheckpoint};
pub use env::Environment;
pub use explorer::{CheckpointedRun, DesignResult, ExploreReport, Explorer, ExplorerConfig};
pub use mcts::{Mcts, MctsConfig};
pub use parallel::{
    explore_parallel, explore_parallel_checkpointed, explore_parallel_supervised, ExploreError,
    JoinError, SupervisedReport, SupervisionConfig, SupervisionReport,
};
pub use policy::{Episode, PolicyAgent, Step, TrainConfig};
pub use resilience::{AnomalyKind, AnomalyPolicy, AnomalyReport, ResilienceConfig, WatchdogConfig};
pub use routerless::{DesignConstraints, LoopAction, RouterlessEnv};
