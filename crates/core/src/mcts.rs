//! Monte-Carlo tree search over explored designs (paper §4.5, Figure 7).
//!
//! Each node is a previously seen design state (keyed by
//! [`crate::Environment::state_key`]); each edge is a loop addition. Edges
//! carry the statistics of the paper: the prior `P(a; s)` copied from the
//! policy network at expansion, the visit count `N(a; s)`, and the mean
//! cumulative return `V(s_next)`. Selection follows Equation 21:
//!
//! ```text
//! a* = argmax_a ( U(s, a) + V(s_next) ),
//! U(s, a) = c · P(a; s) · sqrt(Σ_j N(a_j; s)) / (1 + N(a; s))
//! ```

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// Tunables for the tree search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MctsConfig {
    /// The exploration constant `c` of Equation 22.
    pub c_puct: f64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig { c_puct: 1.5 }
    }
}

/// Per-edge statistics: prior, visit count, and cumulative returns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeStats {
    /// Prior probability `P(a; s)` from the policy head at expansion time.
    pub prior: f32,
    /// Visit count `N(a; s)`.
    pub visits: u32,
    /// Sum of backed-up returns through this edge.
    pub value_sum: f64,
}

impl EdgeStats {
    /// Mean backed-up return, `V(s_next)`; zero when unvisited.
    pub fn mean_value(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.value_sum / f64::from(self.visits)
        }
    }
}

#[derive(Debug, Clone)]
struct Node<A> {
    visits: u32,
    edges: HashMap<A, EdgeStats>,
}

impl<A> Default for Node<A> {
    fn default() -> Self {
        Node {
            visits: 0,
            edges: HashMap::new(),
        }
    }
}

/// The search tree: explored design states and their expansion statistics.
///
/// # Example
///
/// ```
/// use rlnoc_core::{Mcts, MctsConfig};
/// let mut tree: Mcts<u8> = Mcts::new(MctsConfig::default());
/// tree.expand(1, &[(10, 0.7), (20, 0.3)]);
/// // With no visits, selection follows the prior.
/// assert_eq!(tree.select(1), Some(10));
/// tree.backup(&[(1, 10)], &[5.0]);
/// assert_eq!(tree.edge(1, &10).unwrap().visits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mcts<A> {
    nodes: HashMap<u64, Node<A>>,
    config: MctsConfig,
}

impl<A: Copy + Eq + Hash + Debug> Mcts<A> {
    /// Creates an empty tree.
    pub fn new(config: MctsConfig) -> Self {
        Mcts {
            nodes: HashMap::new(),
            config,
        }
    }

    /// Number of stored nodes (explored designs).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `state` has been expanded (has outgoing edges).
    pub fn is_expanded(&self, state: u64) -> bool {
        self.nodes.get(&state).is_some_and(|n| !n.edges.is_empty())
    }

    /// Expands `state` with prior-weighted candidate actions (Figure 7b).
    /// Re-expanding an existing node merges new actions and leaves existing
    /// edge statistics untouched.
    pub fn expand(&mut self, state: u64, priors: &[(A, f32)]) {
        let node = self.nodes.entry(state).or_default();
        for &(a, p) in priors {
            node.edges.entry(a).or_insert(EdgeStats {
                prior: p,
                visits: 0,
                value_sum: 0.0,
            });
        }
    }

    /// Selects the optimal action at `state` per Equation 21, or `None` if
    /// the state is unknown or unexpanded. Deterministic: ties break toward
    /// the first-inserted action (iteration order is made stable by
    /// sorting on the score, then the debug representation).
    pub fn select(&self, state: u64) -> Option<A> {
        let node = self.nodes.get(&state)?;
        if node.edges.is_empty() {
            return None;
        }
        let total_visits: u32 = node.edges.values().map(|e| e.visits).sum();
        // Floor at 1 so the prior term is live even before the first
        // backup (otherwise all U scores start at zero).
        let sqrt_total = f64::from(total_visits).sqrt().max(1.0);
        let mut best: Option<(f64, String, A)> = None;
        for (&a, e) in &node.edges {
            let u =
                self.config.c_puct * f64::from(e.prior) * sqrt_total / (1.0 + f64::from(e.visits));
            let score = u + e.mean_value();
            let key = format!("{a:?}");
            let better = match &best {
                None => true,
                Some((bs, bk, _)) => score > *bs || (score == *bs && key < *bk),
            };
            if better {
                best = Some((score, key, a));
            }
        }
        best.map(|(_, _, a)| a)
    }

    /// Backs up one trajectory (Figure 7c): `path[i]` is the `(state,
    /// action)` pair at depth `i` and `returns[i]` the discounted return
    /// `G_i` observed from that point.
    ///
    /// # Panics
    ///
    /// Panics if `path` and `returns` lengths differ.
    pub fn backup(&mut self, path: &[(u64, A)], returns: &[f64]) {
        assert_eq!(path.len(), returns.len(), "path/returns length mismatch");
        for (&(state, action), &g) in path.iter().zip(returns) {
            let node = self.nodes.entry(state).or_default();
            node.visits += 1;
            let edge = node.edges.entry(action).or_insert(EdgeStats {
                prior: 0.0,
                visits: 0,
                value_sum: 0.0,
            });
            edge.visits += 1;
            edge.value_sum += g;
        }
    }

    /// Statistics of one edge, if present.
    pub fn edge(&self, state: u64, action: &A) -> Option<EdgeStats> {
        self.nodes.get(&state)?.edges.get(action).copied()
    }

    /// Visit count of a node (0 if unknown).
    pub fn node_visits(&self, state: u64) -> u32 {
        self.nodes.get(&state).map_or(0, |n| n.visits)
    }

    /// Visit counts of every stored edge, in unspecified order. Telemetry
    /// uses this to histogram how search effort concentrates; the sum
    /// equals the total number of edge backups plus expansions revisited.
    pub fn edge_visit_counts(&self) -> Vec<u32> {
        self.nodes
            .values()
            .flat_map(|n| n.edges.values().map(|e| e.visits))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Mcts<u8> {
        Mcts::new(MctsConfig { c_puct: 1.0 })
    }

    #[test]
    fn unexpanded_state_selects_none() {
        let t = tree();
        assert_eq!(t.select(7), None);
        assert!(!t.is_expanded(7));
    }

    #[test]
    fn selection_follows_prior_before_visits() {
        let mut t = tree();
        t.expand(1, &[(0, 0.2), (1, 0.5), (2, 0.3)]);
        assert_eq!(t.select(1), Some(1));
    }

    #[test]
    fn selection_shifts_to_high_value_edges() {
        let mut t = tree();
        t.expand(1, &[(0, 0.9), (1, 0.1)]);
        // Action 1 keeps returning strong rewards.
        for _ in 0..50 {
            t.backup(&[(1, 1)], &[10.0]);
        }
        assert_eq!(
            t.select(1),
            Some(1),
            "mean value should dominate a stale prior"
        );
    }

    #[test]
    fn visit_counts_decay_exploration_bonus() {
        let mut t = tree();
        t.expand(1, &[(0, 0.5), (1, 0.5)]);
        // Equal priors, equal (zero) values: after many visits to action 0,
        // the U term should push selection to action 1.
        for _ in 0..20 {
            t.backup(&[(1, 0)], &[0.0]);
        }
        assert_eq!(t.select(1), Some(1));
    }

    #[test]
    fn backup_accumulates_statistics() {
        let mut t = tree();
        t.expand(1, &[(0, 1.0)]);
        t.backup(&[(1, 0)], &[2.0]);
        t.backup(&[(1, 0)], &[4.0]);
        let e = t.edge(1, &0).unwrap();
        assert_eq!(e.visits, 2);
        assert_eq!(e.value_sum, 6.0);
        assert_eq!(e.mean_value(), 3.0);
        assert_eq!(t.node_visits(1), 2);
    }

    #[test]
    fn backup_through_unexpanded_states_creates_nodes() {
        let mut t = tree();
        t.backup(&[(5, 9), (6, 9)], &[1.0, 0.5]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.edge(6, &9).unwrap().visits, 1);
    }

    #[test]
    fn re_expansion_preserves_statistics() {
        let mut t = tree();
        t.expand(1, &[(0, 0.4)]);
        t.backup(&[(1, 0)], &[7.0]);
        t.expand(1, &[(0, 0.9), (1, 0.6)]);
        let e = t.edge(1, &0).unwrap();
        assert_eq!(e.prior, 0.4, "existing edge untouched");
        assert_eq!(e.visits, 1);
        assert_eq!(t.edge(1, &1).unwrap().prior, 0.6);
    }
}
