//! Multi-threaded exploration (paper §4.6, Figure 8): a parent parameter
//! server plus child threads that explore independently, sharing one search
//! tree and exchanging parameters/gradients.
//!
//! Children copy the parent's network parameters before each cycle, run an
//! exploration cycle against the shared tree, then push their accumulated
//! actor-critic gradients back; the parent averages incoming gradients into
//! one optimizer step each. Convergence is stabilized by the global-norm
//! clipping inside [`PolicyAgent::step_optimizer`], matching the paper's
//! note that averaging "both large gradients and small gradients" steadies
//! training.

use crate::cache::{EvalCache, EvalCacheHandle};
use crate::env::Environment;
use crate::explorer::{DesignResult, ExploreReport, ExplorerConfig, TreeHandle};
use crate::mcts::Mcts;
use crate::policy::{Evaluation, PolicyAgent};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A [`TreeHandle`] that serializes access to a tree shared across child
/// threads (the parent's "query queue" in Figure 8).
#[derive(Debug)]
pub struct SharedTree<A>(Arc<Mutex<Mcts<A>>>);

impl<A> Clone for SharedTree<A> {
    fn clone(&self) -> Self {
        SharedTree(Arc::clone(&self.0))
    }
}

impl<A: Copy + Eq + std::hash::Hash + std::fmt::Debug> SharedTree<A> {
    /// Wraps a tree for shared access.
    pub fn new(tree: Mcts<A>) -> Self {
        SharedTree(Arc::new(Mutex::new(tree)))
    }

    /// Extracts the tree once all handles are done.
    ///
    /// # Panics
    ///
    /// Panics if other handles still exist.
    pub fn into_inner(self) -> Mcts<A> {
        Arc::try_unwrap(self.0)
            .expect("all shared-tree handles must be dropped first")
            .into_inner()
    }
}

impl<A: Copy + Eq + std::hash::Hash + std::fmt::Debug> TreeHandle<A> for SharedTree<A> {
    fn is_expanded(&mut self, state: u64) -> bool {
        self.0.lock().is_expanded(state)
    }
    fn expand(&mut self, state: u64, priors: &[(A, f32)]) {
        self.0.lock().expand(state, priors);
    }
    fn select(&mut self, state: u64) -> Option<A> {
        self.0.lock().select(state)
    }
    fn backup(&mut self, path: &[(u64, A)], returns: &[f64]) {
        self.0.lock().backup(path, returns);
    }
}

/// An [`EvalCacheHandle`] over one [`EvalCache`] shared by all child
/// threads. Entries are keyed on the parent's parameter generation, so a
/// worker never serves an evaluation computed under parameters it has not
/// loaded.
#[derive(Debug)]
pub struct SharedEvalCache(Arc<Mutex<EvalCache>>);

impl Clone for SharedEvalCache {
    fn clone(&self) -> Self {
        SharedEvalCache(Arc::clone(&self.0))
    }
}

impl SharedEvalCache {
    /// Wraps a cache for shared access.
    pub fn new(cache: EvalCache) -> Self {
        SharedEvalCache(Arc::new(Mutex::new(cache)))
    }

    /// Extracts the cache once all handles are done.
    ///
    /// # Panics
    ///
    /// Panics if other handles still exist.
    pub fn into_inner(self) -> EvalCache {
        Arc::try_unwrap(self.0)
            .expect("all shared-cache handles must be dropped first")
            .into_inner()
    }
}

impl EvalCacheHandle for SharedEvalCache {
    fn lookup(&mut self, state_key: u64, generation: u64) -> Option<Evaluation> {
        self.0.lock().lookup(state_key, generation)
    }
    fn store(&mut self, state_key: u64, generation: u64, eval: &Evaluation) {
        self.0.lock().store(state_key, generation, eval);
    }
}

/// Runs `total_cycles` exploration cycles split across `threads` child
/// agents with a shared tree and parent parameter server, returning the
/// merged report (designs tagged with global cycle indices, in completion
/// order).
///
/// With `threads == 1` this is behaviourally equivalent to
/// [`crate::Explorer`] modulo scheduling.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn explore_parallel<E>(
    env: &E,
    config: &ExplorerConfig,
    threads: usize,
    total_cycles: usize,
    seed: u64,
) -> ExploreReport<E>
where
    E: Environment + Send + Sync,
    E::Action: Send + Sync,
{
    assert!(threads > 0, "need at least one thread");
    // Parent: the canonical network and optimizer (thread 0 of Figure 8).
    let parent = Arc::new(Mutex::new(match &config.net {
        Some(net_cfg) => PolicyAgent::new(net_cfg.clone(), config.train.clone(), seed),
        None => PolicyAgent::for_env(env, config.train.clone(), seed),
    }));
    let tree = SharedTree::new(Mcts::new(config.mcts));
    let cache = SharedEvalCache::new(EvalCache::new(config.eval_cache_capacity));
    let results: Arc<Mutex<Vec<DesignResult<E>>>> = Arc::new(Mutex::new(Vec::new()));
    let stats_log = Arc::new(Mutex::new(Vec::new()));
    let cycle_counter = Arc::new(Mutex::new(0usize));

    std::thread::scope(|scope| {
        for t in 0..threads {
            let parent = Arc::clone(&parent);
            let mut tree = tree.clone();
            let mut cache = cache.clone();
            let results = Arc::clone(&results);
            let stats_log = Arc::clone(&stats_log);
            let cycle_counter = Arc::clone(&cycle_counter);
            let mut env = env.clone();
            let config = config.clone();
            scope.spawn(move || {
                // Child DNN replica with its own buffers.
                let mut local = match &config.net {
                    Some(net_cfg) => PolicyAgent::new(net_cfg.clone(), config.train.clone(), seed),
                    None => PolicyAgent::for_env(&env, config.train.clone(), seed),
                };
                let mut rng = StdRng::seed_from_u64(
                    seed.wrapping_add(1 + t as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                loop {
                    // Claim a cycle index, or finish.
                    let cycle = {
                        let mut c = cycle_counter.lock();
                        if *c >= total_cycles {
                            break;
                        }
                        let mine = *c;
                        *c += 1;
                        mine
                    };
                    // θ: parent → child, tagged with the parent's
                    // generation so cached evaluations stay consistent.
                    let (snapshot, generation) = {
                        let mut p = parent.lock();
                        (p.net_mut().param_snapshot(), p.param_generation())
                    };
                    local.net_mut().load_params(&snapshot);
                    local.set_param_generation(generation);
                    local.net_mut().zero_grad();

                    let (episode, path) = crate::explorer::run_episode(
                        &mut env, &mut local, &mut tree, &mut cache, &config, &mut rng,
                    );
                    let returns = episode.returns(config.train.gamma);
                    tree.backup(&path, &returns);

                    // dθ: child → parent. The post-step snapshot is taken
                    // under the same lock so it is consistent with the
                    // generation it is tagged with.
                    let mut stats = local.accumulate_episode(&env, &episode);
                    let grads = local.net_mut().grad_snapshot();
                    let stepped = {
                        let mut p = parent.lock();
                        p.net_mut().accumulate_grads(&grads);
                        stats.grad_norm = p.step_optimizer();
                        if config.eval_cache_capacity > 0 {
                            Some((p.net_mut().param_snapshot(), p.param_generation()))
                        } else {
                            None
                        }
                    };
                    // Warm the shared cache under the new parameters: one
                    // batched forward over this episode's visited states,
                    // so the next cycle's root expansion (any worker) hits.
                    if let Some((snapshot, generation)) = stepped {
                        local.net_mut().load_params(&snapshot);
                        local.set_param_generation(generation);
                        crate::explorer::warm_cache(
                            &mut local,
                            &mut cache,
                            &episode,
                            &path,
                            config.max_steps,
                        );
                    }
                    stats_log.lock().push(stats);
                    results.lock().push(DesignResult {
                        successful: env.is_successful(),
                        env: env.clone(),
                        final_return: episode.final_return,
                        cycle,
                        steps: episode.steps.len(),
                    });
                }
            });
        }
    });

    let mut designs = Arc::try_unwrap(results)
        .expect("worker threads joined")
        .into_inner();
    designs.sort_by_key(|d| d.cycle);
    let train_history = Arc::try_unwrap(stats_log)
        .expect("worker threads joined")
        .into_inner();
    let cache_stats = cache.into_inner().stats();
    ExploreReport {
        cycles_run: designs.len(),
        designs,
        train_history,
        cache_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routerless::RouterlessEnv;
    use rlnoc_topology::Grid;

    fn quick_config() -> ExplorerConfig {
        let mut c = ExplorerConfig::fast();
        c.max_steps = 30;
        c
    }

    #[test]
    fn parallel_runs_requested_cycles() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let report = explore_parallel(&env, &quick_config(), 3, 6, 9);
        assert_eq!(report.cycles_run, 6);
        assert_eq!(report.designs.len(), 6);
        // Cycles are globally unique and complete.
        let mut cycles: Vec<_> = report.designs.iter().map(|d| d.cycle).collect();
        cycles.sort_unstable();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn parallel_single_thread_works() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let report = explore_parallel(&env, &quick_config(), 1, 2, 1);
        assert_eq!(report.cycles_run, 2);
    }

    #[test]
    fn parallel_finds_valid_designs() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 6);
        let report = explore_parallel(&env, &quick_config(), 2, 6, 5);
        assert!(
            report.successful_count() > 0,
            "parallel search should find connected 3x3 designs"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let _ = explore_parallel(&env, &quick_config(), 0, 1, 0);
    }

    fn outcomes(report: &ExploreReport<RouterlessEnv>) -> Vec<(usize, usize, bool, f64)> {
        report
            .designs
            .iter()
            .map(|d| (d.cycle, d.steps, d.successful, d.final_return))
            .collect()
    }

    #[test]
    fn cache_does_not_change_single_thread_results() {
        // With one worker the exploration is fully deterministic, and a
        // cached evaluation is bit-identical to a fresh forward (entries
        // are keyed on the parameter generation), so enabling the cache
        // must not change the search trajectory at all.
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let mut with_cache = quick_config();
        with_cache.eval_cache_capacity = 4096;
        let mut without = quick_config();
        without.eval_cache_capacity = 0;

        let cached = explore_parallel(&env, &with_cache, 1, 3, 13);
        let uncached = explore_parallel(&env, &without, 1, 3, 13);
        assert_eq!(outcomes(&cached), outcomes(&uncached));
        assert!(
            cached.cache_stats.hits > 0,
            "expand + initial sampling of the same root state must hit"
        );
        assert_eq!(uncached.cache_stats, crate::cache::CacheStats::default());
    }

    #[test]
    fn results_invariant_to_matmul_thread_count() {
        // An 8x8 NoC (64x64 state matrix) pushes the residual-block GEMMs
        // past the parallel threshold, so this exercises the row-banded
        // multi-threaded matmul end to end: the search outcome must be
        // bit-identical regardless of the kernel's thread budget.
        let env = RouterlessEnv::new(Grid::square(8).unwrap(), 14);
        let mut cfg = quick_config();
        cfg.max_steps = 4;
        cfg.complete_designs = false;
        let run = |mm_threads: usize| {
            let previous = rlnoc_nn::kernels::matmul_threads();
            rlnoc_nn::kernels::set_matmul_threads(mm_threads);
            let report = explore_parallel(&env, &cfg, 1, 2, 21);
            rlnoc_nn::kernels::set_matmul_threads(previous);
            outcomes(&report)
        };
        assert_eq!(run(1), run(3));
    }
}
