//! Multi-threaded exploration (paper §4.6, Figure 8): a parent parameter
//! server plus child threads that explore independently, sharing one search
//! tree and exchanging parameters/gradients.
//!
//! Children copy the parent's network parameters before each cycle, run an
//! exploration cycle against the shared tree, then push their accumulated
//! actor-critic gradients back; the parent averages incoming gradients into
//! one optimizer step each. Convergence is stabilized by the global-norm
//! clipping inside [`PolicyAgent::step_optimizer`], matching the paper's
//! note that averaging "both large gradients and small gradients" steadies
//! training.
//!
//! # Fault tolerance
//!
//! [`explore_parallel_supervised`] hardens the learner for long runs: each
//! worker cycle executes under [`std::panic::catch_unwind`], a panicking
//! worker is respawned in place with fresh state (up to
//! [`SupervisionConfig::max_respawns_per_worker`] times), the cycle it was
//! running is requeued, and shutdown never unwraps shared state with a bare
//! `expect` — leaked handles surface as a typed [`JoinError`] and exhausted
//! workers as [`ExploreError::WorkersExhausted`] carrying the partial
//! results. [`explore_parallel_checkpointed`] additionally snapshots the
//! parent network and best design to disk so a killed run restarts where it
//! left off.

use crate::cache::{CacheStats, EvalCache, EvalCacheHandle};
use crate::chaos::{ChaosInjector, StartOutcome};
use crate::checkpoint::{CheckpointConfig, CheckpointError, CheckpointSource, ExploreCheckpoint};
use crate::env::Environment;
use crate::explorer::{DesignResult, ExploreReport, ExplorerConfig, TreeHandle};
use crate::mcts::Mcts;
use crate::policy::{Evaluation, PolicyAgent, TrainStats};
use crate::resilience::{first_non_finite, AnomalyKind, AnomalyPolicy, AnomalyReport};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlnoc_telemetry::Recorder;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Error returned when a shared resource cannot be reclaimed at shutdown
/// because handles to it are still alive (a worker leaked its clone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinError {
    /// Human-readable name of the shared resource.
    pub resource: &'static str,
    /// Number of other handles still holding the resource.
    pub outstanding: usize,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot reclaim shared {}: {} handle(s) still outstanding",
            self.resource, self.outstanding
        )
    }
}

impl std::error::Error for JoinError {}

/// Reclaims a shared value after the owning scope has joined. Never
/// panics: if a handle somehow survived, the value is moved out from
/// behind the lock instead.
fn drain_shared<T: Default>(arc: Arc<Mutex<T>>) -> T {
    match Arc::try_unwrap(arc) {
        Ok(m) => m.into_inner(),
        Err(arc) => std::mem::take(&mut *arc.lock()),
    }
}

/// A [`TreeHandle`] that serializes access to a tree shared across child
/// threads (the parent's "query queue" in Figure 8).
#[derive(Debug)]
pub struct SharedTree<A>(Arc<Mutex<Mcts<A>>>);

impl<A> Clone for SharedTree<A> {
    fn clone(&self) -> Self {
        SharedTree(Arc::clone(&self.0))
    }
}

impl<A: Copy + Eq + std::hash::Hash + std::fmt::Debug> SharedTree<A> {
    /// Wraps a tree for shared access.
    pub fn new(tree: Mcts<A>) -> Self {
        SharedTree(Arc::new(Mutex::new(tree)))
    }

    /// Number of stored nodes (lock-and-read; usable while other handles
    /// are alive).
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// Whether the shared tree has no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }

    /// Visit counts of every stored edge (see [`Mcts::edge_visit_counts`]).
    pub fn edge_visit_counts(&self) -> Vec<u32> {
        self.0.lock().edge_visit_counts()
    }

    /// Extracts the tree once all other handles are dropped.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] naming the outstanding handle count if other
    /// clones are still alive (the tree stays owned by them; this handle is
    /// consumed either way).
    pub fn try_into_inner(self) -> Result<Mcts<A>, JoinError> {
        let outstanding = Arc::strong_count(&self.0) - 1;
        Arc::try_unwrap(self.0)
            .map(Mutex::into_inner)
            .map_err(|_| JoinError {
                resource: "search tree",
                outstanding,
            })
    }

    /// Extracts the tree once all handles are done.
    ///
    /// # Panics
    ///
    /// Panics if other handles still exist; prefer
    /// [`SharedTree::try_into_inner`].
    pub fn into_inner(self) -> Mcts<A> {
        match self.try_into_inner() {
            Ok(tree) => tree,
            Err(e) => panic!("{e}"),
        }
    }
}

impl<A: Copy + Eq + std::hash::Hash + std::fmt::Debug> TreeHandle<A> for SharedTree<A> {
    fn is_expanded(&mut self, state: u64) -> bool {
        self.0.lock().is_expanded(state)
    }
    fn expand(&mut self, state: u64, priors: &[(A, f32)]) {
        self.0.lock().expand(state, priors);
    }
    fn select(&mut self, state: u64) -> Option<A> {
        self.0.lock().select(state)
    }
    fn backup(&mut self, path: &[(u64, A)], returns: &[f64]) {
        self.0.lock().backup(path, returns);
    }
}

/// An [`EvalCacheHandle`] over one [`EvalCache`] shared by all child
/// threads. Entries are keyed on the parent's parameter generation, so a
/// worker never serves an evaluation computed under parameters it has not
/// loaded.
#[derive(Debug)]
pub struct SharedEvalCache(Arc<Mutex<EvalCache>>);

impl Clone for SharedEvalCache {
    fn clone(&self) -> Self {
        SharedEvalCache(Arc::clone(&self.0))
    }
}

impl SharedEvalCache {
    /// Wraps a cache for shared access.
    pub fn new(cache: EvalCache) -> Self {
        SharedEvalCache(Arc::new(Mutex::new(cache)))
    }

    /// Hit/miss counters accumulated so far (lock-and-read; usable while
    /// other handles are alive).
    pub fn stats(&self) -> CacheStats {
        self.0.lock().stats()
    }

    /// Extracts the cache once all other handles are dropped.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] naming the outstanding handle count if other
    /// clones are still alive.
    pub fn try_into_inner(self) -> Result<EvalCache, JoinError> {
        let outstanding = Arc::strong_count(&self.0) - 1;
        Arc::try_unwrap(self.0)
            .map(Mutex::into_inner)
            .map_err(|_| JoinError {
                resource: "evaluation cache",
                outstanding,
            })
    }

    /// Extracts the cache once all handles are done.
    ///
    /// # Panics
    ///
    /// Panics if other handles still exist; prefer
    /// [`SharedEvalCache::try_into_inner`].
    pub fn into_inner(self) -> EvalCache {
        match self.try_into_inner() {
            Ok(cache) => cache,
            Err(e) => panic!("{e}"),
        }
    }
}

impl EvalCacheHandle for SharedEvalCache {
    fn lookup(&mut self, state_key: u64, generation: u64) -> Option<Evaluation> {
        self.0.lock().lookup(state_key, generation)
    }
    fn store(&mut self, state_key: u64, generation: u64, eval: &Evaluation) {
        self.0.lock().store(state_key, generation, eval);
    }
}

/// Supervision knobs for [`explore_parallel_supervised`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// How many times a panicked worker is restarted in place (with a fresh
    /// environment, local network replica, and a respawn-salted RNG) before
    /// it is written off. The cycle a panicking worker had claimed is always
    /// requeued for any surviving worker to pick up.
    pub max_respawns_per_worker: usize,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            max_respawns_per_worker: 3,
        }
    }
}

/// What the supervisor observed over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Worker panics caught (each is also a requeued cycle).
    pub panics: u64,
    /// In-place worker restarts performed.
    pub respawns: u64,
    /// Workers that exhausted their respawn budget and were written off.
    pub workers_lost: usize,
    /// Numerical anomalies detected (each one is a discarded update and a
    /// retried cycle; per-kind breakdown in [`SupervisedReport`]'s log and
    /// the `anomaly.*` telemetry counters).
    pub anomalies: u64,
    /// Anomalies whose handling rolled the parent parameters back to the
    /// pre-step snapshot (post-step NaN/Inf detections).
    pub rollbacks: u64,
    /// Workers quarantined after exceeding
    /// [`crate::resilience::AnomalyPolicy::max_retries`] consecutive
    /// anomalies.
    pub quarantined: usize,
    /// Stalls flagged by the watchdog (heartbeat older than the deadline).
    pub stalls_detected: u64,
    /// Watchdog interrupts honored by a worker that then resumed normally.
    pub stalls_recovered: u64,
}

/// A supervised exploration outcome: the merged report plus what the
/// supervisor had to do to produce it.
#[derive(Debug, Clone)]
pub struct SupervisedReport<E> {
    /// The merged exploration report (cycles run in *this* process).
    pub report: ExploreReport<E>,
    /// Panic/respawn/anomaly accounting.
    pub supervision: SupervisionReport,
    /// Cycles already completed by a previous run when resuming from a
    /// checkpoint (0 unless [`explore_parallel_checkpointed`] resumed).
    pub resumed_from: usize,
    /// Every numerical anomaly detected and survived, in detection order.
    pub anomaly_log: Vec<AnomalyReport>,
}

/// Typed failure modes of the supervised exploration drivers.
#[derive(Debug)]
pub enum ExploreError<E> {
    /// `threads` was zero.
    ZeroThreads,
    /// Every worker exhausted its respawn budget before all requested
    /// cycles completed. The partial results are preserved.
    WorkersExhausted {
        /// Everything that completed before the pool died.
        partial: Box<SupervisedReport<E>>,
        /// The cycle count originally requested.
        requested: usize,
    },
    /// A shared resource could not be reclaimed at shutdown.
    Join(JoinError),
    /// Saving or loading a checkpoint failed
    /// (only from [`explore_parallel_checkpointed`]).
    Checkpoint(CheckpointError),
    /// A persistent numerical anomaly survived every rollback/retry and
    /// quarantined enough workers that the run could not finish. The
    /// partial results (all of them produced by *accepted* updates) are
    /// preserved.
    Numerical {
        /// The anomaly that quarantined the last worker.
        report: AnomalyReport,
        /// Everything that completed before the pool was quarantined.
        partial: Box<SupervisedReport<E>>,
        /// The cycle count originally requested.
        requested: usize,
    },
}

impl<E> std::fmt::Display for ExploreError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::ZeroThreads => write!(f, "need at least one thread"),
            ExploreError::WorkersExhausted { partial, requested } => write!(
                f,
                "all workers exhausted their respawn budgets after {} of {} cycles \
                 ({} panics)",
                partial.report.cycles_run, requested, partial.supervision.panics
            ),
            ExploreError::Join(e) => write!(f, "{e}"),
            ExploreError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            ExploreError::Numerical {
                report,
                partial,
                requested,
            } => write!(
                f,
                "persistent numerical anomaly after {} of {} cycles ({} anomalies, \
                 {} workers quarantined): {report}",
                partial.report.cycles_run,
                requested,
                partial.supervision.anomalies,
                partial.supervision.quarantined
            ),
        }
    }
}

impl<E: std::fmt::Debug> std::error::Error for ExploreError<E> {}

impl<E> From<JoinError> for ExploreError<E> {
    fn from(e: JoinError) -> Self {
        ExploreError::Join(e)
    }
}

impl<E> From<CheckpointError> for ExploreError<E> {
    fn from(e: CheckpointError) -> Self {
        ExploreError::Checkpoint(e)
    }
}

/// The worker RNG for incarnation `respawns` of worker `t` — incarnation 0
/// matches the historical [`explore_parallel`] stream, so a panic-free
/// supervised run explores identically to the unsupervised one.
fn worker_rng(seed: u64, t: usize, threads: usize, respawns: usize) -> StdRng {
    StdRng::seed_from_u64(
        seed.wrapping_add(1 + t as u64 + (threads as u64) * (respawns as u64))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// Builds the telemetry recorder for worker `t` and installs the matching
/// nn-kernel recorder on the calling thread. When telemetry is off this
/// returns a disabled recorder without allocating, keeping the worker loop
/// on the zero-overhead path.
fn worker_recorder(config: &ExplorerConfig, t: usize) -> Recorder {
    if !config.telemetry.is_enabled() {
        return Recorder::disabled();
    }
    let _ = rlnoc_nn::instrument::install(config.telemetry.recorder(&format!("nn:worker{t}")));
    config.telemetry.recorder(&format!("worker{t}"))
}

/// Publishes the parent-side end-of-run summary (cache totals, tree size,
/// edge-visit distribution, parameter generation, and — when supervised —
/// panic/respawn accounting). No-op with telemetry disabled.
fn publish_run_summary<A>(
    config: &ExplorerConfig,
    source: &str,
    tree: &SharedTree<A>,
    cache_stats: CacheStats,
    param_generation: u64,
    supervision: Option<&SupervisionReport>,
) where
    A: Copy + Eq + std::hash::Hash + std::fmt::Debug,
{
    if !config.telemetry.is_enabled() {
        return;
    }
    let mut rec = config.telemetry.recorder(source);
    rec.incr("cache.hits", cache_stats.hits);
    rec.incr("cache.misses", cache_stats.misses);
    rec.gauge("mcts.nodes", tree.len() as f64);
    for v in tree.edge_visit_counts() {
        rec.record("mcts.edge_visits", u64::from(v));
    }
    rec.gauge("train.param_generation", param_generation as f64);
    if let Some(s) = supervision {
        rec.incr("worker.panics", s.panics);
        rec.incr("worker.respawns", s.respawns);
        rec.incr("worker.lost", s.workers_lost as u64);
        rec.incr("anomaly.total", s.anomalies);
        rec.incr("anomaly.rollbacks", s.rollbacks);
        rec.incr("worker.quarantined", s.quarantined as u64);
        rec.incr("watchdog.stalls_detected", s.stalls_detected);
        rec.incr("watchdog.stalls_recovered", s.stalls_recovered);
    }
}

/// One complete worker cycle: pull parameters, run an episode against the
/// shared tree, push gradients, warm the cache, record the result. Shared
/// by the supervised and unsupervised drivers.
///
/// The cycle is *transactional* with respect to numerical anomalies: the
/// episode runs, its gradients are validated, and the parent optimizer
/// step is guarded — all **before** the tree backup and result push. On
/// `Err` nothing observable has committed except tree expansions and
/// cache stores (both re-derived bit-identically by a retry under the same
/// parameters) and the local replica's batch-norm running statistics; a
/// caller that restores its RNG *and* the local net's norm snapshot and
/// retries reproduces the clean run exactly. With `policy.enabled` false
/// and no injector this is the historical unguarded cycle.
#[allow(clippy::too_many_arguments)]
fn run_worker_cycle<E: Environment>(
    env: &mut E,
    local: &mut PolicyAgent,
    tree: &mut SharedTree<E::Action>,
    cache: &mut SharedEvalCache,
    parent: &Mutex<PolicyAgent>,
    config: &ExplorerConfig,
    rng: &mut StdRng,
    cycle: usize,
    results: &Mutex<Vec<DesignResult<E>>>,
    stats_log: &Mutex<Vec<TrainStats>>,
    rec: &mut Recorder,
    policy: &AnomalyPolicy,
    chaos: Option<&ChaosInjector>,
) -> Result<(), AnomalyKind> {
    let timer = rec.timer();
    // θ: parent → child, tagged with the parent's generation so cached
    // evaluations stay consistent.
    let (snapshot, generation) = {
        let mut p = parent.lock();
        (p.net_mut().param_snapshot(), p.param_generation())
    };
    local.net_mut().load_params(&snapshot);
    local.set_param_generation(generation);
    local.net_mut().zero_grad();

    let (episode, path) = crate::explorer::run_episode(env, local, tree, cache, config, rng);
    let returns = episode.returns(config.train.gamma);

    // dθ: child → parent, validated before anything commits.
    let mut stats = local.accumulate_episode(env, &episode);
    let mut grads = local.net_mut().grad_snapshot();
    if let Some(injector) = chaos {
        injector.corrupt_grads(cycle, &mut grads);
    }
    if policy.enabled {
        if !stats.policy_loss.is_finite() || !stats.value_loss.is_finite() {
            return Err(AnomalyKind::NonFiniteLoss {
                policy_loss: stats.policy_loss,
                value_loss: stats.value_loss,
            });
        }
        if let Some(tensor) = first_non_finite(&grads) {
            return Err(AnomalyKind::NonFiniteGrad { tensor });
        }
    }
    let stepped = {
        let mut p = parent.lock();
        let pre_step = if policy.enabled {
            Some(p.capture_step_state())
        } else {
            None
        };
        p.net_mut().accumulate_grads(&grads);
        stats.grad_norm = p.step_optimizer_guarded(policy)?;
        if let Some(injector) = chaos {
            if injector.take_param_corruption(cycle) {
                p.net_mut().params_mut()[0].value.as_mut_slice()[0] = f32::NAN;
            }
        }
        if let Some(pre_step) = &pre_step {
            if let Some(tensor) = p.first_non_finite_param() {
                p.restore_step_state(pre_step);
                return Err(AnomalyKind::NonFiniteParam { tensor });
            }
        }
        if config.eval_cache_capacity > 0 {
            Some((p.net_mut().param_snapshot(), p.param_generation()))
        } else {
            None
        }
    };
    // Commit point: the parent accepted the update, so the episode's tree
    // statistics become visible. (Backup after the step keeps aborted
    // cycles free of observable side effects; at one thread the ordering
    // relative to the step is indistinguishable, and across threads the
    // interleaving was never deterministic.)
    tree.backup(&path, &returns);
    // Warm the shared cache under the new parameters: one batched forward
    // over this episode's visited states, so the next cycle's root
    // expansion (any worker) hits.
    if let Some((snapshot, generation)) = stepped {
        local.net_mut().load_params(&snapshot);
        local.set_param_generation(generation);
        crate::explorer::warm_cache(local, cache, &episode, &path, config.max_steps);
    }
    let successful = env.is_successful();
    if rec.is_enabled() {
        rec.incr("explore.cycles", 1);
        if successful {
            rec.incr("explore.designs_successful", 1);
        }
        rec.record("explore.steps", episode.steps.len() as u64);
        rec.record("mcts.path_depth", path.len() as u64);
        rec.gauge("train.policy_loss", f64::from(stats.policy_loss));
        rec.gauge("train.value_loss", f64::from(stats.value_loss));
        rec.gauge("train.grad_norm", f64::from(stats.grad_norm));
        rec.gauge("train.entropy", f64::from(stats.entropy));
        rec.observe_timer("explore.cycle_us", timer);
    }
    stats_log.lock().push(stats);
    results.lock().push(DesignResult {
        successful,
        env: env.clone(),
        final_return: episode.final_return,
        cycle,
        steps: episode.steps.len(),
    });
    Ok(())
}

/// Runs `total_cycles` exploration cycles split across `threads` child
/// agents with a shared tree and parent parameter server, returning the
/// merged report (designs tagged with global cycle indices, in completion
/// order).
///
/// With `threads == 1` this is behaviourally equivalent to
/// [`crate::Explorer`] modulo scheduling. A panicking worker propagates at
/// scope join; long or untrusted runs should prefer
/// [`explore_parallel_supervised`].
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn explore_parallel<E>(
    env: &E,
    config: &ExplorerConfig,
    threads: usize,
    total_cycles: usize,
    seed: u64,
) -> ExploreReport<E>
where
    E: Environment + Send + Sync,
    E::Action: Send + Sync,
{
    assert!(threads > 0, "need at least one thread");
    // Parent: the canonical network and optimizer (thread 0 of Figure 8).
    let parent = Arc::new(Mutex::new(match &config.net {
        Some(net_cfg) => PolicyAgent::new(net_cfg.clone(), config.train.clone(), seed),
        None => PolicyAgent::for_env(env, config.train.clone(), seed),
    }));
    let tree = SharedTree::new(Mcts::new(config.mcts));
    let cache = SharedEvalCache::new(EvalCache::new(config.eval_cache_capacity));
    let results: Arc<Mutex<Vec<DesignResult<E>>>> = Arc::new(Mutex::new(Vec::new()));
    let stats_log = Arc::new(Mutex::new(Vec::new()));
    let cycle_counter = Arc::new(Mutex::new(0usize));

    std::thread::scope(|scope| {
        for t in 0..threads {
            let parent = Arc::clone(&parent);
            let mut tree = tree.clone();
            let mut cache = cache.clone();
            let results = Arc::clone(&results);
            let stats_log = Arc::clone(&stats_log);
            let cycle_counter = Arc::clone(&cycle_counter);
            let mut env = env.clone();
            let config = config.clone();
            scope.spawn(move || {
                // Child DNN replica with its own buffers.
                let mut local = match &config.net {
                    Some(net_cfg) => PolicyAgent::new(net_cfg.clone(), config.train.clone(), seed),
                    None => PolicyAgent::for_env(&env, config.train.clone(), seed),
                };
                let mut rng = worker_rng(seed, t, threads, 0);
                let mut rec = worker_recorder(&config, t);
                loop {
                    // Claim a cycle index, or finish.
                    let cycle = {
                        let mut c = cycle_counter.lock();
                        if *c >= total_cycles {
                            break;
                        }
                        let mine = *c;
                        *c += 1;
                        mine
                    };
                    let disabled = AnomalyPolicy {
                        enabled: false,
                        ..AnomalyPolicy::default()
                    };
                    run_worker_cycle(
                        &mut env, &mut local, &mut tree, &mut cache, &parent, &config, &mut rng,
                        cycle, &results, &stats_log, &mut rec, &disabled, None,
                    )
                    .expect("a disabled guard never rejects a cycle");
                }
                drop(rlnoc_nn::instrument::take());
            });
        }
    });

    let mut designs = drain_shared(results);
    designs.sort_by_key(|d| d.cycle);
    let train_history = drain_shared(stats_log);
    let cache_stats = cache.stats();
    publish_run_summary(
        config,
        "parallel",
        &tree,
        cache_stats,
        parent.lock().param_generation(),
        None,
    );
    ExploreReport {
        cycles_run: designs.len(),
        designs,
        train_history,
        cache_stats,
    }
}

/// [`explore_parallel`] hardened for long runs: every worker cycle executes
/// under `catch_unwind`, panicked workers are respawned in place (bounded
/// by [`SupervisionConfig::max_respawns_per_worker`]) with the lost cycle
/// requeued, and shutdown returns typed errors instead of panicking.
///
/// On success the [`SupervisedReport`] carries the merged exploration
/// report plus panic/respawn accounting. If every worker dies permanently
/// before the requested cycles complete, the partial results are returned
/// inside [`ExploreError::WorkersExhausted`].
///
/// # Caveats
///
/// A worker that panics *while holding the parent lock mid-optimizer-step*
/// can leave the parent parameters mid-update; `parking_lot` mutexes do not
/// poison, so the run continues from those parameters. This trades strict
/// transactionality for availability, which is the right call for a
/// stochastic learner.
pub fn explore_parallel_supervised<E>(
    env: &E,
    config: &ExplorerConfig,
    threads: usize,
    total_cycles: usize,
    seed: u64,
    supervision: SupervisionConfig,
) -> Result<SupervisedReport<E>, ExploreError<E>>
where
    E: Environment + Send + Sync,
    E::Action: Send + Sync,
{
    let parent = Mutex::new(match &config.net {
        Some(net_cfg) => PolicyAgent::new(net_cfg.clone(), config.train.clone(), seed),
        None => PolicyAgent::for_env(env, config.train.clone(), seed),
    });
    explore_supervised_inner(
        env,
        config,
        threads,
        total_cycles,
        seed,
        supervision,
        0,
        &parent,
    )
}

/// [`explore_parallel_supervised`] with periodic checkpointing: the run is
/// executed in *batches* of [`CheckpointConfig::every`] cycles, and after
/// each batch the parent network, its parameter generation, and the best
/// design so far are written atomically to [`CheckpointConfig::path`]; if
/// that file already exists the run resumes from it (restored parameters,
/// remaining batches only).
///
/// Each batch starts from a fresh search tree and evaluation cache with a
/// batch-derived RNG stream (`seed` for the first batch, a cycle-salted
/// mix thereafter), and workers join at batch boundaries. Because every
/// batch's inputs are a pure function of `(seed, cycles_done, checkpointed
/// parameters)`, a resumed run replays the remaining batches *identically*
/// to the uninterrupted run — best design, per-cycle results, and parameter
/// generation all match (asserted by `tests/checkpoint_resume.rs`). The
/// checkpoint's `best` field tracks the best design across all runs,
/// including ones before a restart.
pub fn explore_parallel_checkpointed<E>(
    env: &E,
    config: &ExplorerConfig,
    threads: usize,
    total_cycles: usize,
    seed: u64,
    supervision: SupervisionConfig,
    ckpt: &CheckpointConfig,
) -> Result<SupervisedReport<E>, ExploreError<E>>
where
    E: Environment + Send + Sync + Serialize + Deserialize,
    E::Action: Send + Sync,
{
    let mut rec = config.telemetry.recorder("checkpoint");
    let (resumed_from, restored_params, restored_learner, restored_best) =
        match ExploreCheckpoint::<E>::try_resume(&ckpt.path)? {
            Some((cp, source)) => {
                if source == CheckpointSource::Previous {
                    // The primary was torn or corrupt; we recovered from the
                    // rotated `.prev` generation.
                    rec.incr("checkpoint.recovered_prev", 1);
                }
                (
                    cp.cycles_done,
                    Some((cp.params, cp.param_generation)),
                    cp.learner,
                    cp.best,
                )
            }
            None => (0, None, None, None),
        };
    let every = ckpt.every.max(1);
    let mut parent_agent = match &config.net {
        Some(net_cfg) => PolicyAgent::new(net_cfg.clone(), config.train.clone(), seed),
        None => PolicyAgent::for_env(env, config.train.clone(), seed),
    };
    if let Some((params, generation)) = &restored_params {
        parent_agent.net_mut().load_params(params);
        parent_agent.set_param_generation(*generation);
    }
    if let Some(learner) = &restored_learner {
        // Without the Adam moments a resumed run restarts bias correction
        // and drifts from the uninterrupted one on its very next step.
        learner.restore_into(&mut parent_agent);
    }
    let parent = Mutex::new(parent_agent);

    let mut done = resumed_from;
    let mut best = restored_best;
    let mut designs: Vec<DesignResult<E>> = Vec::new();
    let mut train_history = Vec::new();
    let mut anomaly_log: Vec<AnomalyReport> = Vec::new();
    let mut sup_total = SupervisionReport::default();
    let mut cache_total = CacheStats::default();
    while done < total_cycles {
        let batch = every.min(total_cycles - done);
        // Batch RNG stream: plain `seed` for the first batch (so an
        // un-resumed single-batch run matches `explore_parallel_supervised`
        // exactly), cycle-salted thereafter.
        let batch_seed = if done == 0 {
            seed
        } else {
            seed ^ (done as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        let r = explore_supervised_inner(
            env,
            config,
            threads,
            batch,
            batch_seed,
            supervision,
            done,
            &parent,
        );
        match r {
            Ok(r) => {
                merge_supervision(&mut sup_total, &r.supervision);
                cache_total.merge(r.report.cache_stats);
                for d in &r.report.designs {
                    let better = d.successful
                        && best
                            .as_ref()
                            .is_none_or(|b| d.final_return > b.final_return);
                    if better {
                        best = Some(d.clone());
                    }
                }
                designs.extend(r.report.designs);
                train_history.extend(r.report.train_history);
                anomaly_log.extend(r.anomaly_log);
                done += batch;
            }
            // Partial-result errors: fold the failed batch into the
            // cumulative report so the caller sees the whole run so far,
            // not just the final batch.
            Err(ExploreError::WorkersExhausted { partial, .. }) => {
                merge_supervision(&mut sup_total, &partial.supervision);
                cache_total.merge(partial.report.cache_stats);
                designs.extend(partial.report.designs);
                train_history.extend(partial.report.train_history);
                anomaly_log.extend(partial.anomaly_log);
                designs.sort_by_key(|d| d.cycle);
                return Err(ExploreError::WorkersExhausted {
                    partial: Box::new(SupervisedReport {
                        report: ExploreReport {
                            cycles_run: designs.len(),
                            designs,
                            train_history,
                            cache_stats: cache_total,
                        },
                        supervision: sup_total,
                        resumed_from,
                        anomaly_log,
                    }),
                    requested: total_cycles,
                });
            }
            Err(ExploreError::Numerical {
                report, partial, ..
            }) => {
                merge_supervision(&mut sup_total, &partial.supervision);
                cache_total.merge(partial.report.cache_stats);
                designs.extend(partial.report.designs);
                train_history.extend(partial.report.train_history);
                anomaly_log.extend(partial.anomaly_log);
                designs.sort_by_key(|d| d.cycle);
                return Err(ExploreError::Numerical {
                    report,
                    partial: Box::new(SupervisedReport {
                        report: ExploreReport {
                            cycles_run: designs.len(),
                            designs,
                            train_history,
                            cache_stats: cache_total,
                        },
                        supervision: sup_total,
                        resumed_from,
                        anomaly_log,
                    }),
                    requested: total_cycles,
                });
            }
            Err(e) => return Err(e),
        }
        let timer = rec.timer();
        let (params, param_generation, learner) = {
            let mut p = parent.lock();
            (
                p.net_mut().param_snapshot(),
                p.param_generation(),
                crate::checkpoint::LearnerState::capture(&p),
            )
        };
        ExploreCheckpoint {
            cycles_done: done,
            seed,
            param_generation,
            params,
            learner: Some(learner),
            best: best.clone(),
        }
        .save(&ckpt.path)?;
        if rec.is_enabled() {
            rec.incr("checkpoint.saves", 1);
            rec.observe_timer("checkpoint.save_us", timer);
            rec.gauge("checkpoint.cycles_done", done as f64);
            rec.flush();
        }
    }
    Ok(SupervisedReport {
        report: ExploreReport {
            cycles_run: designs.len(),
            designs,
            train_history,
            cache_stats: cache_total,
        },
        supervision: sup_total,
        resumed_from,
        anomaly_log,
    })
}

/// Adds `batch`'s supervision accounting into `total`. The per-batch
/// anomaly logs are concatenated separately by the caller.
fn merge_supervision(total: &mut SupervisionReport, batch: &SupervisionReport) {
    total.panics += batch.panics;
    total.respawns += batch.respawns;
    total.workers_lost += batch.workers_lost;
    total.anomalies += batch.anomalies;
    total.rollbacks += batch.rollbacks;
    total.quarantined += batch.quarantined;
    total.stalls_detected += batch.stalls_detected;
    total.stalls_recovered += batch.stalls_recovered;
}

/// The shared body of the supervised drivers: one batch of `total_cycles`
/// cycles against a caller-owned `parent` parameter server, with a fresh
/// shared tree and evaluation cache. Designs are tagged with
/// `cycle_offset + local_cycle` so multi-batch callers
/// ([`explore_parallel_checkpointed`]) report global indices.
///
/// # Resilience mechanics
///
/// Per worker and cycle: the worker's RNG is cloned before each attempt;
/// a rejected update (see [`run_worker_cycle`]) restores the clone, backs
/// off exponentially, and retries — so a transient anomaly's recovery is
/// bit-identical to the never-faulted run. A worker whose *consecutive*
/// anomaly count exceeds [`crate::resilience::AnomalyPolicy::max_retries`]
/// is quarantined: its cycle is requeued for surviving workers and the
/// run ends in [`ExploreError::Numerical`] if nobody else can finish.
/// Worker panics take the same escrow: the RNG clone survives outside
/// `catch_unwind`, so the respawned incarnation resumes the exact stream
/// (falling back to the historical respawn-salted stream only if the
/// escrow is somehow empty). A watchdog thread (see
/// [`crate::resilience::WatchdogConfig`]) flags workers whose heartbeat
/// stops advancing and raises their interrupt flag, which cooperative
/// wait points honor; spurious flags only tick a counter and never change
/// results.
#[allow(clippy::too_many_arguments)]
fn explore_supervised_inner<E>(
    env: &E,
    config: &ExplorerConfig,
    threads: usize,
    total_cycles: usize,
    seed: u64,
    supervision: SupervisionConfig,
    cycle_offset: usize,
    parent: &Mutex<PolicyAgent>,
) -> Result<SupervisedReport<E>, ExploreError<E>>
where
    E: Environment + Send + Sync,
    E::Action: Send + Sync,
{
    if threads == 0 {
        return Err(ExploreError::ZeroThreads);
    }
    let watchdog = config.resilience.watchdog;
    let tree = SharedTree::new(Mcts::new(config.mcts));
    let cache = SharedEvalCache::new(EvalCache::new(config.eval_cache_capacity));
    let results: Mutex<Vec<DesignResult<E>>> = Mutex::new(Vec::new());
    let stats_log: Mutex<Vec<TrainStats>> = Mutex::new(Vec::new());
    let cycle_counter = Mutex::new(0usize);
    // Cycles reclaimed from panicked or quarantined workers, served before
    // fresh ones.
    let lost: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let anomaly_log: Mutex<Vec<AnomalyReport>> = Mutex::new(Vec::new());
    let panics = AtomicU64::new(0);
    let respawns = AtomicU64::new(0);
    let workers_lost = AtomicUsize::new(0);
    let anomalies = AtomicU64::new(0);
    let rollbacks = AtomicU64::new(0);
    let quarantined = AtomicUsize::new(0);
    let stalls_detected = AtomicU64::new(0);
    let stalls_recovered = AtomicU64::new(0);
    // Watchdog wiring: one heartbeat/interrupt/liveness slot per worker.
    let heartbeats: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let interrupts: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();
    let alive: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(true)).collect();
    let run_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let monitor = if watchdog.enabled {
            let heartbeats = &heartbeats;
            let interrupts = &interrupts;
            let alive = &alive;
            let run_done = &run_done;
            let stalls_detected = &stalls_detected;
            Some(scope.spawn(move || {
                let mut last_beat: Vec<u64> = heartbeats
                    .iter()
                    .map(|h| h.load(Ordering::Relaxed))
                    .collect();
                let mut last_change = vec![Instant::now(); threads];
                let mut flagged = vec![false; threads];
                while !run_done.load(Ordering::Acquire) {
                    std::thread::sleep(watchdog.poll);
                    for t in 0..threads {
                        if !alive[t].load(Ordering::Acquire) {
                            continue;
                        }
                        let beat = heartbeats[t].load(Ordering::Relaxed);
                        if beat != last_beat[t] {
                            last_beat[t] = beat;
                            last_change[t] = Instant::now();
                            flagged[t] = false;
                        } else if !flagged[t] && last_change[t].elapsed() >= watchdog.deadline {
                            // Stalled: raise the interrupt and re-arm only
                            // once the heartbeat moves again.
                            stalls_detected.fetch_add(1, Ordering::Relaxed);
                            interrupts[t].store(true, Ordering::Release);
                            flagged[t] = true;
                        }
                    }
                }
            }))
        } else {
            None
        };
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let mut tree = tree.clone();
                let mut cache = cache.clone();
                let results = &results;
                let stats_log = &stats_log;
                let cycle_counter = &cycle_counter;
                let lost = &lost;
                let anomaly_log = &anomaly_log;
                let panics = &panics;
                let respawns = &respawns;
                let workers_lost = &workers_lost;
                let anomalies = &anomalies;
                let rollbacks = &rollbacks;
                let quarantined = &quarantined;
                let stalls_recovered = &stalls_recovered;
                let heartbeat = &heartbeats[t];
                let interrupt = &interrupts[t];
                let alive = &alive[t];
                let proto = env.clone();
                let config = config.clone();
                scope.spawn(move || {
                    let claim = || -> Option<usize> {
                        if let Some(c) = lost.lock().pop() {
                            return Some(c);
                        }
                        let mut c = cycle_counter.lock();
                        if *c >= total_cycles {
                            return None;
                        }
                        let mine = *c;
                        *c += 1;
                        Some(mine)
                    };
                    // In-flight cycle of the current incarnation, visible
                    // to the supervisor below so a panic or quarantine can
                    // requeue it.
                    let in_flight: Cell<Option<usize>> = Cell::new(None);
                    // Escrow: the worker RNG plus the local replica's
                    // batch-norm running statistics, updated at every cycle
                    // boundary and read by the next incarnation — so a
                    // respawn resumes the exact stream *and* forward-pass
                    // state the panicked incarnation was on. (Parameter
                    // snapshots deliberately exclude running statistics, so
                    // without the escrow a respawned replica would evaluate
                    // states slightly differently.)
                    let escrow: Cell<Option<(StdRng, Vec<f32>)>> = Cell::new(None);
                    let policy = config.resilience.anomaly;
                    let chaos = config.resilience.chaos.clone();
                    let mut incarnation = 0usize;
                    let mut rec = worker_recorder(&config, t);
                    loop {
                        // Fresh incarnation state: environment clone, local
                        // DNN replica, escrowed (or respawn-salted) RNG.
                        let mut env = proto.clone();
                        let mut local = match &config.net {
                            Some(net_cfg) => {
                                PolicyAgent::new(net_cfg.clone(), config.train.clone(), seed)
                            }
                            None => PolicyAgent::for_env(&env, config.train.clone(), seed),
                        };
                        let mut rng = match escrow.take() {
                            Some((rng, norm)) => {
                                local.net_mut().load_norm_snapshot(&norm);
                                rng
                            }
                            None => worker_rng(seed, t, threads, incarnation),
                        };
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| -> bool {
                            let mut consecutive = 0usize;
                            while let Some(cycle) = claim() {
                                in_flight.set(Some(cycle));
                                heartbeat.fetch_add(1, Ordering::Relaxed);
                                if interrupt.swap(false, Ordering::AcqRel) {
                                    // Spurious (or late) watchdog flag:
                                    // consume it and carry on — results are
                                    // unaffected by construction.
                                    stalls_recovered.fetch_add(1, Ordering::Relaxed);
                                }
                                escrow.set(Some((rng.clone(), local.net_mut().norm_snapshot())));
                                if let Some(injector) = &chaos {
                                    if let StartOutcome::Stalled { interrupted } =
                                        injector.on_cycle_start(cycle_offset + cycle, interrupt)
                                    {
                                        if interrupted {
                                            stalls_recovered.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                loop {
                                    // Transactional attempt state: worker
                                    // RNG and the local replica's batch-norm
                                    // running statistics (which the training
                                    // forward advances even when the update
                                    // is later rejected).
                                    let attempt_rng = rng.clone();
                                    let attempt_norm =
                                        policy.enabled.then(|| local.net_mut().norm_snapshot());
                                    let attempt = run_worker_cycle(
                                        &mut env,
                                        &mut local,
                                        &mut tree,
                                        &mut cache,
                                        parent,
                                        &config,
                                        &mut rng,
                                        cycle_offset + cycle,
                                        results,
                                        stats_log,
                                        &mut rec,
                                        &policy,
                                        chaos.as_ref(),
                                    );
                                    match attempt {
                                        Ok(()) => {
                                            consecutive = 0;
                                            break;
                                        }
                                        Err(kind) => {
                                            // Rewind the stream and forward
                                            // state so the retry replays the
                                            // clean cycle bit-identically.
                                            rng = attempt_rng;
                                            if let Some(norm) = &attempt_norm {
                                                local.net_mut().load_norm_snapshot(norm);
                                            }
                                            consecutive += 1;
                                            anomalies.fetch_add(1, Ordering::Relaxed);
                                            if kind.rolled_back() {
                                                rollbacks.fetch_add(1, Ordering::Relaxed);
                                            }
                                            rec.incr(kind.counter(), 1);
                                            anomaly_log.lock().push(AnomalyReport {
                                                kind,
                                                worker: t,
                                                cycle: cycle_offset + cycle,
                                                consecutive,
                                            });
                                            if consecutive > policy.max_retries {
                                                return false; // quarantine
                                            }
                                            let backoff = policy.backoff(consecutive);
                                            if !backoff.is_zero() {
                                                std::thread::sleep(backoff);
                                            }
                                            heartbeat.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                in_flight.set(None);
                                escrow.set(Some((rng.clone(), local.net_mut().norm_snapshot())));
                            }
                            true
                        }));
                        match outcome {
                            Ok(true) => break,
                            Ok(false) => {
                                // Quarantined: hand the cycle back and stop
                                // claiming work.
                                quarantined.fetch_add(1, Ordering::Relaxed);
                                if let Some(cycle) = in_flight.take() {
                                    lost.lock().push(cycle);
                                }
                                break;
                            }
                            Err(_) => {
                                panics.fetch_add(1, Ordering::Relaxed);
                                if let Some(cycle) = in_flight.take() {
                                    lost.lock().push(cycle);
                                }
                                incarnation += 1;
                                if incarnation > supervision.max_respawns_per_worker {
                                    workers_lost.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                respawns.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    alive.store(false, Ordering::Release);
                    drop(rlnoc_nn::instrument::take());
                })
            })
            .collect();
        // Join workers first, then release the monitor: workers never
        // unwind (everything runs under catch_unwind), so these joins
        // cannot hang on a propagating panic.
        for w in workers {
            let _ = w.join();
        }
        run_done.store(true, Ordering::Release);
        if let Some(m) = monitor {
            let _ = m.join();
        }
    });

    let mut designs = std::mem::take(&mut *results.lock());
    designs.sort_by_key(|d| d.cycle);
    let train_history = std::mem::take(&mut *stats_log.lock());
    let anomaly_log = std::mem::take(&mut *anomaly_log.lock());
    let cache_stats = cache.stats();
    let completed = designs.len();
    let supervision_report = SupervisionReport {
        panics: panics.load(Ordering::Relaxed),
        respawns: respawns.load(Ordering::Relaxed),
        workers_lost: workers_lost.load(Ordering::Relaxed),
        anomalies: anomalies.load(Ordering::Relaxed),
        rollbacks: rollbacks.load(Ordering::Relaxed),
        quarantined: quarantined.load(Ordering::Relaxed),
        stalls_detected: stalls_detected.load(Ordering::Relaxed),
        stalls_recovered: stalls_recovered.load(Ordering::Relaxed),
    };
    publish_run_summary(
        config,
        "supervisor",
        &tree,
        cache_stats,
        parent.lock().param_generation(),
        Some(&supervision_report),
    );
    let last_anomaly = anomaly_log.last().copied();
    let out = SupervisedReport {
        report: ExploreReport {
            cycles_run: completed,
            designs,
            train_history,
            cache_stats,
        },
        supervision: supervision_report,
        resumed_from: cycle_offset,
        anomaly_log,
    };
    if completed < total_cycles {
        if supervision_report.quarantined > 0 {
            let report = last_anomaly.expect("quarantine implies a recorded anomaly");
            return Err(ExploreError::Numerical {
                report,
                partial: Box::new(out),
                requested: cycle_offset + total_cycles,
            });
        }
        return Err(ExploreError::WorkersExhausted {
            partial: Box::new(out),
            requested: cycle_offset + total_cycles,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routerless::{LoopAction, RouterlessEnv};
    use rlnoc_topology::Grid;
    use std::sync::atomic::AtomicUsize;

    fn quick_config() -> ExplorerConfig {
        let mut c = ExplorerConfig::fast();
        c.max_steps = 30;
        c
    }

    #[test]
    fn parallel_runs_requested_cycles() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let report = explore_parallel(&env, &quick_config(), 3, 6, 9);
        assert_eq!(report.cycles_run, 6);
        assert_eq!(report.designs.len(), 6);
        // Cycles are globally unique and complete.
        let mut cycles: Vec<_> = report.designs.iter().map(|d| d.cycle).collect();
        cycles.sort_unstable();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn parallel_single_thread_works() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let report = explore_parallel(&env, &quick_config(), 1, 2, 1);
        assert_eq!(report.cycles_run, 2);
    }

    #[test]
    fn parallel_finds_valid_designs() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 6);
        let report = explore_parallel(&env, &quick_config(), 2, 6, 5);
        assert!(
            report.successful_count() > 0,
            "parallel search should find connected 3x3 designs"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let _ = explore_parallel(&env, &quick_config(), 0, 1, 0);
    }

    #[test]
    fn supervised_zero_threads_is_typed_error() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let err = explore_parallel_supervised(
            &env,
            &quick_config(),
            0,
            1,
            0,
            SupervisionConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::ZeroThreads));
    }

    fn outcomes(report: &ExploreReport<RouterlessEnv>) -> Vec<(usize, usize, bool, f64)> {
        report
            .designs
            .iter()
            .map(|d| (d.cycle, d.steps, d.successful, d.final_return))
            .collect()
    }

    #[test]
    fn cache_does_not_change_single_thread_results() {
        // With one worker the exploration is fully deterministic, and a
        // cached evaluation is bit-identical to a fresh forward (entries
        // are keyed on the parameter generation), so enabling the cache
        // must not change the search trajectory at all.
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let mut with_cache = quick_config();
        with_cache.eval_cache_capacity = 4096;
        let mut without = quick_config();
        without.eval_cache_capacity = 0;

        let cached = explore_parallel(&env, &with_cache, 1, 3, 13);
        let uncached = explore_parallel(&env, &without, 1, 3, 13);
        assert_eq!(outcomes(&cached), outcomes(&uncached));
        assert!(
            cached.cache_stats.hits > 0,
            "expand + initial sampling of the same root state must hit"
        );
        assert_eq!(uncached.cache_stats, crate::cache::CacheStats::default());
    }

    #[test]
    fn results_invariant_to_matmul_thread_count() {
        // An 8x8 NoC (64x64 state matrix) pushes the residual-block GEMMs
        // past the parallel threshold, so this exercises the row-banded
        // multi-threaded matmul end to end: the search outcome must be
        // bit-identical regardless of the kernel's thread budget.
        let env = RouterlessEnv::new(Grid::square(8).unwrap(), 14);
        let mut cfg = quick_config();
        cfg.max_steps = 4;
        cfg.complete_designs = false;
        let run = |mm_threads: usize| {
            let previous = rlnoc_nn::kernels::matmul_threads();
            rlnoc_nn::kernels::set_matmul_threads(mm_threads);
            let report = explore_parallel(&env, &cfg, 1, 2, 21);
            rlnoc_nn::kernels::set_matmul_threads(previous);
            outcomes(&report)
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn try_into_inner_reports_outstanding_handles() {
        let tree: SharedTree<LoopAction> = SharedTree::new(Mcts::new(Default::default()));
        let extra = tree.clone();
        let err = tree.try_into_inner().unwrap_err();
        assert_eq!(err.resource, "search tree");
        assert_eq!(err.outstanding, 1);
        // The data survives in the remaining handle.
        assert!(extra.try_into_inner().is_ok());

        let cache = SharedEvalCache::new(EvalCache::new(16));
        let extra = cache.clone();
        assert!(cache.try_into_inner().is_err());
        assert!(extra.try_into_inner().is_ok());
    }

    /// An environment whose `reset` panics while the shared fuse holds
    /// charges — the deliberate fault injector for supervision tests.
    #[derive(Debug, Clone)]
    struct FaultyEnv {
        inner: RouterlessEnv,
        remaining_panics: Arc<AtomicUsize>,
    }

    impl FaultyEnv {
        fn new(inner: RouterlessEnv, panics: usize) -> Self {
            FaultyEnv {
                inner,
                remaining_panics: Arc::new(AtomicUsize::new(panics)),
            }
        }
    }

    impl Environment for FaultyEnv {
        type Action = LoopAction;
        fn reset(&mut self) {
            let fired = self
                .remaining_panics
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok();
            if fired {
                panic!("injected worker fault");
            }
            self.inner.reset();
        }
        fn state_key(&self) -> u64 {
            self.inner.state_key()
        }
        fn state_tensor(&self) -> rlnoc_nn::Tensor {
            self.inner.state_tensor()
        }
        fn state_side(&self) -> usize {
            self.inner.state_side()
        }
        fn apply(&mut self, action: LoopAction) -> f64 {
            self.inner.apply(action)
        }
        fn is_terminal(&self) -> bool {
            self.inner.is_terminal()
        }
        fn final_return(&self) -> f64 {
            self.inner.final_return()
        }
        fn legal_actions(&self) -> Vec<LoopAction> {
            self.inner.legal_actions()
        }
        fn head_cardinality(&self) -> usize {
            self.inner.head_cardinality()
        }
        fn encode_action(&self, action: LoopAction) -> ([usize; 4], bool) {
            self.inner.encode_action(action)
        }
        fn decode_action(&self, coords: [usize; 4], flag: bool) -> LoopAction {
            self.inner.decode_action(coords, flag)
        }
        fn is_successful(&self) -> bool {
            self.inner.is_successful()
        }
        fn greedy_action(&self) -> Option<LoopAction> {
            self.inner.greedy_action()
        }
        fn completion_action(&self) -> Option<LoopAction> {
            self.inner.completion_action()
        }
    }

    #[test]
    fn supervision_recovers_from_worker_panic() {
        // One charge on the fuse: exactly one worker incarnation panics in
        // `reset`, is respawned, and the run still completes every cycle.
        let env = FaultyEnv::new(RouterlessEnv::new(Grid::square(3).unwrap(), 4), 1);
        let out = explore_parallel_supervised(
            &env,
            &quick_config(),
            2,
            6,
            9,
            SupervisionConfig::default(),
        )
        .expect("supervision must absorb a single panic");
        assert_eq!(out.report.cycles_run, 6);
        let mut cycles: Vec<_> = out.report.designs.iter().map(|d| d.cycle).collect();
        cycles.sort_unstable();
        assert_eq!(
            cycles,
            vec![0, 1, 2, 3, 4, 5],
            "lost cycle must be requeued"
        );
        assert_eq!(out.supervision.panics, 1);
        assert_eq!(out.supervision.respawns, 1);
        assert_eq!(out.supervision.workers_lost, 0);
    }

    #[test]
    fn supervision_returns_partial_results_when_workers_exhausted() {
        // An inexhaustible fuse: every incarnation panics immediately, so
        // the single worker burns its respawn budget and the run returns a
        // typed error with (empty) partial results instead of aborting.
        let env = FaultyEnv::new(RouterlessEnv::new(Grid::square(3).unwrap(), 4), usize::MAX);
        let supervision = SupervisionConfig {
            max_respawns_per_worker: 2,
        };
        let err =
            explore_parallel_supervised(&env, &quick_config(), 1, 4, 9, supervision).unwrap_err();
        match err {
            ExploreError::WorkersExhausted { partial, requested } => {
                assert_eq!(requested, 4);
                assert_eq!(partial.report.cycles_run, 0);
                assert_eq!(partial.supervision.panics, 3, "initial run + 2 respawns");
                assert_eq!(partial.supervision.workers_lost, 1);
            }
            other => panic!("expected WorkersExhausted, got {other:?}"),
        }
    }

    #[test]
    fn parallel_checkpointed_resumes_and_completes() {
        let path =
            std::env::temp_dir().join(format!("rlnoc_parallel_ckpt_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ckpt = CheckpointConfig::new(&path, 2);
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);

        // First "process" runs 3 of 6 cycles, then dies (we just ask for 3).
        let first = explore_parallel_checkpointed(
            &env,
            &quick_config(),
            2,
            3,
            17,
            SupervisionConfig::default(),
            &ckpt,
        )
        .unwrap();
        assert_eq!(first.resumed_from, 0);
        assert_eq!(first.report.cycles_run, 3);
        let cp = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap();
        assert_eq!(cp.cycles_done, 3, "final save reflects exact completion");

        // Second process resumes and finishes the remaining cycles.
        let second = explore_parallel_checkpointed(
            &env,
            &quick_config(),
            2,
            6,
            17,
            SupervisionConfig::default(),
            &ckpt,
        )
        .unwrap();
        assert_eq!(second.resumed_from, 3);
        assert_eq!(second.report.cycles_run, 3);
        let cycles: Vec<_> = second.report.designs.iter().map(|d| d.cycle).collect();
        assert!(
            cycles.iter().all(|&c| (3..6).contains(&c)),
            "resumed cycles carry global indices, got {cycles:?}"
        );
        let cp = ExploreCheckpoint::<RouterlessEnv>::load(&path).unwrap();
        assert_eq!(cp.cycles_done, 6);
        assert!(
            cp.best.is_some(),
            "a 3x3 run at cap 4 finds at least one successful design"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn supervised_without_faults_matches_unsupervised() {
        // Incarnation 0 reuses the historical worker RNG stream, so a
        // panic-free single-thread supervised run must explore identically.
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let plain = explore_parallel(&env, &quick_config(), 1, 3, 13);
        let supervised = explore_parallel_supervised(
            &env,
            &quick_config(),
            1,
            3,
            13,
            SupervisionConfig::default(),
        )
        .unwrap();
        assert_eq!(outcomes(&plain), outcomes(&supervised.report));
        assert_eq!(supervised.supervision, SupervisionReport::default());
    }
}
