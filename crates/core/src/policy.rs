//! The learning agent: a [`PolicyValueNet`] plus the advantage actor-critic
//! update of the paper's Equations 15–20.

use crate::env::Environment;
use crate::resilience::{AnomalyKind, AnomalyPolicy, NormSentinel};
use rand::prelude::*;
use rand::rngs::StdRng;
use rlnoc_nn::loss;
use rlnoc_nn::net::PolicyValueGrad;
use rlnoc_nn::optim::{clip_global_norm, Adam};
use rlnoc_nn::{PolicyValueConfig, PolicyValueNet, PolicyValueOutput, Tensor};

/// Hyperparameters for actor-critic training.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Discount factor γ (≤ 1) of Equation 2.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Weight of the value-head loss relative to the policy loss (the `c`
    /// constant of Equation 20).
    pub value_coeff: f32,
    /// Global gradient-norm clip applied before each optimizer step.
    pub clip_norm: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            gamma: 0.95,
            learning_rate: 1e-3,
            value_coeff: 0.5,
            clip_norm: 5.0,
        }
    }
}

/// One environment transition recorded during an exploration cycle.
#[derive(Debug, Clone)]
pub struct Step<A> {
    /// State tensor *before* the action.
    pub state: Tensor,
    /// The action taken.
    pub action: A,
    /// Immediate reward received.
    pub reward: f64,
}

/// A full exploration cycle's trajectory.
#[derive(Debug, Clone)]
pub struct Episode<A> {
    /// The recorded transitions, in order.
    pub steps: Vec<Step<A>>,
    /// The terminal bonus (mesh hop count − achieved hop count for
    /// routerless NoCs), added to the last step's reward when computing
    /// returns.
    pub final_return: f64,
}

impl<A> Episode<A> {
    /// Discounted returns `G_t = Σ_{t′ ≥ t} γ^{t′−t} r_{t′}`, with
    /// [`Episode::final_return`] folded into the last reward (Equation 16's
    /// future-trajectory term).
    pub fn returns(&self, gamma: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.steps.len()];
        let mut run = 0.0;
        for (i, step) in self.steps.iter().enumerate().rev() {
            let r = if i + 1 == self.steps.len() {
                step.reward + self.final_return
            } else {
                step.reward
            };
            run = r + gamma * run;
            out[i] = run;
        }
        out
    }
}

/// Summary statistics from one training update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean policy loss across steps.
    pub policy_loss: f32,
    /// Mean value loss across steps.
    pub value_loss: f32,
    /// Pre-clip global gradient norm.
    pub grad_norm: f32,
    /// Mean coordinate-head policy entropy (nats per head). Diagnostic
    /// only — computed from the forward-pass logits without touching the
    /// gradients, so recording it cannot perturb training.
    pub entropy: f32,
    /// Number of steps trained on.
    pub steps: usize,
}

/// The DNN-backed agent: action sampling, prior/value evaluation for MCTS,
/// and actor-critic training.
#[derive(Debug)]
pub struct PolicyAgent {
    net: PolicyValueNet,
    optim: Adam,
    config: TrainConfig,
    /// Bumped on every optimizer step; evaluation caches key on
    /// `(state_key, generation)` so stale entries are never served.
    generation: u64,
    /// EWMA tracker over accepted pre-clip gradient norms, feeding the
    /// exploding-norm check of [`PolicyAgent::step_optimizer_guarded`].
    sentinel: NormSentinel,
}

/// Everything [`PolicyAgent::step_optimizer_guarded`] can mutate, captured
/// before the step so a post-step anomaly can be rolled back exactly:
/// parameters, Adam moments, the generation counter, and the norm
/// sentinel.
#[derive(Debug, Clone)]
pub struct StepSnapshot {
    params: Vec<Tensor>,
    optim: Adam,
    generation: u64,
    sentinel: NormSentinel,
}

/// A policy evaluation at one state: per-head probability tables, the
/// clockwise probability, and the value estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// `probs[h]` is the softmax distribution of head `h` (h = x1, y1, x2,
    /// y2), each of length `N`.
    pub probs: [Vec<f32>; 4],
    /// Probability that the direction flag is set (clockwise).
    pub p_clockwise: f32,
    /// Value-head estimate of the discounted return from this state.
    pub value: f64,
}

impl Evaluation {
    /// The prior probability π(a; s) of a specific action: the product of
    /// its four head probabilities and the direction probability.
    pub fn action_prior(&self, coords: [usize; 4], flag: bool) -> f32 {
        let mut p = if flag {
            self.p_clockwise
        } else {
            1.0 - self.p_clockwise
        };
        for (h, &c) in coords.iter().enumerate() {
            p *= self.probs[h].get(c).copied().unwrap_or(0.0);
        }
        p
    }
}

impl PolicyAgent {
    /// Creates an agent whose network has head cardinality `n` and a state
    /// input of `side × side`.
    pub fn new(net_config: PolicyValueConfig, train_config: TrainConfig, seed: u64) -> Self {
        let lr = train_config.learning_rate;
        PolicyAgent {
            net: PolicyValueNet::new(net_config, seed),
            optim: Adam::new(lr),
            config: train_config,
            generation: 0,
            sentinel: NormSentinel::default(),
        }
    }

    /// Convenience constructor sized for `env`.
    pub fn for_env<E: Environment>(env: &E, train_config: TrainConfig, seed: u64) -> Self {
        let mut cfg = PolicyValueConfig::small(env.head_cardinality());
        cfg.input_side = env.state_side();
        PolicyAgent::new(cfg, train_config, seed)
    }

    /// The training configuration.
    pub fn train_config(&self) -> &TrainConfig {
        &self.config
    }

    /// Immutable access to the underlying network.
    pub fn net(&self) -> &PolicyValueNet {
        &self.net
    }

    /// Mutable access to the underlying network (parameter exchange in the
    /// multi-threaded framework).
    pub fn net_mut(&mut self) -> &mut PolicyValueNet {
        &mut self.net
    }

    /// The current parameter generation (bumped by
    /// [`PolicyAgent::step_optimizer`]). Evaluation caches key on this to
    /// invalidate entries whenever the network changes.
    pub fn param_generation(&self) -> u64 {
        self.generation
    }

    /// Overrides the parameter generation. Used by the multi-threaded
    /// framework when a child replica loads the parent's parameter
    /// snapshot: the child's cached evaluations must be tagged with the
    /// parent's generation, not the child's local step count.
    pub fn set_param_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Evaluates the policy and value heads at `state` (inference mode).
    pub fn evaluate(&mut self, state: &Tensor) -> Evaluation {
        let out = self.net.forward(state, false);
        let mut evals = self.split_output(&out);
        assert_eq!(evals.len(), 1, "evaluate expects a single-sample state");
        evals.remove(0)
    }

    /// Evaluates a batch of single-sample states with **one** network
    /// forward, returning one [`Evaluation`] per state in order.
    ///
    /// Inference-mode batch normalization uses running statistics, so each
    /// sample is evaluated independently: this is numerically identical to
    /// calling [`PolicyAgent::evaluate`] per state, just one GEMM-friendly
    /// pass instead of `batch` small ones.
    ///
    /// # Panics
    ///
    /// Panics if any state is not a single `side × side` sample.
    pub fn evaluate_batch(&mut self, states: &[Tensor]) -> Vec<Evaluation> {
        if states.is_empty() {
            return Vec::new();
        }
        let side = self.net.config().input_side;
        let mut data = Vec::with_capacity(states.len() * side * side);
        for s in states {
            assert_eq!(
                s.as_slice().len(),
                side * side,
                "evaluate_batch expects [1, 1, {side}, {side}] states"
            );
            data.extend_from_slice(s.as_slice());
        }
        let batch = Tensor::from_vec(data, &[states.len(), 1, side, side]).expect("sized above");
        let out = self.net.forward(&batch, false);
        self.split_output(&out)
    }

    /// Converts raw network outputs into per-sample [`Evaluation`]s.
    fn split_output(&self, out: &PolicyValueOutput) -> Vec<Evaluation> {
        let n = self.net.config().n;
        let batch = out.value.shape()[0];
        let logits = out.coord_logits.as_slice();
        let dirs = out.dir.as_slice();
        let values = out.value.as_slice();
        (0..batch)
            .map(|i| {
                let l = &logits[i * 4 * n..(i + 1) * 4 * n];
                Evaluation {
                    probs: [
                        loss::softmax(&l[0..n]),
                        loss::softmax(&l[n..2 * n]),
                        loss::softmax(&l[2 * n..3 * n]),
                        loss::softmax(&l[3 * n..4 * n]),
                    ],
                    p_clockwise: (1.0 + dirs[i]) / 2.0,
                    value: f64::from(values[i]),
                }
            })
            .collect()
    }

    /// Samples an action from the policy at the environment's current
    /// state. The sample may be invalid or illegal — the paper relies on
    /// the reward taxonomy, not masking, to teach constraints.
    pub fn sample_action<E: Environment>(&mut self, env: &E, rng: &mut StdRng) -> E::Action {
        let eval = self.evaluate(&env.state_tensor());
        Self::sample_from_eval(&eval, env, rng)
    }

    /// Samples an action from an existing [`Evaluation`] of the
    /// environment's current state — the cached-evaluation path of the
    /// explorer, which avoids re-running the network when the evaluation is
    /// already known.
    pub fn sample_from_eval<E: Environment>(
        eval: &Evaluation,
        env: &E,
        rng: &mut StdRng,
    ) -> E::Action {
        let mut coords = [0usize; 4];
        for (h, c) in coords.iter_mut().enumerate() {
            *c = sample_categorical(&eval.probs[h], rng);
        }
        let flag = rng.gen_bool(f64::from(eval.p_clockwise.clamp(0.0, 1.0)));
        env.decode_action(coords, flag)
    }

    /// Accumulates actor-critic gradients for `episode` into the network
    /// (without stepping the optimizer). Returns the per-episode stats.
    ///
    /// This is the child-thread side of the paper's §4.6 exchange; single
    /// threaded training calls [`PolicyAgent::train_episode`] which also
    /// steps.
    ///
    /// The whole trajectory is stacked into a single `[steps, 1, side,
    /// side]` batch: one forward and one backward per episode instead of
    /// one per step, so the heavy kernels run at GEMM-friendly batch
    /// sizes. Parameter gradients sum over the batch exactly as the old
    /// per-step accumulation did; the only numerical difference is that
    /// train-mode batch normalization now normalizes over the episode
    /// batch rather than each step alone.
    pub fn accumulate_episode<E: Environment>(
        &mut self,
        env: &E,
        episode: &Episode<E::Action>,
    ) -> TrainStats {
        let steps = episode.steps.len();
        if steps == 0 {
            return TrainStats {
                policy_loss: 0.0,
                value_loss: 0.0,
                grad_norm: 0.0,
                entropy: 0.0,
                steps: 0,
            };
        }
        let returns = episode.returns(self.config.gamma);
        let n = self.net.config().n;
        let side = self.net.config().input_side;

        let mut data = Vec::with_capacity(steps * side * side);
        for step in &episode.steps {
            assert_eq!(
                step.state.as_slice().len(),
                side * side,
                "episode states must be single {side}x{side} samples"
            );
            data.extend_from_slice(step.state.as_slice());
        }
        let batch = Tensor::from_vec(data, &[steps, 1, side, side]).expect("sized above");
        let out = self.net.forward(&batch, true);

        let logits = out.coord_logits.as_slice();
        let dirs = out.dir.as_slice();
        let values = out.value.as_slice();
        let mut coord_grad = vec![0.0f32; steps * 4 * n];
        let mut dir_grad = vec![0.0f32; steps];
        let mut value_grad = vec![0.0f32; steps];
        let mut policy_loss = 0.0f32;
        let mut value_loss = 0.0f32;
        let mut entropy = 0.0f32;
        for (i, (step, &g_t)) in episode.steps.iter().zip(&returns).enumerate() {
            let v = values[i];
            let advantage = (g_t - f64::from(v)) as f32;
            let (coords, flag) = env.encode_action(step.action);
            for (h, &coord) in coords.iter().enumerate() {
                let base = (i * 4 + h) * n;
                entropy += softmax_entropy(&logits[base..base + n]);
                let (l, g) = loss::policy_head_grad(&logits[base..base + n], coord, advantage);
                policy_loss += l;
                coord_grad[base..base + n].copy_from_slice(&g);
            }
            let (dl, dg) = loss::direction_head_grad(dirs[i], flag, advantage);
            policy_loss += dl;
            dir_grad[i] = dg;
            let (vl, vg) = loss::value_head_grad(v, g_t as f32);
            value_loss += vl;
            value_grad[i] = vg * self.config.value_coeff;
        }

        self.net.backward(&PolicyValueGrad {
            coord_logits: Tensor::from_vec(coord_grad, &[steps, 4, n]).expect("4N logits"),
            dir: Tensor::from_vec(dir_grad, &[steps, 1]).expect("batch scalars"),
            value: Tensor::from_vec(value_grad, &[steps, 1]).expect("batch scalars"),
        });
        TrainStats {
            policy_loss: policy_loss / steps as f32,
            value_loss: value_loss / steps as f32,
            grad_norm: 0.0,
            entropy: entropy / (steps * 4) as f32,
            steps,
        }
    }

    /// Clips accumulated gradients and applies one optimizer step,
    /// returning the pre-clip gradient norm.
    pub fn step_optimizer(&mut self) -> f32 {
        let clip = self.config.clip_norm;
        let mut params = self.net.params_mut();
        let norm = clip_global_norm(&mut params, clip);
        self.optim.step(&mut params);
        self.generation += 1;
        norm
    }

    /// The gradient-norm sentinel (read-only; stepped by
    /// [`PolicyAgent::step_optimizer_guarded`]).
    pub fn sentinel(&self) -> &NormSentinel {
        &self.sentinel
    }

    /// Adam's step count and moment estimates plus the norm sentinel, for
    /// checkpointing. Parameters are snapshotted separately; without the
    /// moments a resumed run restarts bias correction and every subsequent
    /// step diverges from the uninterrupted run.
    pub fn optimizer_snapshot(&self) -> (u64, Vec<Tensor>, Vec<Tensor>, NormSentinel) {
        let (t, m, v) = self.optim.state();
        (t, m.to_vec(), v.to_vec(), self.sentinel)
    }

    /// Restores state captured by [`PolicyAgent::optimizer_snapshot`].
    pub fn restore_optimizer(
        &mut self,
        t: u64,
        m: Vec<Tensor>,
        v: Vec<Tensor>,
        sentinel: NormSentinel,
    ) {
        self.optim.restore_state(t, m, v);
        self.sentinel = sentinel;
    }

    /// Captures everything a following optimizer step can mutate, for
    /// anomaly rollback via [`PolicyAgent::restore_step_state`].
    pub fn capture_step_state(&mut self) -> StepSnapshot {
        StepSnapshot {
            params: self.net.param_snapshot(),
            optim: self.optim.clone(),
            generation: self.generation,
            sentinel: self.sentinel,
        }
    }

    /// Rolls the agent back to a [`StepSnapshot`], discarding the effects
    /// of any step applied since it was captured. Accumulated gradients are
    /// zeroed: the update that produced them is being abandoned.
    pub fn restore_step_state(&mut self, snapshot: &StepSnapshot) {
        self.net.load_params(&snapshot.params);
        self.net.zero_grad();
        self.optim = snapshot.optim.clone();
        self.generation = snapshot.generation;
        self.sentinel = snapshot.sentinel;
    }

    /// Index of the first parameter tensor holding a NaN/Inf, if any — the
    /// post-step verification of the resilience layer.
    pub fn first_non_finite_param(&mut self) -> Option<usize> {
        self.net
            .params_mut()
            .iter()
            .position(|p| !p.value.all_finite())
    }

    /// [`PolicyAgent::step_optimizer`] with the resilience layer's
    /// pre-step checks: a non-finite global gradient norm or a norm beyond
    /// the sentinel's EWMA threshold rejects the update — gradients are
    /// zeroed, parameters/optimizer/generation stay untouched — and the
    /// anomaly is returned as `Err`. Accepted steps feed the sentinel and
    /// behave exactly like the unguarded step. With `policy.enabled` false
    /// this *is* the unguarded step (the sentinel is not even fed), so a
    /// disabled guard is bit-identical to pre-resilience behavior.
    pub fn step_optimizer_guarded(&mut self, policy: &AnomalyPolicy) -> Result<f32, AnomalyKind> {
        if !policy.enabled {
            return Ok(self.step_optimizer());
        }
        let clip = self.config.clip_norm;
        let mut params = self.net.params_mut();
        let norm = clip_global_norm(&mut params, clip);
        if !norm.is_finite() {
            self.net.zero_grad();
            return Err(AnomalyKind::NonFiniteGradNorm { norm });
        }
        if let Some(threshold) = self.sentinel.threshold(policy) {
            if f64::from(norm) > threshold {
                self.net.zero_grad();
                return Err(AnomalyKind::ExplodingGradNorm {
                    norm,
                    threshold: threshold as f32,
                });
            }
        }
        let mut params = self.net.params_mut();
        self.optim.step(&mut params);
        self.generation += 1;
        self.sentinel.observe(f64::from(norm), policy);
        Ok(norm)
    }

    /// Full single-threaded update: accumulate `episode`'s gradients, clip,
    /// and step.
    pub fn train_episode<E: Environment>(
        &mut self,
        env: &E,
        episode: &Episode<E::Action>,
    ) -> TrainStats {
        let mut stats = self.accumulate_episode(env, episode);
        stats.grad_norm = self.step_optimizer();
        stats
    }
}

/// Shannon entropy (nats) of the softmax distribution over `logits`,
/// computed with the usual max-shift for numerical stability.
fn softmax_entropy(logits: &[f32]) -> f32 {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return 0.0;
    }
    let mut z = 0.0f32;
    let mut weighted = 0.0f32;
    for &l in logits {
        let e = (l - max).exp();
        z += e;
        weighted += e * (l - max);
    }
    if z <= 0.0 {
        return 0.0;
    }
    // H = ln Z - Σ softmax(l) * (l - max)  (shift cancels).
    (z.ln() - weighted / z).max(0.0)
}

/// Samples an index from an unnormalized probability table.
fn sample_categorical(probs: &[f32], rng: &mut StdRng) -> usize {
    let total: f32 = probs.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..probs.len().max(1));
    }
    let mut draw = rng.gen_range(0.0..total);
    for (i, &p) in probs.iter().enumerate() {
        if draw < p {
            return i;
        }
        draw -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routerless::{LoopAction, RouterlessEnv};
    use rlnoc_topology::{Direction, Grid};

    fn tiny_env() -> RouterlessEnv {
        RouterlessEnv::new(Grid::square(2).unwrap(), 2)
    }

    fn agent_for(env: &RouterlessEnv, seed: u64) -> PolicyAgent {
        PolicyAgent::for_env(env, TrainConfig::default(), seed)
    }

    #[test]
    fn returns_discounting() {
        let ep = Episode {
            steps: vec![
                Step {
                    state: Tensor::zeros(&[1]),
                    action: 0u8,
                    reward: 1.0,
                },
                Step {
                    state: Tensor::zeros(&[1]),
                    action: 0u8,
                    reward: -1.0,
                },
            ],
            final_return: 2.0,
        };
        let g = ep.returns(0.5);
        // Last step: -1 + 2 = 1. First: 1 + 0.5 * 1 = 1.5.
        assert_eq!(g, vec![1.5, 1.0]);
    }

    #[test]
    fn returns_empty_episode() {
        let ep: Episode<u8> = Episode {
            steps: vec![],
            final_return: 3.0,
        };
        assert!(ep.returns(0.9).is_empty());
    }

    #[test]
    fn evaluation_priors_form_distribution() {
        let env = tiny_env();
        let mut agent = agent_for(&env, 0);
        let eval = agent.evaluate(&env.state_tensor());
        for h in 0..4 {
            let sum: f32 = eval.probs[h].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "head {h} sums to {sum}");
        }
        assert!((0.0..=1.0).contains(&eval.p_clockwise));
        // Priors over all (coords, flag) combinations sum to 1.
        let n = env.head_cardinality();
        let mut total = 0.0f32;
        for x1 in 0..n {
            for y1 in 0..n {
                for x2 in 0..n {
                    for y2 in 0..n {
                        for flag in [false, true] {
                            total += eval.action_prior([x1, y1, x2, y2], flag);
                        }
                    }
                }
            }
        }
        assert!((total - 1.0).abs() < 1e-4, "priors total {total}");
    }

    #[test]
    fn sampled_actions_decode_in_range() {
        let env = RouterlessEnv::new(Grid::square(4).unwrap(), 6);
        let mut agent = agent_for(&env, 1);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let a = agent.sample_action(&env, &mut rng);
            assert!(a.x1 < 4 && a.y1 < 4 && a.x2 < 4 && a.y2 < 4);
        }
    }

    #[test]
    fn training_on_positive_episode_raises_action_prior() {
        let env = tiny_env();
        let mut agent = agent_for(&env, 3);
        let action = LoopAction::new(0, 0, 1, 1, Direction::Clockwise);
        let state = env.state_tensor();
        let before = agent
            .evaluate(&state)
            .action_prior(action.head_indices().0, true);
        let episode = Episode {
            steps: vec![Step {
                state: state.clone(),
                action,
                reward: 0.0,
            }],
            final_return: 1.0,
        };
        for _ in 0..15 {
            agent.train_episode(&env, &episode);
        }
        let after = agent
            .evaluate(&state)
            .action_prior(action.head_indices().0, true);
        assert!(after > before, "prior should rise: {before} → {after}");
    }

    #[test]
    fn value_head_tracks_return() {
        let env = tiny_env();
        let mut agent = agent_for(&env, 4);
        let state = env.state_tensor();
        let action = LoopAction::new(0, 0, 1, 1, Direction::Clockwise);
        let episode = Episode {
            steps: vec![Step {
                state: state.clone(),
                action,
                reward: 0.0,
            }],
            final_return: -2.0,
        };
        for _ in 0..80 {
            agent.train_episode(&env, &episode);
        }
        let v = agent.evaluate(&state).value;
        assert!((v - (-2.0)).abs() < 0.7, "value {v} should approach -2");
    }

    #[test]
    fn evaluate_batch_matches_per_sample_evaluate() {
        let env = RouterlessEnv::new(Grid::square(3).unwrap(), 4);
        let mut agent = agent_for(&env, 6);
        // Collect several distinct states along a sampled trajectory.
        let mut e = env.clone();
        let mut rng = StdRng::seed_from_u64(2);
        let mut states = vec![e.state_tensor()];
        for _ in 0..4 {
            let a = agent.sample_action(&e, &mut rng);
            e.apply(a);
            states.push(e.state_tensor());
        }
        let batched = agent.evaluate_batch(&states);
        assert_eq!(batched.len(), states.len());
        // Eval-mode batch norm uses running statistics, so the batched
        // forward is exactly per-sample evaluation — bit-identical.
        for (s, b) in states.iter().zip(&batched) {
            assert_eq!(&agent.evaluate(s), b);
        }
        assert!(agent.evaluate_batch(&[]).is_empty());
    }

    #[test]
    fn generation_tracks_optimizer_steps() {
        let env = tiny_env();
        let mut agent = agent_for(&env, 0);
        assert_eq!(agent.param_generation(), 0);
        agent.step_optimizer();
        assert_eq!(agent.param_generation(), 1);
        agent.set_param_generation(7);
        assert_eq!(agent.param_generation(), 7);
    }

    #[test]
    fn accumulate_handles_multi_step_and_empty_episodes() {
        let env = tiny_env();
        let mut agent = agent_for(&env, 5);
        let empty: Episode<LoopAction> = Episode {
            steps: vec![],
            final_return: 0.0,
        };
        let stats = agent.accumulate_episode(&env, &empty);
        assert_eq!(stats.steps, 0);

        let action = LoopAction::new(0, 0, 1, 1, Direction::Clockwise);
        let state = env.state_tensor();
        let episode = Episode {
            steps: (0..3)
                .map(|_| Step {
                    state: state.clone(),
                    action,
                    reward: 0.5,
                })
                .collect(),
            final_return: 1.0,
        };
        let stats = agent.accumulate_episode(&env, &episode);
        assert_eq!(stats.steps, 3);
        assert!(stats.policy_loss.is_finite() && stats.value_loss.is_finite());
        assert!(agent.step_optimizer() > 0.0, "gradients should be nonzero");
    }

    #[test]
    fn guarded_step_matches_unguarded_when_disabled() {
        let env = tiny_env();
        let mut a = agent_for(&env, 9);
        let mut b = agent_for(&env, 9);
        let action = LoopAction::new(0, 0, 1, 1, Direction::Clockwise);
        let episode = Episode {
            steps: vec![Step {
                state: env.state_tensor(),
                action,
                reward: 1.0,
            }],
            final_return: 0.5,
        };
        let disabled = AnomalyPolicy {
            enabled: false,
            ..AnomalyPolicy::default()
        };
        for _ in 0..3 {
            a.accumulate_episode(&env, &episode);
            let na = a.step_optimizer();
            b.accumulate_episode(&env, &episode);
            let nb = b
                .step_optimizer_guarded(&disabled)
                .expect("disabled guard never rejects");
            assert_eq!(na, nb);
        }
        assert_eq!(a.net.param_snapshot(), b.net.param_snapshot());
        assert_eq!(a.param_generation(), b.param_generation());
    }

    #[test]
    fn guarded_step_rejects_non_finite_norm_without_mutating() {
        let env = tiny_env();
        let mut agent = agent_for(&env, 10);
        let policy = AnomalyPolicy::default();
        let before = agent.net.param_snapshot();
        let generation = agent.param_generation();
        // Poison one gradient directly.
        agent.net.params_mut()[0].grad.as_mut_slice()[0] = f32::NAN;
        let err = agent.step_optimizer_guarded(&policy).unwrap_err();
        assert!(matches!(err, AnomalyKind::NonFiniteGradNorm { norm } if norm.is_nan()));
        assert_eq!(agent.net.param_snapshot(), before, "params untouched");
        assert_eq!(agent.param_generation(), generation, "generation untouched");
        assert_eq!(
            agent.sentinel().observed(),
            0,
            "rejected step must not feed the sentinel"
        );
        assert!(
            agent
                .net
                .params_mut()
                .iter()
                .all(|p| p.grad.as_slice().iter().all(|&g| g == 0.0)),
            "poisoned gradients zeroed"
        );
    }

    #[test]
    fn guarded_step_rejects_exploding_norm_after_warmup() {
        let env = tiny_env();
        let mut agent = agent_for(&env, 11);
        let policy = AnomalyPolicy {
            ewma_warmup: 1,
            ewma_mult: 2.0,
            ewma_floor: 0.0,
            ..AnomalyPolicy::default()
        };
        let action = LoopAction::new(0, 0, 1, 1, Direction::Clockwise);
        let episode = Episode {
            steps: vec![Step {
                state: env.state_tensor(),
                action,
                reward: 1.0,
            }],
            final_return: 0.5,
        };
        agent.accumulate_episode(&env, &episode);
        agent
            .step_optimizer_guarded(&policy)
            .expect("warmup step accepted");
        // A gradient scaled far past the observed baseline must trip.
        agent.accumulate_episode(&env, &episode);
        for p in agent.net.params_mut() {
            p.grad = p.grad.scale(1e6);
        }
        let before = agent.net.param_snapshot();
        let err = agent.step_optimizer_guarded(&policy).unwrap_err();
        assert!(
            matches!(err, AnomalyKind::ExplodingGradNorm { norm, threshold } if norm > threshold)
        );
        assert_eq!(
            agent.net.param_snapshot(),
            before,
            "rejected step mutates nothing"
        );
    }

    #[test]
    fn step_snapshot_roundtrip_restores_exactly() {
        let env = tiny_env();
        let mut agent = agent_for(&env, 12);
        let action = LoopAction::new(0, 0, 1, 1, Direction::Clockwise);
        let episode = Episode {
            steps: vec![Step {
                state: env.state_tensor(),
                action,
                reward: 1.0,
            }],
            final_return: 0.5,
        };
        // Take a couple of steps so Adam moments are warm.
        for _ in 0..2 {
            agent.train_episode(&env, &episode);
        }
        let snapshot = agent.capture_step_state();
        let params_at_snapshot = agent.net.param_snapshot();
        agent.train_episode(&env, &episode);
        assert_ne!(agent.net.param_snapshot(), params_at_snapshot);
        assert_eq!(agent.first_non_finite_param(), None);
        agent.restore_step_state(&snapshot);
        assert_eq!(agent.net.param_snapshot(), params_at_snapshot);
        assert_eq!(agent.param_generation(), 2);
        // A replayed step lands on the same parameters as the rolled-back
        // one (same grads + same Adam moments).
        let replay_a = {
            agent.train_episode(&env, &episode);
            agent.net.param_snapshot()
        };
        agent.restore_step_state(&snapshot);
        agent.train_episode(&env, &episode);
        assert_eq!(
            agent.net.param_snapshot(),
            replay_a,
            "rollback+replay is deterministic"
        );
    }

    #[test]
    fn first_non_finite_param_locates_poison() {
        let env = tiny_env();
        let mut agent = agent_for(&env, 13);
        assert_eq!(agent.first_non_finite_param(), None);
        agent.net.params_mut()[1].value.as_mut_slice()[0] = f32::INFINITY;
        assert_eq!(agent.first_non_finite_param(), Some(1));
    }

    #[test]
    fn sample_categorical_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample_categorical(&[0.0, 0.0, 1.0], &mut rng), 2);
        // All-zero table falls back to uniform without panicking.
        let i = sample_categorical(&[0.0, 0.0], &mut rng);
        assert!(i < 2);
    }
}
