//! Experience replay — the alternative exploration memory the paper
//! considers and rejects in favour of MCTS (§4.5).
//!
//! Replay buffers improve sample efficiency by training on random past
//! transitions, but they "break the correlation between states": unlike
//! the search tree, they carry no structure about which design prefixes
//! lead where. This module implements the replay approach so the trade-off
//! can be measured (see the `exp_ablation_search` experiment binary).

use crate::env::Environment;
use crate::policy::{Episode, PolicyAgent};
use rand::prelude::*;
use rand::rngs::StdRng;
use rlnoc_nn::loss;
use rlnoc_nn::net::PolicyValueGrad;
use rlnoc_nn::Tensor;
use std::collections::VecDeque;

/// One stored transition: the pre-action state, the encoded action, and
/// the observed discounted return from that point.
#[derive(Debug, Clone)]
pub struct Transition {
    /// State tensor before the action.
    pub state: Tensor,
    /// The four categorical head indices of the action taken.
    pub coords: [usize; 4],
    /// The action's binary flag (loop direction).
    pub flag: bool,
    /// Discounted return `G_t` observed from this state.
    pub ret: f64,
}

/// A bounded FIFO of past transitions with uniform random sampling.
#[derive(Debug)]
pub struct ReplayBuffer {
    items: VecDeque<Transition>,
    capacity: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(t);
    }

    /// Records a whole episode with its discounted returns.
    pub fn push_episode<E: Environment>(
        &mut self,
        env: &E,
        episode: &Episode<E::Action>,
        gamma: f64,
    ) {
        let returns = episode.returns(gamma);
        for (step, &g) in episode.steps.iter().zip(&returns) {
            let (coords, flag) = env.encode_action(step.action);
            self.push(Transition {
                state: step.state.clone(),
                coords,
                flag,
                ret: g,
            });
        }
    }

    /// Uniformly samples `batch` transitions (with replacement when the
    /// buffer is smaller than the batch). Returns an empty vec when the
    /// buffer is empty.
    pub fn sample(&self, batch: usize, rng: &mut StdRng) -> Vec<&Transition> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..batch)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }
}

/// One gradient update from a sampled replay batch: standard advantage
/// actor-critic on uncorrelated transitions. Clips and steps the
/// optimizer; returns the mean value loss for monitoring.
pub fn train_on_replay(
    agent: &mut PolicyAgent,
    buffer: &ReplayBuffer,
    batch: usize,
    rng: &mut StdRng,
) -> f32 {
    let samples = buffer.sample(batch, rng);
    if samples.is_empty() {
        return 0.0;
    }
    let n = agent.net().config().n;
    let value_coeff = agent.train_config().value_coeff;
    let mut value_loss = 0.0f32;
    let count = samples.len();
    for t in samples {
        let out = agent.net_mut().forward(&t.state, true);
        let v = out.value.as_slice()[0];
        let advantage = (t.ret - f64::from(v)) as f32;
        let logits = out.coord_logits.as_slice();
        let mut coord_grad = vec![0.0f32; 4 * n];
        for h in 0..4 {
            // Out-of-range head indices (rectangular grids) train nothing
            // for that head.
            if t.coords[h] < n {
                let (_, g) =
                    loss::policy_head_grad(&logits[h * n..(h + 1) * n], t.coords[h], advantage);
                coord_grad[h * n..(h + 1) * n].copy_from_slice(&g);
            }
        }
        let (_, dg) = loss::direction_head_grad(out.dir.as_slice()[0], t.flag, advantage);
        let (vl, vg) = loss::value_head_grad(v, t.ret as f32);
        value_loss += vl;
        agent.net_mut().backward(&PolicyValueGrad {
            coord_logits: Tensor::from_vec(coord_grad, &[1, 4, n]).expect("4N logits"),
            dir: Tensor::from_vec(vec![dg], &[1, 1]).expect("scalar"),
            value: Tensor::from_vec(vec![vg * value_coeff], &[1, 1]).expect("scalar"),
        });
    }
    agent.step_optimizer();
    value_loss / count as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Step, TrainConfig};
    use crate::routerless::{LoopAction, RouterlessEnv};
    use rlnoc_topology::{Direction, Grid};

    fn transition(ret: f64) -> Transition {
        Transition {
            state: Tensor::zeros(&[1, 1, 4, 4]),
            coords: [0, 0, 1, 1],
            flag: true,
            ret,
        }
    }

    #[test]
    fn buffer_evicts_fifo() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(transition(i as f64));
        }
        assert_eq!(b.len(), 3);
        // Oldest two evicted: remaining returns are 2, 3, 4.
        let mut rng = StdRng::seed_from_u64(0);
        let rets: Vec<f64> = b.sample(50, &mut rng).iter().map(|t| t.ret).collect();
        assert!(rets.iter().all(|&r| r >= 2.0));
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let b = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(b.sample(8, &mut rng).is_empty());
    }

    #[test]
    fn push_episode_stores_returns() {
        let env = RouterlessEnv::new(Grid::square(2).unwrap(), 2);
        let action = LoopAction::new(0, 0, 1, 1, Direction::Clockwise);
        let ep = Episode {
            steps: vec![Step {
                state: env.state_tensor(),
                action,
                reward: 0.0,
            }],
            final_return: 1.5,
        };
        let mut b = ReplayBuffer::new(8);
        b.push_episode(&env, &ep, 0.9);
        assert_eq!(b.len(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(b.sample(1, &mut rng)[0].ret, 1.5);
    }

    #[test]
    fn replay_training_moves_value_toward_return() {
        let env = RouterlessEnv::new(Grid::square(2).unwrap(), 2);
        let mut agent = PolicyAgent::for_env(&env, TrainConfig::default(), 3);
        let mut b = ReplayBuffer::new(16);
        let state = env.state_tensor();
        b.push(Transition {
            state: state.clone(),
            coords: [0, 0, 1, 1],
            flag: true,
            ret: -1.0,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let before = agent.evaluate(&state).value;
        for _ in 0..40 {
            train_on_replay(&mut agent, &b, 4, &mut rng);
        }
        let after = agent.evaluate(&state).value;
        assert!(
            (after - (-1.0)).abs() < (before - (-1.0)).abs(),
            "value should move toward the return: {before} → {after}"
        );
    }
}
