//! Training-run resilience: numerical anomaly detection, rollback policy,
//! and watchdog supervision knobs for the multi-threaded learner.
//!
//! Long unattended exploration runs die in predictable ways: a NaN slips
//! out of a gradient and poisons every parameter within one step, a
//! mis-scaled reward explodes the gradient norm, or a worker wedges and the
//! join never returns. This module defines the *policy* side of the
//! defenses — what counts as an anomaly, how often to retry, when to give
//! up — while [`crate::parallel`] implements the mechanism (typed
//! [`AnomalyReport`]s checked around every optimizer step, rollback to the
//! last-good parameter snapshot, per-worker quarantine with exponential
//! backoff, and heartbeat-driven stall detection).
//!
//! The contract that keeps this safe to leave enabled: detection is
//! read-only and intervention only triggers on an actual anomaly, so a
//! zero-anomaly run with the resilience layer on is bit-identical to one
//! with it off (asserted by `tests/chaos.rs`).

use rlnoc_nn::Tensor;
use std::time::Duration;

/// What kind of numerical anomaly was detected around an optimizer step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnomalyKind {
    /// The episode's policy or value loss came back NaN/Inf.
    NonFiniteLoss {
        /// Mean policy loss of the poisoned episode.
        policy_loss: f32,
        /// Mean value loss of the poisoned episode.
        value_loss: f32,
    },
    /// A gradient tensor contained a NaN/Inf before the parent step.
    NonFiniteGrad {
        /// Index of the first offending tensor in the parameter list.
        tensor: usize,
    },
    /// The global gradient norm itself was NaN/Inf (overflow in the
    /// sum-of-squares even though no single element was non-finite).
    NonFiniteGradNorm {
        /// The computed pre-clip norm.
        norm: f32,
    },
    /// The pre-clip gradient norm exceeded the EWMA-tracked threshold.
    ExplodingGradNorm {
        /// The observed pre-clip norm.
        norm: f32,
        /// The threshold it exceeded (`ewma_mult x max(ewma, ewma_floor)`).
        threshold: f32,
    },
    /// A parameter tensor was NaN/Inf after the step (the step is rolled
    /// back to the pre-step snapshot).
    NonFiniteParam {
        /// Index of the first offending tensor in the parameter list.
        tensor: usize,
    },
}

impl AnomalyKind {
    /// The telemetry counter name this anomaly increments.
    pub fn counter(&self) -> &'static str {
        match self {
            AnomalyKind::NonFiniteLoss { .. } => "anomaly.nonfinite_loss",
            AnomalyKind::NonFiniteGrad { .. } => "anomaly.nonfinite_grad",
            AnomalyKind::NonFiniteGradNorm { .. } => "anomaly.nonfinite_grad_norm",
            AnomalyKind::ExplodingGradNorm { .. } => "anomaly.exploding_grad_norm",
            AnomalyKind::NonFiniteParam { .. } => "anomaly.nonfinite_param",
        }
    }

    /// Whether handling this anomaly rolled parameters back (only the
    /// post-step check does; the pre-step checks discard the update before
    /// anything is mutated).
    pub fn rolled_back(&self) -> bool {
        matches!(self, AnomalyKind::NonFiniteParam { .. })
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnomalyKind::NonFiniteLoss {
                policy_loss,
                value_loss,
            } => write!(
                f,
                "non-finite loss (policy {policy_loss}, value {value_loss})"
            ),
            AnomalyKind::NonFiniteGrad { tensor } => {
                write!(f, "non-finite gradient in tensor {tensor}")
            }
            AnomalyKind::NonFiniteGradNorm { norm } => {
                write!(f, "non-finite global gradient norm ({norm})")
            }
            AnomalyKind::ExplodingGradNorm { norm, threshold } => {
                write!(f, "exploding gradient norm {norm} > threshold {threshold}")
            }
            AnomalyKind::NonFiniteParam { tensor } => {
                write!(
                    f,
                    "non-finite parameter in tensor {tensor} after step (rolled back)"
                )
            }
        }
    }
}

/// One detected anomaly, located in the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyReport {
    /// What was detected.
    pub kind: AnomalyKind,
    /// The worker whose update tripped the check.
    pub worker: usize,
    /// The global cycle index whose update was discarded.
    pub cycle: usize,
    /// How many consecutive anomalies this worker had produced at the time
    /// (1 for the first).
    pub consecutive: usize,
}

impl std::fmt::Display for AnomalyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} cycle {}: {} (consecutive anomaly #{})",
            self.worker, self.cycle, self.kind, self.consecutive
        )
    }
}

/// Detection/retry policy for numerical anomalies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyPolicy {
    /// Master switch. Disabled, every check compiles down to untaken
    /// branches and the learner behaves exactly as before this layer
    /// existed.
    pub enabled: bool,
    /// How many *consecutive* anomalies one worker may produce before it is
    /// quarantined (its claimed cycle is requeued for surviving workers; if
    /// every worker is quarantined the run fails with
    /// [`crate::parallel::ExploreError::Numerical`]).
    pub max_retries: usize,
    /// Base of the exponential retry backoff (doubles per consecutive
    /// anomaly). Zero disables sleeping, which deterministic tests use.
    pub backoff_base: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_cap: Duration,
    /// EWMA smoothing factor for the gradient-norm tracker (weight of the
    /// newest observation).
    pub ewma_alpha: f64,
    /// A step is "exploding" when its pre-clip norm exceeds
    /// `ewma_mult x max(ewma, ewma_floor)`.
    pub ewma_mult: f64,
    /// Lower bound substituted for the EWMA in the threshold, so early
    /// near-zero norms cannot produce a hair-trigger threshold.
    pub ewma_floor: f64,
    /// Number of accepted steps observed before the exploding-norm check
    /// arms (the NaN/Inf checks are always armed).
    pub ewma_warmup: u64,
}

impl Default for AnomalyPolicy {
    fn default() -> Self {
        AnomalyPolicy {
            enabled: true,
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(2),
            ewma_alpha: 0.05,
            // Deliberately loose: actor-critic grad norms are heavy-tailed
            // and a false trip costs a retry. The NaN checks do the
            // precision work; this catches runaway divergence.
            ewma_mult: 100.0,
            ewma_floor: 1.0,
            ewma_warmup: 16,
        }
    }
}

impl AnomalyPolicy {
    /// The backoff sleep before retry number `consecutive` (1-based):
    /// `backoff_base * 2^(consecutive-1)`, capped at `backoff_cap`.
    pub fn backoff(&self, consecutive: usize) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let shift = consecutive.saturating_sub(1).min(16) as u32;
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// Deadline supervision for stalled workers.
///
/// Workers publish a heartbeat (an atomic counter bumped at every cycle
/// boundary, mirrored into telemetry as `watchdog.heartbeats`); a monitor
/// thread watches for a worker whose heartbeat has not moved within
/// [`WatchdogConfig::deadline`] and raises that worker's interrupt flag.
/// Cooperative wait points (the chaos injector's stall windows, and the
/// retry loop's cycle boundaries) honor the flag, which routes the worker
/// through the same requeue-and-continue path a caught panic takes instead
/// of hanging the scope join. A genuinely non-cooperative hang (a worker
/// spinning inside foreign code) cannot be cancelled from safe Rust; the
/// watchdog still detects and reports it (`watchdog.stalls_detected`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Master switch for the monitor thread.
    pub enabled: bool,
    /// A worker whose heartbeat is older than this is declared stalled.
    pub deadline: Duration,
    /// Monitor polling interval.
    pub poll: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            // Generous: a legitimate cycle on a paper-sized net takes well
            // under a second; spurious trips only cost a recovered-stall
            // counter tick, never a changed result.
            deadline: Duration::from_secs(30),
            poll: Duration::from_millis(50),
        }
    }
}

/// The resilience layer's combined configuration, carried by
/// [`crate::ExplorerConfig`].
#[derive(Debug, Clone, Default)]
pub struct ResilienceConfig {
    /// Numerical anomaly detection/rollback/retry policy.
    pub anomaly: AnomalyPolicy,
    /// Stalled-worker supervision.
    pub watchdog: WatchdogConfig,
    /// Deterministic fault injector for chaos testing; `None` (the
    /// default) costs one branch per hook site.
    pub chaos: Option<crate::chaos::ChaosInjector>,
}

impl ResilienceConfig {
    /// A configuration with every defense switched off — the exact
    /// pre-resilience code path, for A/B bit-identity tests.
    pub fn disabled() -> Self {
        ResilienceConfig {
            anomaly: AnomalyPolicy {
                enabled: false,
                ..AnomalyPolicy::default()
            },
            watchdog: WatchdogConfig {
                enabled: false,
                ..WatchdogConfig::default()
            },
            chaos: None,
        }
    }
}

/// Index of the first tensor in `tensors` containing a non-finite value.
pub fn first_non_finite(tensors: &[Tensor]) -> Option<usize> {
    tensors.iter().position(|t| !t.all_finite())
}

/// EWMA tracker for the pre-clip gradient norm, owned by the parent
/// [`crate::policy::PolicyAgent`] so every worker's accepted steps feed one
/// stream. Rejected steps do not update the average (a poisoned norm must
/// not drag the baseline up toward itself).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NormSentinel {
    ewma: f64,
    observed: u64,
}

impl NormSentinel {
    /// Reconstructs a sentinel from checkpointed state (see
    /// [`crate::checkpoint::LearnerState`]).
    pub fn from_parts(ewma: f64, observed: u64) -> Self {
        NormSentinel { ewma, observed }
    }

    /// The current threshold, or `None` while warming up / disabled.
    pub fn threshold(&self, policy: &AnomalyPolicy) -> Option<f64> {
        if !policy.enabled || self.observed < policy.ewma_warmup {
            return None;
        }
        Some(self.ewma.max(policy.ewma_floor) * policy.ewma_mult)
    }

    /// Folds an accepted step's pre-clip norm into the average.
    pub fn observe(&mut self, norm: f64, policy: &AnomalyPolicy) {
        self.ewma = if self.observed == 0 {
            norm
        } else {
            policy.ewma_alpha * norm + (1.0 - policy.ewma_alpha) * self.ewma
        };
        self.observed += 1;
    }

    /// Number of accepted steps folded in so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The current smoothed norm (0 before any observation).
    pub fn ewma(&self) -> f64 {
        self.ewma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_warms_up_before_arming() {
        let policy = AnomalyPolicy {
            ewma_warmup: 3,
            ewma_mult: 10.0,
            ewma_floor: 0.0,
            ..AnomalyPolicy::default()
        };
        let mut s = NormSentinel::default();
        assert_eq!(s.threshold(&policy), None);
        s.observe(2.0, &policy);
        s.observe(2.0, &policy);
        assert_eq!(s.threshold(&policy), None, "still warming up");
        s.observe(2.0, &policy);
        let th = s.threshold(&policy).expect("armed after warmup");
        assert!((th - 20.0).abs() < 1e-9, "threshold {th}");
    }

    #[test]
    fn sentinel_floor_prevents_hair_trigger() {
        let policy = AnomalyPolicy {
            ewma_warmup: 1,
            ewma_mult: 10.0,
            ewma_floor: 1.0,
            ..AnomalyPolicy::default()
        };
        let mut s = NormSentinel::default();
        s.observe(1e-6, &policy);
        let th = s.threshold(&policy).unwrap();
        assert!((th - 10.0).abs() < 1e-9, "floor should dominate: {th}");
    }

    #[test]
    fn sentinel_disabled_policy_never_arms() {
        let policy = AnomalyPolicy {
            enabled: false,
            ewma_warmup: 0,
            ..AnomalyPolicy::default()
        };
        let mut s = NormSentinel::default();
        s.observe(5.0, &policy);
        assert_eq!(s.threshold(&policy), None);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = AnomalyPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            ..AnomalyPolicy::default()
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(35), "capped");
        let zero = AnomalyPolicy {
            backoff_base: Duration::ZERO,
            ..policy
        };
        assert_eq!(zero.backoff(5), Duration::ZERO);
    }

    #[test]
    fn first_non_finite_locates_offender() {
        let good = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let bad = Tensor::from_vec(vec![1.0, f32::NAN], &[2]).unwrap();
        assert_eq!(first_non_finite(&[good.clone(), good.clone()]), None);
        assert_eq!(first_non_finite(&[good.clone(), bad.clone()]), Some(1));
        let inf = Tensor::from_vec(vec![f32::INFINITY], &[1]).unwrap();
        assert_eq!(first_non_finite(&[inf, good, bad]), Some(0));
    }

    #[test]
    fn anomaly_kinds_name_their_counters() {
        let kinds = [
            AnomalyKind::NonFiniteLoss {
                policy_loss: f32::NAN,
                value_loss: 0.0,
            },
            AnomalyKind::NonFiniteGrad { tensor: 0 },
            AnomalyKind::NonFiniteGradNorm {
                norm: f32::INFINITY,
            },
            AnomalyKind::ExplodingGradNorm {
                norm: 1e9,
                threshold: 100.0,
            },
            AnomalyKind::NonFiniteParam { tensor: 2 },
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.counter()).collect();
        names.dedup();
        assert_eq!(names.len(), kinds.len(), "counters must be distinct");
        assert!(kinds.iter().all(|k| k.counter().starts_with("anomaly.")));
        assert!(kinds[4].rolled_back() && !kinds[1].rolled_back());
    }
}
