//! Deterministic and randomized rollout policies for routerless design.
//!
//! These are the non-learning members of the framework's search toolbox:
//!
//! - [`greedy_rollout`]: Algorithm 1 (ε = 1) repeated to completion — the
//!   strongest *deterministic* designer, used throughout the experiment
//!   harness for loose overlap caps;
//! - [`frugal_rollout`]: a budget-aware, connectivity-first variant with
//!   randomized tie-breaking for *tight* caps, where plain Algorithm 1 is
//!   too myopic and strands nodes;
//! - [`best_connected`]: random-restart wrapper returning the best fully
//!   connected design found.
//!
//! With a laptop-scale budget these reach overlap caps down to ~13 on an
//! 8x8 grid; the paper's fully trained DRL reaches 8 (Figure 13), which is
//! the value a long-running [`crate::Explorer`] session targets.

use crate::routerless::RouterlessEnv;
use crate::Environment;
use rand::prelude::*;
use rand::rngs::StdRng;
use rlnoc_topology::{Direction, Grid, RectLoop, Topology};

/// Algorithm 1 (ε = 1) to completion: repeatedly add the loop with the
/// best `CheckCount`/`Imprv` score until no legal loop remains.
pub fn greedy_rollout(grid: Grid, cap: u32) -> Topology {
    let mut env = RouterlessEnv::new(grid, cap);
    while let Some(a) = env.greedy_action() {
        let r = env.apply(a);
        debug_assert_eq!(r, 0.0, "greedy proposes only legal actions");
    }
    env.into_topology()
}

/// Budget-aware connectivity-first rollout.
///
/// Phase 1 adds only loops that connect new node pairs, scoring candidates
/// by new pairs discounted by *overlap pressure* (how much budget the loop
/// consumes on nearly-saturated nodes) and sampling among the top few so
/// restarts explore different branches. Phase 2 spends any leftover budget
/// on pure hop-count improvement.
///
/// The result may be disconnected when `cap` is very tight; check with
/// [`Topology::is_fully_connected`] or use [`best_connected`].
pub fn frugal_rollout(grid: Grid, cap: u32, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topo = Topology::new(grid);

    // Phase 1: connect everything, spending as little budget as possible.
    loop {
        let mut cands: Vec<(f64, RectLoop)> = Vec::new();
        for_each_rect(&grid, |cw| {
            if topo.overlap_violation(&cw, cap).is_some() {
                return;
            }
            let hops = topo.hop_matrix();
            let new_pairs = hops.newly_connected_pairs(&grid, &cw);
            if new_pairs == 0 {
                return;
            }
            let nodes = cw.perimeter_nodes(&grid);
            let pressure: f64 = nodes
                .iter()
                .map(|&n| {
                    let o = f64::from(topo.node_overlap(n)) / f64::from(cap.max(1));
                    o * o
                })
                .sum::<f64>()
                / nodes.len() as f64;
            let ccw = cw.reversed();
            let ring = if hops.improvement_if_added(&grid, &cw)
                >= hops.improvement_if_added(&grid, &ccw)
            {
                cw
            } else {
                ccw
            };
            let ring = if topo.contains_loop(&ring) {
                ring.reversed()
            } else {
                ring
            };
            if topo.contains_loop(&ring) {
                return;
            }
            cands.push((new_pairs as f64 / (1.0 + pressure), ring));
        });
        if cands.is_empty() {
            break;
        }
        cands.sort_by(|a, b| b.0.total_cmp(&a.0));
        let k = cands.len().min(4);
        let pick = rng.gen_range(0..k);
        topo.add_loop(cands[pick].1)
            .expect("candidate validated against the current design");
        if topo.is_fully_connected() {
            break;
        }
    }

    // Phase 2: spend leftover wiring on hop-count improvement.
    if topo.is_fully_connected() {
        loop {
            let mut best: Option<(u64, RectLoop)> = None;
            for_each_rect(&grid, |cw| {
                if topo.overlap_violation(&cw, cap).is_some() {
                    return;
                }
                for ring in [cw, cw.reversed()] {
                    if topo.contains_loop(&ring) {
                        continue;
                    }
                    let g = topo.hop_matrix().improvement_if_added(&grid, &ring);
                    if best.as_ref().is_none_or(|&(bg, _)| g > bg) {
                        best = Some((g, ring));
                    }
                }
            });
            match best {
                Some((g, ring)) if g > 0 => {
                    topo.add_loop(ring)
                        .expect("candidate validated against the current design");
                }
                _ => break,
            }
        }
    }
    topo
}

/// A minimal-wiring fully connected construction with maximum node
/// overlapping of exactly `max(width, height)` — the theoretical limit the
/// paper identifies (§6.2: an `N×N` NoC needs a cap of at least `N`).
///
/// Construction (per concentric layer, recursing inward):
///
/// - the layer ring,
/// - a *fan* of full-width rectangles anchored on the layer's top row,
///   `(a, a)–(b, y)` for each interior row `y`, and the mirrored fan
///   anchored on the bottom row.
///
/// Within a layer, every perimeter node shares a loop with every node of
/// the layer (the fans' full rows/columns), and interior pairs in the same
/// row share that row's fan loop; pairs strictly inside recurse. Boundary
/// nodes carry at most `m − 1` loops of their own layer (`m` the layer
/// size) plus 2 per enclosing layer, so the overall cap is `N`.
///
/// Use this as the connectivity backbone under tight wiring budgets, then
/// spend leftover budget on hop improvement ([`skeleton_rollout`]).
pub fn skeleton_topology(grid: Grid) -> Topology {
    let mut topo = Topology::new(grid);
    let (mut ax, mut ay) = (0usize, 0usize);
    let (mut bx, mut by) = (grid.width() - 1, grid.height() - 1);
    let mut flip = false;
    loop {
        let dir = if flip {
            Direction::Counterclockwise
        } else {
            Direction::Clockwise
        };
        flip = !flip;
        let ring = RectLoop::new(ax, ay, bx, by, dir).expect("layer spans both dims");
        topo.add_loop(ring).expect("rings are unique per layer");
        for y in ay + 1..by {
            let d = if y % 2 == 0 { dir } else { dir.reversed() };
            let top = RectLoop::new(ax, ay, bx, y, d).expect("non-degenerate");
            let bottom = RectLoop::new(ax, y, bx, by, d.reversed()).expect("non-degenerate");
            let _ = topo.add_loop(top);
            let _ = topo.add_loop(bottom);
        }
        // What remains unconnected lives strictly inside this layer with
        // different rows (same-row pairs share a fan loop).
        let iw = (bx - ax).saturating_sub(1); // interior width
        let ih = (by - ay).saturating_sub(1); // interior height
        if iw == 0 || ih <= 1 {
            // Empty interior, or a single interior row (covered by its own
            // fan — this also covers the single-center-node case): done.
            break;
        }
        if iw == 1 {
            // A single interior column cannot recurse: one vertical strip
            // carries the whole column on its right edge.
            let strip = RectLoop::new(ax, ay, ax + 1, by, dir).expect("non-degenerate");
            let _ = topo.add_loop(strip);
            break;
        }
        ax += 1;
        ay += 1;
        bx -= 1;
        by -= 1;
    }
    debug_assert!(topo.is_fully_connected());
    topo
}

/// [`skeleton_topology`] plus greedy hop improvement with the leftover
/// wiring budget, for caps between `max(width, height)` and `2(N−1)`.
///
/// Returns `None` when `cap` is below the skeleton's own requirement.
pub fn skeleton_rollout(grid: Grid, cap: u32) -> Option<Topology> {
    let skeleton = skeleton_topology(grid);
    if skeleton.max_overlap() > cap {
        return None;
    }
    let mut env = RouterlessEnv::new(grid, cap);
    for &l in skeleton.loops() {
        let (x1, y1, x2, y2, d) = l.encode();
        let r = env.apply(crate::routerless::LoopAction::new(
            x1,
            y1,
            x2,
            y2,
            Direction::from_bit(d),
        ));
        debug_assert_eq!(r, 0.0, "skeleton loops are legal under the cap");
    }
    while let Some(a) = env.greedy_action() {
        // Greedy keeps adding only while it improves hops or connectivity;
        // once fully connected, stop when the best candidate's improvement
        // is zero.
        let before = env.average_hops();
        env.apply(a);
        if env.average_hops() >= before && env.is_fully_connected() {
            break;
        }
    }
    Some(env.into_topology())
}

/// Random-restart search: runs [`frugal_rollout`] with up to `attempts`
/// seeds and returns the fully connected design with the lowest average
/// hop count, or `None` if every attempt left nodes stranded.
pub fn best_connected(grid: Grid, cap: u32, attempts: usize, base_seed: u64) -> Option<Topology> {
    let mut best: Option<Topology> = None;
    for i in 0..attempts {
        let t = frugal_rollout(grid, cap, base_seed.wrapping_add(i as u64));
        if t.is_fully_connected()
            && best
                .as_ref()
                .is_none_or(|b| t.average_hops() < b.average_hops())
        {
            best = Some(t);
        }
    }
    best
}

/// Visits every clockwise rectangle on the grid.
fn for_each_rect(grid: &Grid, mut f: impl FnMut(RectLoop)) {
    for x1 in 0..grid.width() {
        for x2 in x1 + 1..grid.width() {
            for y1 in 0..grid.height() {
                for y2 in y1 + 1..grid.height() {
                    f(RectLoop::new(x1, y1, x2, y2, Direction::Clockwise)
                        .expect("non-degenerate by construction"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_rollout_connects_small_grids() {
        for (n, cap) in [(3usize, 4u32), (4, 6), (5, 8)] {
            let t = greedy_rollout(Grid::square(n).unwrap(), cap);
            assert!(t.is_fully_connected(), "{n}x{n} cap {cap}");
            assert!(t.max_overlap() <= cap);
        }
    }

    #[test]
    fn frugal_respects_cap() {
        let t = frugal_rollout(Grid::square(5).unwrap(), 6, 3);
        assert!(t.max_overlap() <= 6);
    }

    #[test]
    fn frugal_deterministic_per_seed() {
        let g = Grid::square(4).unwrap();
        let a = frugal_rollout(g, 6, 9);
        let b = frugal_rollout(g, 6, 9);
        assert_eq!(a.loops(), b.loops());
    }

    #[test]
    fn frugal_connects_at_tight_cap_where_greedy_fails() {
        // 4x4 at cap 4: plain Algorithm 1 strands nodes; the frugal restart
        // search should find a fully connected design.
        let g = Grid::square(4).unwrap();
        let greedy = greedy_rollout(g, 4);
        let frugal = best_connected(g, 4, 20, 0);
        match frugal {
            Some(t) => {
                assert!(t.is_fully_connected());
                assert!(t.max_overlap() <= 4);
            }
            None => {
                // If even restarts fail, greedy certainly did — the cap is
                // below this searcher's reach, which must show consistently.
                assert!(!greedy.is_fully_connected());
            }
        }
    }

    #[test]
    fn skeleton_hits_the_theoretical_cap() {
        // Paper §6.2: N is the minimum cap for an N×N routerless NoC; the
        // skeleton construction achieves it exactly, fully connected.
        for n in [4usize, 6, 8, 10, 12] {
            let t = skeleton_topology(Grid::square(n).unwrap());
            assert!(t.is_fully_connected(), "{n}x{n} connected");
            assert_eq!(t.max_overlap(), n as u32, "{n}x{n} overlap");
        }
    }

    #[test]
    fn skeleton_works_on_rectangles() {
        for (w, h) in [(4usize, 6usize), (6, 4), (3, 5)] {
            let t = skeleton_topology(Grid::new(w, h).unwrap());
            assert!(t.is_fully_connected(), "{w}x{h}");
            assert!(
                t.max_overlap() <= w.max(h) as u32 + 1,
                "{w}x{h}: {}",
                t.max_overlap()
            );
        }
    }

    #[test]
    fn skeleton_rollout_uses_leftover_budget() {
        let g = Grid::square(6).unwrap();
        let tight = skeleton_rollout(g, 6).expect("cap 6 = N works");
        let roomy = skeleton_rollout(g, 10).expect("cap 10 works");
        assert!(tight.is_fully_connected());
        assert!(roomy.is_fully_connected());
        assert!(roomy.average_hops() <= tight.average_hops());
        assert!(tight.max_overlap() <= 6 && roomy.max_overlap() <= 10);
        // Below the skeleton's requirement: impossible here.
        assert!(skeleton_rollout(g, 5).is_none());
    }

    #[test]
    fn best_connected_picks_lowest_hops() {
        let g = Grid::square(4).unwrap();
        let best = best_connected(g, 6, 8, 1).expect("cap 6 is easy on 4x4");
        // No single attempt may beat the reported winner.
        for i in 0..8u64 {
            let t = frugal_rollout(g, 6, 1u64.wrapping_add(i));
            if t.is_fully_connected() {
                assert!(best.average_hops() <= t.average_hops() + 1e-12);
            }
        }
    }
}
