//! The routerless NoC design environment — the paper's case study.

use crate::env::Environment;
use rlnoc_nn::Tensor;
use rlnoc_topology::{Direction, Grid, RectLoop, Topology, TopologyError};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// An agent action: propose adding the rectangular loop with diagonal
/// corners `(x1, y1)`, `(x2, y2)` and circulation `dir` — the paper's
/// `(x1, y1, x2, y2, dir)` encoding (§4.2).
///
/// Unlike [`RectLoop`], a `LoopAction` may be degenerate (`x1 == x2` or
/// `y1 == y2`): proposing one is an *invalid* action that earns a −1
/// penalty rather than a construction error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopAction {
    /// First corner column.
    pub x1: usize,
    /// First corner row.
    pub y1: usize,
    /// Second corner column.
    pub x2: usize,
    /// Second corner row.
    pub y2: usize,
    /// Packet circulation direction.
    pub dir: Direction,
}

impl LoopAction {
    /// Creates an action from raw coordinates.
    pub fn new(x1: usize, y1: usize, x2: usize, y2: usize, dir: Direction) -> Self {
        LoopAction {
            x1,
            y1,
            x2,
            y2,
            dir,
        }
    }

    /// Converts to a validated [`RectLoop`].
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DegenerateLoop`] for non-rectangular
    /// proposals.
    pub fn to_loop(self) -> Result<RectLoop, TopologyError> {
        RectLoop::new(self.x1, self.y1, self.x2, self.y2, self.dir)
    }

    /// The categorical indices `(x1, y1, x2, y2)` used by the four policy
    /// heads, plus the clockwise flag for the direction head.
    pub fn head_indices(self) -> ([usize; 4], bool) {
        (
            [self.x1, self.y1, self.x2, self.y2],
            self.dir == Direction::Clockwise,
        )
    }
}

impl From<RectLoop> for LoopAction {
    fn from(l: RectLoop) -> Self {
        let (x1, y1, x2, y2, d) = l.encode();
        LoopAction::new(x1, y1, x2, y2, Direction::from_bit(d))
    }
}

/// Wiring/design constraints enforced by the environment.
///
/// The paper's evaluation constrains node overlapping; §6.2 points out that
/// "other constraints, such as maximum loop length …, can also be
/// integrated into the reward function" — this type is where they live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignConstraints {
    /// Maximum loops through any node interface (wiring budget).
    pub overlap_cap: u32,
    /// Optional cap on a loop's perimeter length in nodes (bounds the
    /// worst-case on-loop latency and repeater cost).
    pub max_loop_length: Option<usize>,
}

impl DesignConstraints {
    /// Constraints with only the overlap cap set.
    pub fn overlap_only(cap: u32) -> Self {
        DesignConstraints {
            overlap_cap: cap,
            max_loop_length: None,
        }
    }
}

/// The routerless NoC environment: a [`Topology`] under construction with a
/// node-overlapping cap, implementing the paper's state encoding (§4.2) and
/// reward taxonomy (§4.3).
///
/// # Example
///
/// ```
/// use rlnoc_core::routerless::{RouterlessEnv, LoopAction};
/// use rlnoc_core::Environment;
/// use rlnoc_topology::{Direction, Grid};
///
/// let mut env = RouterlessEnv::new(Grid::square(2).unwrap(), 2);
/// let r = env.apply(LoopAction::new(0, 0, 1, 1, Direction::Clockwise));
/// assert_eq!(r, 0.0); // valid addition
/// let r = env.apply(LoopAction::new(0, 0, 1, 1, Direction::Clockwise));
/// assert_eq!(r, -1.0); // repetitive
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterlessEnv {
    grid: Grid,
    constraints: DesignConstraints,
    topo: Topology,
    mesh_avg: f64,
    /// Sum of all rewards received since the last reset (penalties plus the
    /// final return once terminal).
    reward_accum: f64,
}

impl RouterlessEnv {
    /// Creates a blank environment on `grid` with node-overlapping cap
    /// `cap` and no other constraints.
    pub fn new(grid: Grid, cap: u32) -> Self {
        RouterlessEnv::with_constraints(grid, DesignConstraints::overlap_only(cap))
    }

    /// Creates a blank environment with the full constraint set.
    pub fn with_constraints(grid: Grid, constraints: DesignConstraints) -> Self {
        RouterlessEnv {
            grid,
            constraints,
            topo: Topology::new(grid),
            mesh_avg: rlnoc_topology::mesh::average_hops(&grid),
            reward_accum: 0.0,
        }
    }

    /// The grid being designed for.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The node-overlapping cap.
    pub fn overlap_cap(&self) -> u32 {
        self.constraints.overlap_cap
    }

    /// All active design constraints.
    pub fn constraints(&self) -> &DesignConstraints {
        &self.constraints
    }

    /// Whether `ring` satisfies every constraint *other than* duplication
    /// against the current design (overlap cap and loop-length cap).
    pub fn satisfies_constraints(&self, ring: &RectLoop) -> bool {
        self.constraints
            .max_loop_length
            .is_none_or(|cap| ring.num_nodes() <= cap)
            && self
                .topo
                .overlap_violation(ring, self.constraints.overlap_cap)
                .is_none()
    }

    /// The design built so far.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Consumes the environment, returning the design.
    pub fn into_topology(self) -> Topology {
        self.topo
    }

    /// Average hop count of the current design (sentinel-weighted while
    /// incomplete).
    pub fn average_hops(&self) -> f64 {
        self.topo.average_hops()
    }

    /// Whether the current design is fully connected.
    pub fn is_fully_connected(&self) -> bool {
        self.topo.is_fully_connected()
    }

    /// The mesh average hop count used as the final-return reference.
    pub fn mesh_average_hops(&self) -> f64 {
        self.mesh_avg
    }

    /// The illegal-action penalty, −5·N for an N-wide grid (§4.3).
    pub fn illegal_penalty(&self) -> f64 {
        -(self.grid.unconnected_hops() as f64)
    }

    /// Classifies and applies an action without consuming it; shared by
    /// [`Environment::apply`].
    fn try_apply(&mut self, action: LoopAction) -> f64 {
        let ring = match action.to_loop() {
            Ok(r) => r,
            Err(_) => return -1.0, // invalid: not a rectangle
        };
        if ring.check_on(&self.grid).is_err() {
            return -1.0; // invalid: outside the grid
        }
        if self.topo.contains_loop(&ring) {
            return -1.0; // repetitive
        }
        if !self.satisfies_constraints(&ring) {
            return self.illegal_penalty(); // illegal: violates a constraint
        }
        self.topo
            .add_loop(ring)
            .expect("validated above; addition cannot fail");
        0.0
    }
}

impl Environment for RouterlessEnv {
    type Action = LoopAction;

    fn reset(&mut self) {
        self.topo = Topology::new(self.grid);
        self.reward_accum = 0.0;
    }

    fn state_key(&self) -> u64 {
        // Order-independent over the loop set: the same design reached via
        // different insertion orders is one MCTS node.
        let mut encoded: Vec<_> = self.topo.loops().iter().map(|l| l.encode()).collect();
        encoded.sort_unstable();
        let mut h = DefaultHasher::new();
        self.grid.hash(&mut h);
        encoded.hash(&mut h);
        h.finish()
    }

    fn state_tensor(&self) -> Tensor {
        let side = self.grid.len();
        let raw = self.topo.hop_matrix().to_state_tensor(&self.grid);
        // Normalize by the sentinel so inputs lie in [0, 1].
        let scale = 1.0 / self.grid.unconnected_hops() as f32;
        let data = raw.into_iter().map(|v| v * scale).collect();
        Tensor::from_vec(data, &[1, 1, side, side]).expect("N²·N² elements")
    }

    fn state_side(&self) -> usize {
        self.grid.len()
    }

    fn apply(&mut self, action: LoopAction) -> f64 {
        let r = self.try_apply(action);
        self.reward_accum += r;
        r
    }

    fn is_terminal(&self) -> bool {
        // Terminal when no legal loop remains under the cap.
        self.first_legal_action().is_none()
    }

    fn final_return(&self) -> f64 {
        self.mesh_avg - self.topo.average_hops()
    }

    fn legal_actions(&self) -> Vec<LoopAction> {
        let mut out = Vec::new();
        self.for_each_legal(|a| out.push(a));
        out
    }

    fn head_cardinality(&self) -> usize {
        self.grid.width().max(self.grid.height())
    }

    fn encode_action(&self, action: LoopAction) -> ([usize; 4], bool) {
        action.head_indices()
    }

    fn decode_action(&self, coords: [usize; 4], flag: bool) -> LoopAction {
        LoopAction::new(
            coords[0],
            coords[1],
            coords[2],
            coords[3],
            if flag {
                Direction::Clockwise
            } else {
                Direction::Counterclockwise
            },
        )
    }

    fn is_successful(&self) -> bool {
        self.is_fully_connected()
    }

    fn greedy_action(&self) -> Option<LoopAction> {
        crate::greedy::greedy_action(self)
    }

    fn completion_action(&self) -> Option<LoopAction> {
        if self.is_fully_connected() {
            crate::greedy::greedy_action(self)
        } else {
            crate::greedy::completion_action(self)
        }
    }
}

impl RouterlessEnv {
    /// Visits legal actions (both directions of every in-cap, non-duplicate
    /// rectangle) in scan order until `f` returns `false`.
    fn scan_legal(&self, mut f: impl FnMut(LoopAction) -> bool) {
        let (w, h) = (self.grid.width(), self.grid.height());
        for x1 in 0..w {
            for x2 in x1 + 1..w {
                for y1 in 0..h {
                    for y2 in y1 + 1..h {
                        let base = RectLoop::new(x1, y1, x2, y2, Direction::Clockwise)
                            .expect("non-degenerate by construction");
                        if !self.satisfies_constraints(&base) {
                            continue;
                        }
                        for ring in [base, base.reversed()] {
                            if !self.topo.contains_loop(&ring) && !f(ring.into()) {
                                return;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Visits every legal action.
    fn for_each_legal(&self, mut f: impl FnMut(LoopAction)) {
        self.scan_legal(|a| {
            f(a);
            true
        });
    }

    /// The first legal action in scan order, if any.
    pub fn first_legal_action(&self) -> Option<LoopAction> {
        let mut found = None;
        self.scan_legal(|a| {
            found = Some(a);
            false
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env4() -> RouterlessEnv {
        RouterlessEnv::new(Grid::square(4).unwrap(), 6)
    }

    #[test]
    fn reward_taxonomy() {
        let mut env = env4();
        // Valid.
        assert_eq!(
            env.apply(LoopAction::new(0, 0, 3, 3, Direction::Clockwise)),
            0.0
        );
        // Repetitive.
        assert_eq!(
            env.apply(LoopAction::new(0, 0, 3, 3, Direction::Clockwise)),
            -1.0
        );
        // Invalid (degenerate).
        assert_eq!(
            env.apply(LoopAction::new(1, 0, 1, 3, Direction::Clockwise)),
            -1.0
        );
        // Invalid (out of bounds).
        assert_eq!(
            env.apply(LoopAction::new(0, 0, 4, 4, Direction::Clockwise)),
            -1.0
        );
        assert_eq!(env.topology().loops().len(), 1);
    }

    #[test]
    fn illegal_penalty_is_5n() {
        let mut env = RouterlessEnv::new(Grid::square(4).unwrap(), 1);
        assert_eq!(
            env.apply(LoopAction::new(0, 0, 3, 3, Direction::Clockwise)),
            0.0
        );
        // Any loop sharing a node with the first now violates cap 1.
        let r = env.apply(LoopAction::new(0, 0, 3, 3, Direction::Counterclockwise));
        assert_eq!(r, -20.0, "-5*N for N=4");
    }

    #[test]
    fn state_key_order_independent() {
        let a1 = LoopAction::new(0, 0, 1, 1, Direction::Clockwise);
        let a2 = LoopAction::new(2, 2, 3, 3, Direction::Clockwise);
        let mut e1 = env4();
        e1.apply(a1);
        e1.apply(a2);
        let mut e2 = env4();
        e2.apply(a2);
        e2.apply(a1);
        assert_eq!(e1.state_key(), e2.state_key());
        let mut e3 = env4();
        e3.apply(a1);
        assert_ne!(e1.state_key(), e3.state_key());
    }

    #[test]
    fn state_tensor_shape_and_normalization() {
        let mut env = env4();
        let t = env.state_tensor();
        assert_eq!(t.shape(), &[1, 1, 16, 16]);
        // Blank design: all off-diagonal entries are the sentinel → 1.0.
        assert_eq!(t.max(), 1.0);
        env.apply(LoopAction::new(0, 0, 3, 3, Direction::Clockwise));
        let t = env.state_tensor();
        assert!(t.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn terminal_when_cap_exhausted() {
        let mut env = RouterlessEnv::new(Grid::square(2).unwrap(), 1);
        assert!(!env.is_terminal());
        env.apply(LoopAction::new(0, 0, 1, 1, Direction::Clockwise));
        // Every node now has overlap 1 = cap; the only other loop (reverse
        // direction) would violate it.
        assert!(env.is_terminal());
        assert!(env.legal_actions().is_empty());
    }

    #[test]
    fn legal_actions_complete_and_legal() {
        let mut env = RouterlessEnv::new(Grid::square(3).unwrap(), 2);
        env.apply(LoopAction::new(0, 0, 2, 2, Direction::Clockwise));
        let legal = env.legal_actions();
        assert!(!legal.is_empty());
        for a in legal {
            let mut probe = env.clone();
            assert_eq!(probe.apply(a), 0.0, "advertised legal action {a:?}");
        }
    }

    #[test]
    fn final_return_improves_with_connectivity() {
        let mut env = env4();
        let blank = env.final_return();
        env.apply(LoopAction::new(0, 0, 3, 3, Direction::Clockwise));
        env.apply(LoopAction::new(0, 0, 3, 3, Direction::Counterclockwise));
        assert!(env.final_return() > blank, "connecting nodes must help");
        assert!(env.final_return() < 0.0, "still worse than mesh");
    }

    #[test]
    fn reset_restores_blank_state() {
        let mut env = env4();
        let blank_key = env.state_key();
        env.apply(LoopAction::new(0, 0, 2, 2, Direction::Clockwise));
        assert_ne!(env.state_key(), blank_key);
        env.reset();
        assert_eq!(env.state_key(), blank_key);
        assert!(env.topology().loops().is_empty());
    }

    #[test]
    fn max_loop_length_constraint() {
        use crate::env::Environment as _;
        let constraints = DesignConstraints {
            overlap_cap: 6,
            max_loop_length: Some(8),
        };
        let mut env = RouterlessEnv::with_constraints(Grid::square(4).unwrap(), constraints);
        // The 12-node outer ring violates the length cap: illegal, −5·N.
        let r = env.apply(LoopAction::new(0, 0, 3, 3, Direction::Clockwise));
        assert_eq!(r, -20.0);
        // An 8-node loop is fine.
        let r = env.apply(LoopAction::new(0, 0, 1, 3, Direction::Clockwise));
        assert_eq!(r, 0.0);
        // Legal actions and greedy respect the cap.
        for a in env.legal_actions() {
            let ring = a.to_loop().unwrap();
            assert!(ring.num_nodes() <= 8, "advertised over-long loop {a:?}");
        }
        let g = env.greedy_action().unwrap();
        assert!(g.to_loop().unwrap().num_nodes() <= 8);
    }

    #[test]
    fn length_constrained_rollout() {
        // §6.2's "maximum loop length" scenario. A loop through a grid
        // corner is necessarily cornered there, so opposite corners can
        // only ever share the full outer ring (4N−4 nodes): a length cap
        // of exactly 4N−4 still permits full connectivity, while anything
        // tighter provably cannot connect the corners.
        use crate::env::Environment as _;
        let run = |max_len: usize| {
            let constraints = DesignConstraints {
                overlap_cap: 8,
                max_loop_length: Some(max_len),
            };
            let mut env = RouterlessEnv::with_constraints(Grid::square(4).unwrap(), constraints);
            while let Some(a) = env.greedy_action() {
                env.apply(a);
                if env.is_fully_connected() {
                    break;
                }
            }
            env
        };
        let tight = run(10);
        assert!(!tight.is_fully_connected(), "corners cannot connect");
        let corner_a = tight.grid().node_at(0, 0);
        let corner_b = tight.grid().node_at(3, 3);
        assert!(!tight
            .topology()
            .hop_matrix()
            .is_connected(corner_a, corner_b));
        assert!(tight.topology().loops().iter().all(|l| l.num_nodes() <= 10));

        let exact = run(12);
        assert!(exact.is_fully_connected());
        assert!(exact.topology().loops().iter().all(|l| l.num_nodes() <= 12));
    }

    #[test]
    fn head_indices_round_trip() {
        let a = LoopAction::new(1, 2, 3, 0, Direction::Counterclockwise);
        let (coords, cw) = a.head_indices();
        assert_eq!(coords, [1, 2, 3, 0]);
        assert!(!cw);
    }
}
