//! The deterministic chaos harness: every injected fault scenario must
//! either recover to the bit-identical clean-run result or fail with the
//! expected typed error — never a hang, never a silent wrong answer.
//!
//! Single-thread runs are fully deterministic, so recovery there is
//! asserted as *bit identity* (per-cycle outcomes and the training
//! history). Multi-thread runs interleave nondeterministically even
//! without faults, so at 8 threads the suite asserts completion and
//! accounting instead.

use rlnoc_core::checkpoint::prev_path;
use rlnoc_core::parallel::{explore_parallel_checkpointed, explore_parallel_supervised};
use rlnoc_core::{
    AnomalyKind, ChaosInjector, ChaosPlan, CheckpointConfig, ExploreCheckpoint, ExploreError,
    ExploreReport, ExplorerConfig, ResilienceConfig, RouterlessEnv, SupervisionConfig,
};
use rlnoc_telemetry::TelemetrySink;
use rlnoc_topology::Grid;
use std::time::{Duration, Instant};

fn env3() -> RouterlessEnv {
    RouterlessEnv::new(Grid::square(3).unwrap(), 4)
}

fn quick_config() -> ExplorerConfig {
    let mut c = ExplorerConfig::fast();
    c.max_steps = 30;
    c
}

/// Config with `plan` armed (and any policy tweaks applied by `tweak`).
fn chaos_config(plan: ChaosPlan, tweak: impl FnOnce(&mut ExplorerConfig)) -> ExplorerConfig {
    let mut c = quick_config();
    c.resilience.chaos = Some(ChaosInjector::new(plan));
    tweak(&mut c);
    c
}

/// The full per-cycle outcome signature used for bit-identity assertions.
fn sig(report: &ExploreReport<RouterlessEnv>) -> Vec<(usize, usize, bool, f64)> {
    report
        .designs
        .iter()
        .map(|d| (d.cycle, d.steps, d.successful, d.final_return))
        .collect()
}

fn run(
    config: &ExplorerConfig,
    threads: usize,
    cycles: usize,
    seed: u64,
) -> rlnoc_core::SupervisedReport<RouterlessEnv> {
    explore_parallel_supervised(
        &env3(),
        config,
        threads,
        cycles,
        seed,
        SupervisionConfig::default(),
    )
    .expect("scenario must recover, not fail")
}

#[test]
fn clean_run_is_bit_identical_with_resilience_on_or_off() {
    let enabled = quick_config(); // resilience on by default, no chaos
    let mut disabled = quick_config();
    disabled.resilience = ResilienceConfig::disabled();

    let a = run(&enabled, 1, 4, 11);
    let b = run(&disabled, 1, 4, 11);
    assert_eq!(sig(&a.report), sig(&b.report));
    assert_eq!(a.report.train_history, b.report.train_history);
    assert_eq!(a.supervision.anomalies, 0);
    assert!(a.anomaly_log.is_empty());
}

#[test]
fn nan_grad_recovery_is_bit_identical() {
    let clean = run(&quick_config(), 1, 4, 11);

    let mut plan = ChaosPlan::none();
    plan.nan_grad_cycles = vec![1];
    let cfg = chaos_config(plan, |_| {});
    let chaotic = run(&cfg, 1, 4, 11);

    assert_eq!(sig(&clean.report), sig(&chaotic.report));
    assert_eq!(clean.report.train_history, chaotic.report.train_history);
    assert_eq!(chaotic.supervision.anomalies, 1);
    assert_eq!(chaotic.supervision.rollbacks, 0, "grads rejected pre-step");
    assert_eq!(chaotic.anomaly_log.len(), 1);
    assert!(matches!(
        chaotic.anomaly_log[0].kind,
        AnomalyKind::NonFiniteGrad { tensor: 0 }
    ));
    assert_eq!(chaotic.anomaly_log[0].cycle, 1);
}

#[test]
fn exploding_grad_recovery_is_bit_identical() {
    // Arm the EWMA sentinel from the very first observation so a
    // mid-run 1e12x gradient spike trips it.
    let arm = |c: &mut ExplorerConfig| {
        c.resilience.anomaly.ewma_warmup = 1;
        c.resilience.anomaly.ewma_mult = 1e3;
    };
    let mut clean_cfg = quick_config();
    arm(&mut clean_cfg);
    let clean = run(&clean_cfg, 1, 4, 11);
    assert_eq!(clean.supervision.anomalies, 0, "sane norms must not trip");

    let mut plan = ChaosPlan::none();
    plan.explode_grad_cycles = vec![2];
    let cfg = chaos_config(plan, arm);
    let chaotic = run(&cfg, 1, 4, 11);

    assert_eq!(sig(&clean.report), sig(&chaotic.report));
    assert_eq!(clean.report.train_history, chaotic.report.train_history);
    assert_eq!(chaotic.supervision.anomalies, 1);
    assert!(matches!(
        chaotic.anomaly_log[0].kind,
        AnomalyKind::ExplodingGradNorm { .. }
    ));
}

#[test]
fn nan_param_rollback_is_bit_identical() {
    let clean = run(&quick_config(), 1, 4, 11);

    let mut plan = ChaosPlan::none();
    plan.nan_param_cycles = vec![1];
    let cfg = chaos_config(plan, |_| {});
    let chaotic = run(&cfg, 1, 4, 11);

    assert_eq!(sig(&clean.report), sig(&chaotic.report));
    assert_eq!(clean.report.train_history, chaotic.report.train_history);
    assert_eq!(chaotic.supervision.anomalies, 1);
    assert_eq!(
        chaotic.supervision.rollbacks, 1,
        "a poisoned parameter forces a snapshot rollback"
    );
    assert!(matches!(
        chaotic.anomaly_log[0].kind,
        AnomalyKind::NonFiniteParam { .. }
    ));
}

#[test]
fn worker_panic_recovery_is_bit_identical() {
    // The RNG escrow hands the respawned incarnation the exact stream the
    // panicked one was on, so even a panic recovers bit-identically.
    let clean = run(&quick_config(), 1, 4, 11);

    let mut plan = ChaosPlan::none();
    plan.panic_cycles = vec![1];
    let cfg = chaos_config(plan, |_| {});
    let chaotic = run(&cfg, 1, 4, 11);

    assert_eq!(sig(&clean.report), sig(&chaotic.report));
    assert_eq!(clean.report.train_history, chaotic.report.train_history);
    assert_eq!(chaotic.supervision.panics, 1);
    assert_eq!(chaotic.supervision.respawns, 1);
    assert_eq!(chaotic.supervision.workers_lost, 0);
}

#[test]
fn stall_is_detected_interrupted_and_bit_identical() {
    let clean = run(&quick_config(), 1, 3, 11);

    let mut plan = ChaosPlan::none();
    plan.stall_cycles = vec![1];
    plan.stall_window = Duration::from_secs(60); // watchdog must cut this short
    let cfg = chaos_config(plan, |c| {
        c.resilience.watchdog.deadline = Duration::from_millis(200);
        c.resilience.watchdog.poll = Duration::from_millis(25);
    });
    let start = Instant::now();
    let chaotic = run(&cfg, 1, 3, 11);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "watchdog interrupt must beat the 60s stall window"
    );
    assert!(chaotic.supervision.stalls_detected >= 1);
    assert!(chaotic.supervision.stalls_recovered >= 1);
    // A stall consumes no randomness, so results are still bit-identical.
    assert_eq!(sig(&clean.report), sig(&chaotic.report));
    assert_eq!(clean.report.train_history, chaotic.report.train_history);
}

#[test]
fn persistent_anomaly_quarantines_with_typed_error() {
    let mut plan = ChaosPlan::none();
    plan.persistent_nan_grad_cycles = vec![1];
    let telemetry = TelemetrySink::enabled();
    let cfg = chaos_config(plan, |c| {
        c.resilience.anomaly.max_retries = 2;
        c.resilience.anomaly.backoff_base = Duration::from_millis(1);
        c.telemetry = telemetry.clone();
    });
    let err = explore_parallel_supervised(&env3(), &cfg, 1, 4, 11, SupervisionConfig::default())
        .expect_err("a persistent fault must end in a typed error");
    match err {
        ExploreError::Numerical {
            report,
            partial,
            requested,
        } => {
            assert_eq!(requested, 4);
            assert!(matches!(report.kind, AnomalyKind::NonFiniteGrad { .. }));
            assert_eq!(report.cycle, 1);
            assert_eq!(report.consecutive, 3, "initial attempt + 2 retries");
            assert_eq!(partial.supervision.quarantined, 1);
            assert_eq!(partial.supervision.anomalies, 3);
            assert_eq!(
                partial.report.cycles_run, 1,
                "cycle 0 completed before the quarantine"
            );
            assert_eq!(partial.anomaly_log.len(), 3);
        }
        other => panic!("expected Numerical, got {other:?}"),
    }
    assert_eq!(telemetry.counter_total("anomaly.nonfinite_grad"), 3);
    assert_eq!(telemetry.counter_total("anomaly.total"), 3);
    assert_eq!(telemetry.counter_total("worker.quarantined"), 1);
}

#[test]
fn seeded_chaos_suite_completes_at_8_threads() {
    // A mixed seeded fault schedule at full thread count: the contract
    // here is liveness and accounting — every cycle completes exactly
    // once, nothing hangs, and the run reports what it absorbed.
    let mut plan = ChaosPlan::seeded(23, 12, 5);
    plan.stall_window = Duration::from_millis(300); // self-expiring stalls
    let injector = ChaosInjector::new(plan);
    let mut cfg = quick_config();
    cfg.resilience.chaos = Some(injector.clone());
    cfg.resilience.anomaly.ewma_warmup = 1;
    let out = explore_parallel_supervised(&env3(), &cfg, 8, 12, 29, SupervisionConfig::default())
        .expect("a recoverable schedule must complete");
    assert_eq!(out.report.cycles_run, 12);
    let mut cycles: Vec<_> = out.report.designs.iter().map(|d| d.cycle).collect();
    cycles.sort_unstable();
    assert_eq!(cycles, (0..12).collect::<Vec<_>>());
    assert!(injector.injected() > 0, "the schedule actually fired");
    assert_eq!(out.supervision.panics, 1, "one panic cycle in the plan");
    assert_eq!(out.supervision.workers_lost, 0);
    assert_eq!(out.supervision.quarantined, 0);
}

#[test]
fn torn_checkpoint_recovers_from_prev_bit_identically() {
    let base = std::env::temp_dir().join(format!("rlnoc_chaos_ckpt_{}", std::process::id()));
    let torn = base.with_extension("torn.json");
    let clean = base.with_extension("clean.json");
    for p in [&torn, &clean] {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(prev_path(p));
    }
    let env = env3();
    let sup = SupervisionConfig::default();

    // Baseline: one uninterrupted 6-cycle checkpointed run.
    let full = explore_parallel_checkpointed(
        &env,
        &quick_config(),
        1,
        6,
        17,
        sup,
        &CheckpointConfig::new(&clean, 2),
    )
    .unwrap();

    // Crashed run: 3 cycles saved (checkpoints at 2 and 3, `.prev` holds
    // the cycles_done=2 generation), then the primary write is torn.
    let ckpt = CheckpointConfig::new(&torn, 2);
    explore_parallel_checkpointed(&env, &quick_config(), 1, 3, 17, sup, &ckpt).unwrap();
    let bytes = std::fs::read(&torn).unwrap();
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();

    // Resume: the torn primary is rejected, `.prev` (cycles_done=2) is
    // recovered, and the remaining cycles replay bit-identically.
    let telemetry = TelemetrySink::enabled();
    let mut cfg = quick_config();
    cfg.telemetry = telemetry.clone();
    let resumed = explore_parallel_checkpointed(&env, &cfg, 1, 6, 17, sup, &ckpt).unwrap();
    assert_eq!(resumed.resumed_from, 2);
    assert_eq!(telemetry.counter_total("checkpoint.recovered_prev"), 1);
    let replayed = sig(&resumed.report);
    let baseline: Vec<_> = sig(&full.report)
        .into_iter()
        .filter(|(c, ..)| *c >= 2)
        .collect();
    assert_eq!(replayed, baseline, "recovered run replays bit-identically");
    let cp = ExploreCheckpoint::<RouterlessEnv>::load(&torn).unwrap();
    assert_eq!(cp.cycles_done, 6);

    // Both generations damaged: a typed error, never a panic or a silent
    // fresh start.
    std::fs::write(&torn, b"RLNOC-CKPT v2 9999\ngarbage").unwrap();
    std::fs::write(prev_path(&torn), b"RLNOC-CKPT v2 9999\ngarbage").unwrap();
    let err = explore_parallel_checkpointed(&env, &quick_config(), 1, 6, 17, sup, &ckpt)
        .expect_err("two damaged generations cannot silently restart");
    assert!(matches!(err, ExploreError::Checkpoint(_)), "got {err:?}");

    for p in [&torn, &clean] {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(prev_path(p));
    }
}
