//! Property tests for checkpoint integrity: arbitrary truncations and
//! single-byte corruptions of a saved checkpoint must always surface as a
//! typed [`CheckpointError`] — never a panic, never a silently-resumed
//! wrong state — and as long as the rotated `.prev` generation is intact,
//! recovery serves it (except for a version mismatch, which deliberately
//! never falls back).

use proptest::prelude::*;
use rlnoc_core::checkpoint::{prev_path, CheckpointError, CheckpointSource, ExploreCheckpoint};
use rlnoc_core::{DesignResult, RouterlessEnv};
use rlnoc_topology::Grid;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rlnoc_ckpt_prop_{}_{name}.json",
        std::process::id()
    ))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(prev_path(path));
}

fn sample(cycles_done: usize) -> ExploreCheckpoint<RouterlessEnv> {
    let env = RouterlessEnv::new(Grid::square(3).expect("3x3 grid"), 4);
    ExploreCheckpoint {
        cycles_done,
        seed: 7,
        param_generation: cycles_done as u64,
        params: vec![rlnoc_nn::Tensor::full(&[3, 2], 0.5)],
        learner: None,
        best: Some(DesignResult {
            env,
            final_return: -0.5,
            cycle: 1,
            steps: 4,
            successful: true,
        }),
    }
}

/// A freshly-saved checkpoint's on-disk bytes.
fn saved_bytes(name: &str) -> Vec<u8> {
    let path = scratch(name);
    cleanup(&path);
    sample(3).save(&path).expect("save succeeds");
    let bytes = std::fs::read(&path).expect("read back");
    cleanup(&path);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every proper prefix of a checkpoint file decodes to a typed error.
    #[test]
    fn any_truncation_is_a_typed_error(keep_permille in 0u32..1000) {
        let bytes = saved_bytes("trunc");
        let keep = (bytes.len() as u64 * u64::from(keep_permille) / 1000) as usize;
        prop_assert!(keep < bytes.len());
        let err = ExploreCheckpoint::<RouterlessEnv>::decode(&bytes[..keep])
            .expect_err("a truncated checkpoint must never load");
        prop_assert!(matches!(
            err,
            CheckpointError::Truncated { .. }
                | CheckpointError::Corrupt { .. }
                | CheckpointError::Format(_)
                | CheckpointError::VersionMismatch { .. }
        ));
    }

    /// Flipping any single byte anywhere in the file decodes to a typed
    /// error: payload flips fail the CRC, header flips fail framing or
    /// version validation, footer flips fail the checksum parse/compare.
    #[test]
    fn any_single_byte_flip_is_a_typed_error(
        pos_permille in 0u32..1000,
        mask in 1u32..256,
    ) {
        let mut bytes = saved_bytes("flip");
        let pos = (bytes.len() as u64 * u64::from(pos_permille) / 1000) as usize;
        bytes[pos] ^= mask as u8;
        let err = ExploreCheckpoint::<RouterlessEnv>::decode(&bytes)
            .expect_err("a corrupted checkpoint must never load");
        prop_assert!(matches!(
            err,
            CheckpointError::Truncated { .. }
                | CheckpointError::Corrupt { .. }
                | CheckpointError::Format(_)
                | CheckpointError::VersionMismatch { .. }
        ));
    }

    /// With an intact `.prev` generation, recovery from an arbitrarily
    /// corrupted primary either serves the previous generation or — only
    /// when the flip forged a different format version — surfaces the
    /// mismatch without falling back.
    #[test]
    fn recovery_serves_prev_unless_version_forged(
        pos_permille in 0u32..1000,
        mask in 1u32..256,
    ) {
        let path = scratch("recover");
        cleanup(&path);
        sample(1).save(&path).expect("first save");
        sample(2).save(&path).expect("second save rotates the first");
        let mut bytes = std::fs::read(&path).expect("read primary");
        let pos = (bytes.len() as u64 * u64::from(pos_permille) / 1000) as usize;
        bytes[pos] ^= mask as u8;
        std::fs::write(&path, &bytes).expect("write corrupted primary");
        match ExploreCheckpoint::<RouterlessEnv>::load_with_recovery(&path) {
            Ok((cp, source)) => {
                // Either the flip landed somewhere harmless enough that the
                // primary still validates (impossible for payload bytes, the
                // CRC covers those) or recovery fell back to `.prev`.
                match source {
                    CheckpointSource::Primary => prop_assert_eq!(cp.cycles_done, 2),
                    CheckpointSource::Previous => prop_assert_eq!(cp.cycles_done, 1),
                }
            }
            Err(CheckpointError::VersionMismatch { .. }) => {
                // Deliberate: an unknown version never silently resumes an
                // older generation.
            }
            Err(other) => {
                cleanup(&path);
                prop_assert!(false, "recovery failed with {other:?} despite intact .prev");
            }
        }
        cleanup(&path);
    }
}
