use std::error::Error;
use std::fmt;

/// Errors produced by tensor and network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Two tensors (or a tensor and an expectation) had incompatible shapes.
    ShapeMismatch {
        /// Shape that was expected by the operation.
        expected: Vec<usize>,
        /// Shape that was provided.
        actual: Vec<usize>,
    },
    /// A reshape would change the number of elements.
    BadReshape {
        /// Element count of the source tensor.
        from: usize,
        /// Element count implied by the requested shape.
        to: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            NnError::BadReshape { from, to } => {
                write!(f, "reshape changes element count from {from} to {to}")
            }
        }
    }
}

impl Error for NnError {}
