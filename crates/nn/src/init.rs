//! Weight initialization: deterministic He/Xavier schemes.

use crate::Tensor;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Draws a tensor with the given shape from a uniform distribution scaled
/// by the He fan-in rule, `U(-b, b)` with `b = sqrt(6 / fan_in)` — suitable
/// for ReLU networks.
pub fn he_uniform(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(shape, bound, rng)
}

/// Draws a tensor from the Xavier/Glorot uniform distribution,
/// `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))` — suitable for
/// tanh/linear outputs.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, bound, rng)
}

fn uniform(shape: &[usize], bound: f32, rng: &mut StdRng) -> Tensor {
    let len: usize = shape.iter().product();
    let data = (0..len).map(|_| rng.gen_range(-bound..bound)).collect();
    Tensor::from_vec(data, shape).expect("length matches shape by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = he_uniform(&[64, 64], 64, &mut rng);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound));
        // Not all identical (RNG actually used).
        assert!(t.as_slice().iter().any(|&x| x != t.as_slice()[0]));
    }

    #[test]
    fn xavier_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            xavier_uniform(&[8, 8], 8, 8, &mut a),
            xavier_uniform(&[8, 8], 8, 8, &mut b)
        );
    }
}
