//! Thread-local telemetry hook for kernel and network timings.
//!
//! The nn crate sits below the layers that own a
//! [`TelemetrySink`](rlnoc_telemetry::TelemetrySink), so instrumentation is
//! injected per thread: a caller (the explorer, a parallel worker, a bench
//! binary) [`install`]s a [`Recorder`] on the thread about to run network
//! code, and the GEMM/conv/forward paths record into it. With no recorder
//! installed — the default — every probe is one thread-local load and a
//! branch, with no allocation and no clock read, preserving the
//! zero-overhead-when-disabled contract.

use rlnoc_telemetry::{Recorder, Timer};
use std::cell::RefCell;

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs `recorder` as this thread's kernel-timing sink, returning the
/// previously installed one (flush or re-install it as appropriate).
/// Disabled recorders are not installed — the hot paths then skip probe
/// work entirely.
pub fn install(recorder: Recorder) -> Option<Recorder> {
    if !recorder.is_enabled() {
        return None;
    }
    RECORDER.with(|slot| slot.borrow_mut().replace(recorder))
}

/// Removes and returns this thread's recorder, if any. Dropping the
/// returned recorder flushes its accumulated timings.
pub fn take() -> Option<Recorder> {
    RECORDER.with(|slot| slot.borrow_mut().take())
}

/// True when a live recorder is installed on this thread.
pub fn is_active() -> bool {
    RECORDER.with(|slot| slot.borrow().is_some())
}

/// Installs `recorder` for the lifetime of the returned guard, restoring
/// whatever was previously installed (usually nothing) on drop. Panic-safe:
/// an unwinding scope still flushes the scoped recorder and puts the old
/// one back, so chaos-injected panics cannot leak a stale sink into the
/// respawned worker's thread.
pub fn install_scoped(recorder: Recorder) -> InstallGuard {
    InstallGuard {
        prev: install(recorder),
    }
}

/// RAII guard returned by [`install_scoped`]; see there.
#[derive(Debug)]
pub struct InstallGuard {
    prev: Option<Recorder>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        // Dropping the outgoing recorder flushes its timings.
        drop(take());
        if let Some(prev) = self.prev.take() {
            install(prev);
        }
    }
}

/// Starts a timer on the installed recorder (inert when none).
pub(crate) fn start() -> Timer {
    RECORDER.with(|slot| match slot.borrow().as_ref() {
        Some(rec) => rec.timer(),
        None => Timer::inert(),
    })
}

/// Records a started timer's elapsed microseconds into `name`.
pub(crate) fn record_since(name: &'static str, timer: Timer) {
    if !timer.is_started() {
        return;
    }
    RECORDER.with(|slot| {
        if let Some(rec) = slot.borrow_mut().as_mut() {
            rec.observe_timer(name, timer);
        }
    });
}

/// Records one histogram sample into `name` (no-op when inactive).
pub(crate) fn record_value(name: &'static str, value: u64) {
    RECORDER.with(|slot| {
        if let Some(rec) = slot.borrow_mut().as_mut() {
            rec.record(name, value);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnoc_telemetry::TelemetrySink;

    #[test]
    fn install_guard_restores_previous_recorder() {
        let outer = TelemetrySink::enabled();
        let inner = TelemetrySink::enabled();
        drop(take());
        install(outer.recorder("outer"));
        {
            let _guard = install_scoped(inner.recorder("inner"));
            assert!(is_active());
            record_value("probe.samples", 1);
        }
        // Scoped recorder flushed on drop; the outer one is back.
        assert!(is_active());
        assert!(
            inner.totals().hist("probe.samples").is_some(),
            "inner recorder flushed its state"
        );
        assert!(outer.totals().hist("probe.samples").is_none());
        drop(take());
        assert!(!is_active());
    }

    #[test]
    fn install_guard_flushes_on_unwind() {
        let sink = TelemetrySink::enabled();
        drop(take());
        let unwound = std::panic::catch_unwind(|| {
            let _guard = install_scoped(sink.recorder("doomed"));
            record_value("probe.samples", 7);
            panic!("injected");
        });
        assert!(unwound.is_err());
        assert!(!is_active(), "guard removed the recorder during unwind");
        assert!(
            sink.totals().hist("probe.samples").is_some(),
            "unwound scope still flushed"
        );
    }
}
