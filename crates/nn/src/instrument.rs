//! Thread-local telemetry hook for kernel and network timings.
//!
//! The nn crate sits below the layers that own a
//! [`TelemetrySink`](rlnoc_telemetry::TelemetrySink), so instrumentation is
//! injected per thread: a caller (the explorer, a parallel worker, a bench
//! binary) [`install`]s a [`Recorder`] on the thread about to run network
//! code, and the GEMM/conv/forward paths record into it. With no recorder
//! installed — the default — every probe is one thread-local load and a
//! branch, with no allocation and no clock read, preserving the
//! zero-overhead-when-disabled contract.

use rlnoc_telemetry::{Recorder, Timer};
use std::cell::RefCell;

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs `recorder` as this thread's kernel-timing sink, returning the
/// previously installed one (flush or re-install it as appropriate).
/// Disabled recorders are not installed — the hot paths then skip probe
/// work entirely.
pub fn install(recorder: Recorder) -> Option<Recorder> {
    if !recorder.is_enabled() {
        return None;
    }
    RECORDER.with(|slot| slot.borrow_mut().replace(recorder))
}

/// Removes and returns this thread's recorder, if any. Dropping the
/// returned recorder flushes its accumulated timings.
pub fn take() -> Option<Recorder> {
    RECORDER.with(|slot| slot.borrow_mut().take())
}

/// True when a live recorder is installed on this thread.
pub fn is_active() -> bool {
    RECORDER.with(|slot| slot.borrow().is_some())
}

/// Starts a timer on the installed recorder (inert when none).
pub(crate) fn start() -> Timer {
    RECORDER.with(|slot| match slot.borrow().as_ref() {
        Some(rec) => rec.timer(),
        None => Timer::inert(),
    })
}

/// Records a started timer's elapsed microseconds into `name`.
pub(crate) fn record_since(name: &'static str, timer: Timer) {
    if !timer.is_started() {
        return;
    }
    RECORDER.with(|slot| {
        if let Some(rec) = slot.borrow_mut().as_mut() {
            rec.observe_timer(name, timer);
        }
    });
}

/// Records one histogram sample into `name` (no-op when inactive).
pub(crate) fn record_value(name: &'static str, value: u64) {
    RECORDER.with(|slot| {
        if let Some(rec) = slot.borrow_mut().as_mut() {
            rec.record(name, value);
        }
    });
}
