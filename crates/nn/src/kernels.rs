//! Cache-blocked GEMM kernels behind [`crate::Tensor::matmul`] and the
//! im2col convolution path.
//!
//! The single entry point is [`gemm`]: `C = op(A) × op(B)` over row-major
//! `f32` slices, with optional logical transposition of either operand (so
//! callers never materialize a transposed copy). The implementation follows
//! the classic BLIS/GotoBLAS structure:
//!
//! - loop over `NC`-wide column panels of `C`,
//! - loop over `KC`-deep slices of the reduction dimension, packing a
//!   `KC × NC` panel of `B` into contiguous micro-columns,
//! - loop over `MC`-tall row panels, packing an `MC × KC` panel of `A` into
//!   contiguous micro-rows,
//! - run an `MR × NR` register-tiled micro-kernel over the packed panels.
//!
//! When `m·k·n` crosses [`PARALLEL_FLOPS`], rows of `C` are partitioned
//! into contiguous bands, one scoped thread per band. Each output element
//! sees exactly the same floating-point operation order regardless of the
//! band split, so **results are bit-identical for any thread count** — the
//! determinism tests rely on this. The thread budget can be pinned with
//! [`set_matmul_threads`] (`0` restores the automatic choice).
//!
//! There is no `a == 0.0` fast path anywhere in this module: `0 × NaN` and
//! `0 × ∞` must produce `NaN`, exactly as IEEE-754 specifies. The naive
//! oracle used by the parity tests lives in [`crate::reference`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Micro-tile rows held in registers by the micro-kernel.
const MR: usize = 4;
/// Micro-tile columns held in registers by the micro-kernel.
///
/// `MR × NR` accumulators must fit the architectural register file even on
/// baseline x86-64 (16 × 128-bit): 4×8 = 8 vector registers, leaving room
/// for the `A` broadcast and `B` row loads. Wider tiles spill and run
/// slower than the naive loop unless AVX registers are available.
const NR: usize = 8;
/// Row-panel height of packed `A` (L2-resident blocking).
const MC: usize = 128;
/// Reduction-depth of packed panels (L1/L2-resident blocking).
const KC: usize = 256;
/// Column-panel width of packed `B` (L3-resident blocking).
const NC: usize = 4096;

/// Multiply-add count above which the row-parallel path engages.
const PARALLEL_FLOPS: usize = 1 << 21;

/// Upper bound on automatically chosen matmul threads.
const MAX_AUTO_THREADS: usize = 8;

static MATMUL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pins the number of threads large matmuls may use.
///
/// `0` restores the automatic choice (`available_parallelism`, capped).
/// `1` forces the serial path. Results are identical for every setting;
/// only wall-clock changes.
pub fn set_matmul_threads(threads: usize) {
    MATMUL_THREADS.store(threads, Ordering::Relaxed);
}

/// The currently configured matmul thread setting (`0` = automatic).
pub fn matmul_threads() -> usize {
    MATMUL_THREADS.load(Ordering::Relaxed)
}

fn effective_threads(m: usize, k: usize, n: usize) -> usize {
    let work = m.saturating_mul(k).saturating_mul(n);
    if work < PARALLEL_FLOPS {
        return 1;
    }
    let budget = match MATMUL_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_AUTO_THREADS),
        pinned => pinned,
    };
    // A thread should own at least one full micro-row band.
    budget.max(1).min(m.div_ceil(MR))
}

/// General matrix multiply over row-major slices:
/// `C[m, n] = op(A) × op(B)`, overwriting `C`.
///
/// `trans_a == false`: `A` is stored `[m, k]`; `true`: stored `[k, m]` and
/// used as its transpose. Likewise `B` is `[k, n]` or `[n, k]`.
///
/// # Panics
/// Panics if a slice length does not match its dimensions.
#[allow(clippy::too_many_arguments)] // BLAS-style sgemm signature
pub fn gemm(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm: lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm: rhs length mismatch");
    assert_eq!(c.len(), m * n, "gemm: out length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let timer = crate::instrument::start();

    let threads = effective_threads(m, k, n);
    if threads <= 1 {
        gemm_band(trans_a, trans_b, m, k, n, a, b, c, 0);
        crate::instrument::record_since("nn.gemm_us", timer);
        return;
    }

    // Split C into contiguous row bands, one per thread. Band boundaries
    // only decide *which thread* computes a row, never *how* it is
    // computed, so the split cannot perturb results.
    let band_rows = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut row = 0;
        while row < m {
            let rows = band_rows.min(m - row);
            let (band, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let start = row;
            scope.spawn(move || {
                gemm_band(trans_a, trans_b, rows, k, n, a, b, band, start);
            });
            row += rows;
        }
    });
    crate::instrument::record_since("nn.gemm_us", timer);
}

/// Computes rows `[row0, row0 + rows)` of `C` into `c_band` (whose row 0 is
/// global row `row0`). `k`/`n` are the full problem dimensions.
#[allow(clippy::too_many_arguments)]
fn gemm_band(
    trans_a: bool,
    trans_b: bool,
    rows: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_band: &mut [f32],
    row0: usize,
) {
    let mut packed_a = vec![0.0f32; MC.div_ceil(MR) * MR * KC];
    let mut packed_b = vec![0.0f32; KC * NC.div_ceil(NR) * NR];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(trans_b, b, k, n, pc, kc, jc, nc, &mut packed_b);
            let accumulate = pc > 0;
            for ic in (0..rows).step_by(MC) {
                let mc = MC.min(rows - ic);
                pack_a(trans_a, a, k, row0 + ic, mc, pc, kc, &mut packed_a);
                macro_kernel(
                    &packed_a, &packed_b, c_band, ic, mc, jc, nc, kc, n, accumulate,
                );
            }
        }
    }
}

/// Packs `A[i0..i0+mc, p0..p0+kc]` into MR-tall micro-rows:
/// `packed[(ir/MR)·(kc·MR) + p·MR + i] = A[i0+ir+i, p0+p]`, zero-padded to
/// a multiple of MR rows. `a_rows_len` is the stored row length of `A`
/// (`k` when not transposed; the logical row count `m` when transposed).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    trans_a: bool,
    a: &[f32],
    k: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    packed: &mut [f32],
) {
    let lda = if trans_a { a.len() / k } else { k };
    let mut dst = 0;
    for ir in (0..mc).step_by(MR) {
        let tile_rows = MR.min(mc - ir);
        for p in 0..kc {
            for i in 0..MR {
                packed[dst] = if i < tile_rows {
                    let (row, col) = (i0 + ir + i, p0 + p);
                    if trans_a {
                        a[col * lda + row]
                    } else {
                        a[row * lda + col]
                    }
                } else {
                    0.0
                };
                dst += 1;
            }
        }
    }
}

/// Packs `B[p0..p0+kc, j0..j0+nc]` into NR-wide micro-columns:
/// `packed[(jr/NR)·(kc·NR) + p·NR + j] = B[p0+p, j0+jr+j]`, zero-padded to
/// a multiple of NR columns.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    trans_b: bool,
    b: &[f32],
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    packed: &mut [f32],
) {
    let ldb = if trans_b { k } else { n };
    let mut dst = 0;
    for jr in (0..nc).step_by(NR) {
        let tile_cols = NR.min(nc - jr);
        for p in 0..kc {
            for j in 0..NR {
                packed[dst] = if j < tile_cols {
                    let (row, col) = (p0 + p, j0 + jr + j);
                    if trans_b {
                        b[col * ldb + row]
                    } else {
                        b[row * ldb + col]
                    }
                } else {
                    0.0
                };
                dst += 1;
            }
        }
    }
}

/// Runs the micro-kernel over every MR×NR tile of the packed panels and
/// writes (or accumulates) results into the `C` band.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    packed_a: &[f32],
    packed_b: &[f32],
    c_band: &mut [f32],
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
    n: usize,
    accumulate: bool,
) {
    for jr in (0..nc).step_by(NR) {
        let tile_cols = NR.min(nc - jr);
        let b_tile = &packed_b[(jr / NR) * (kc * NR)..][..kc * NR];
        for ir in (0..mc).step_by(MR) {
            let tile_rows = MR.min(mc - ir);
            let a_tile = &packed_a[(ir / MR) * (kc * MR)..][..kc * MR];
            let acc = micro_kernel(a_tile, b_tile, kc);
            for i in 0..tile_rows {
                let row = &mut c_band[(ic + ir + i) * n + jc + jr..][..tile_cols];
                if accumulate {
                    for (dst, &v) in row.iter_mut().zip(&acc[i][..tile_cols]) {
                        *dst += v;
                    }
                } else {
                    row.copy_from_slice(&acc[i][..tile_cols]);
                }
            }
        }
    }
}

/// The register-tiled inner kernel: an MR×NR rank-`kc` outer-product
/// accumulation over packed micro-panels. The fixed-size accumulator array
/// keeps everything in registers and lets the compiler vectorize the `j`
/// loop.
#[inline(always)]
fn micro_kernel(a_tile: &[f32], b_tile: &[f32], kc: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let a_col: &[f32] = &a_tile[p * MR..p * MR + MR];
        let b_row: &[f32] = &b_tile[p * NR..p * NR + NR];
        for i in 0..MR {
            let ai = a_col[i];
            for j in 0..NR {
                acc[i][j] += ai * b_row[j];
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::Tensor;
    use rand::prelude::*;

    fn random_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0..2.0f32)).collect()
    }

    fn assert_close(actual: &[f32], expected: &[f32], tol: f32, what: &str) {
        assert_eq!(actual.len(), expected.len(), "{what}: length");
        for (i, (&x, &y)) in actual.iter().zip(expected).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    /// Shapes chosen to exercise every edge path: tiles smaller than
    /// MR/NR, exact multiples, ragged remainders, and panels larger than
    /// one MC/KC/NC block.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 2),
        (4, 16, 16),
        (5, 7, 33),
        (17, 9, 64),
        (64, 300, 20),
        (130, 70, 130),
    ];

    #[test]
    fn gemm_matches_naive_reference() {
        let mut rng = StdRng::seed_from_u64(100);
        for &(m, k, n) in SHAPES {
            let a = Tensor::from_vec(random_vec(&mut rng, m * k), &[m, k]).unwrap();
            let b = Tensor::from_vec(random_vec(&mut rng, k * n), &[k, n]).unwrap();
            let expected = reference::matmul_naive(&a, &b);
            let mut c = vec![0.0f32; m * n];
            gemm(false, false, m, k, n, a.as_slice(), b.as_slice(), &mut c);
            assert_close(&c, expected.as_slice(), 1e-5, &format!("nn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn gemm_transposed_operands_match_reference() {
        let mut rng = StdRng::seed_from_u64(101);
        for &(m, k, n) in SHAPES {
            let a = Tensor::from_vec(random_vec(&mut rng, m * k), &[m, k]).unwrap();
            let b = Tensor::from_vec(random_vec(&mut rng, k * n), &[k, n]).unwrap();
            let expected = reference::matmul_naive(&a, &b);
            let at = a.transpose();
            let bt = b.transpose();

            let mut c = vec![0.0f32; m * n];
            gemm(true, false, m, k, n, at.as_slice(), b.as_slice(), &mut c);
            assert_close(&c, expected.as_slice(), 1e-5, &format!("tn {m}x{k}x{n}"));

            c.fill(f32::NAN);
            gemm(false, true, m, k, n, a.as_slice(), bt.as_slice(), &mut c);
            assert_close(&c, expected.as_slice(), 1e-5, &format!("nt {m}x{k}x{n}"));

            c.fill(f32::NAN);
            gemm(true, true, m, k, n, at.as_slice(), bt.as_slice(), &mut c);
            assert_close(&c, expected.as_slice(), 1e-5, &format!("tt {m}x{k}x{n}"));
        }
    }

    #[test]
    fn zero_times_nan_propagates() {
        // The old kernel skipped rows where a == 0.0, silently turning
        // 0 × NaN into 0. IEEE-754 requires NaN.
        let a = [0.0f32, 0.0];
        let b = [f32::NAN, 1.0];
        let mut c = [0.0f32];
        gemm(false, false, 1, 2, 1, &a, &b, &mut c);
        assert!(c[0].is_nan(), "0 * NaN must be NaN, got {}", c[0]);

        let b_inf = [f32::INFINITY, 1.0];
        gemm(false, false, 1, 2, 1, &a, &b_inf, &mut c);
        assert!(c[0].is_nan(), "0 * inf must be NaN, got {}", c[0]);
    }

    #[test]
    fn results_invariant_to_thread_count() {
        let (m, k, n) = (96, 280, 96); // above PARALLEL_FLOPS with threads pinned
        let mut rng = StdRng::seed_from_u64(102);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);

        let previous = matmul_threads();
        let mut runs = Vec::new();
        for threads in [1, 2, 3, 7] {
            set_matmul_threads(threads);
            let mut c = vec![0.0f32; m * n];
            gemm(false, false, m, k, n, &a, &b, &mut c);
            runs.push(c);
        }
        set_matmul_threads(previous);

        for run in &runs[1..] {
            assert_eq!(&runs[0], run, "thread count changed matmul bits");
        }
    }

    #[test]
    fn empty_reduction_zeroes_output() {
        let mut c = [7.0f32, 7.0];
        gemm(false, false, 1, 0, 2, &[], &[], &mut c);
        assert_eq!(c, [0.0, 0.0]);
    }
}
