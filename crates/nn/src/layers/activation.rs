use super::Layer;
use crate::Tensor;

/// Rectified linear unit, `max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cache: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.cache = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.as_ref().expect("backward before forward");
        assert_eq!(x.shape(), grad_out.shape(), "gradient shape mismatch");
        let mut g = grad_out.clone();
        for (gi, &xi) in g.as_mut_slice().iter_mut().zip(x.as_slice()) {
            if xi <= 0.0 {
                *gi = 0.0;
            }
        }
        g
    }
}

/// Hyperbolic tangent activation, used by the paper for the loop-direction
/// head (`dir > 0` ⇒ clockwise).
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cache: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let y = x.map(f32::tanh);
        self.cache = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cache.as_ref().expect("backward before forward");
        assert_eq!(y.shape(), grad_out.shape(), "gradient shape mismatch");
        // d tanh = 1 - tanh².
        let mut g = grad_out.clone();
        for (gi, &yi) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *gi *= 1.0 - yi * yi;
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(r.forward(&x, false).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]).unwrap();
        let _ = r.forward(&x, true);
        let g = r.backward(&Tensor::from_vec(vec![5.0, 5.0], &[2]).unwrap());
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn tanh_range_and_sign() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3]).unwrap();
        let y = t.forward(&x, false);
        assert!(y.as_slice()[0] < -0.99);
        assert_eq!(y.as_slice()[1], 0.0);
        assert!(y.as_slice()[2] > 0.99);
    }

    #[test]
    fn gradcheck_tanh() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-0.5, 0.1, 0.9, 2.0], &[4]).unwrap();
        gradcheck::check_input_grad(&mut t, &x, 1e-2);
    }
}
