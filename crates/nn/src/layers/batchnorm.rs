use super::conv::shape4;
use super::{Layer, Param};
use crate::Tensor;

/// Per-channel batch normalization over `(batch, height, width)`, as used
/// after the paper's convolutional layers "to normalize the value
/// distribution" (§4.4).
///
/// In training mode the layer normalizes with batch statistics and updates
/// exponential running averages; in inference mode it uses the running
/// averages.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    shape: [usize; 4],
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0);
        BatchNorm2d {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn channels(&self) -> usize {
        self.running_mean.len()
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w] = shape4(x);
        assert_eq!(c, self.channels(), "channel mismatch");
        let plane = h * w;
        let m = (n * plane) as f32;
        let xd = x.as_slice();
        let mut out = Tensor::zeros(&[n, c, h, w]);
        let mut xhat = Tensor::zeros(&[n, c, h, w]);
        let mut inv_stds = vec![0.0f32; c];
        for (ch, inv_std_slot) in inv_stds.iter_mut().enumerate() {
            let (mean, var) = if train {
                let mut sum = 0.0f32;
                let mut sq = 0.0f32;
                for b in 0..n {
                    let base = ((b * c) + ch) * plane;
                    for &v in &xd[base..base + plane] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / m;
                let var = (sq / m - mean * mean).max(0.0);
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            *inv_std_slot = inv_std;
            let g = self.gamma.value.as_slice()[ch];
            let b0 = self.beta.value.as_slice()[ch];
            for b in 0..n {
                let base = ((b * c) + ch) * plane;
                for i in 0..plane {
                    let xh = (xd[base + i] - mean) * inv_std;
                    xhat.as_mut_slice()[base + i] = xh;
                    out.as_mut_slice()[base + i] = g * xh + b0;
                }
            }
        }
        self.cache = Some(BnCache {
            xhat,
            inv_std: inv_stds,
            shape: [n, c, h, w],
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let [n, c, h, w] = cache.shape;
        let plane = h * w;
        let m = (n * plane) as f32;
        let god = grad_out.as_slice();
        let xh = cache.xhat.as_slice();
        let mut gx = Tensor::zeros(&[n, c, h, w]);
        for ch in 0..c {
            let g = self.gamma.value.as_slice()[ch];
            let inv_std = cache.inv_std[ch];
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for b in 0..n {
                let base = ((b * c) + ch) * plane;
                for i in 0..plane {
                    sum_g += god[base + i];
                    sum_gx += god[base + i] * xh[base + i];
                }
            }
            self.gamma.grad.as_mut_slice()[ch] += sum_gx;
            self.beta.grad.as_mut_slice()[ch] += sum_g;
            for b in 0..n {
                let base = ((b * c) + ch) * plane;
                for i in 0..plane {
                    let dxhat = god[base + i] * g;
                    // Full batch-norm backward: couples every element of the
                    // channel through the batch mean and variance.
                    gx.as_mut_slice()[base + i] =
                        inv_std * (dxhat - (g / m) * sum_g - xh[base + i] * (g / m) * sum_gx);
                }
            }
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn append_norm_state(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(&self.running_mean);
        out.extend_from_slice(&self.running_var);
    }

    fn load_norm_state(&mut self, state: &[f32]) -> usize {
        let c = self.channels();
        assert!(state.len() >= 2 * c, "norm state snapshot too short");
        self.running_mean.copy_from_slice(&state[..c]);
        self.running_var.copy_from_slice(&state[c..2 * c]);
        2 * c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn normalizes_to_zero_mean_unit_var() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = bn.forward(&x, true);
        let mean = y.mean();
        let var = y
            .as_slice()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
    }

    #[test]
    fn gamma_beta_affine() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.value = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        bn.beta.value = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[1, 1, 1, 2]).unwrap();
        let y = bn.forward(&x, true);
        // xhat = [-1, 1] (unit variance), so y = 2*xhat + 1 = [-1, 3].
        assert!((y.as_slice()[0] + 1.0).abs() < 1e-2);
        assert!((y.as_slice()[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn running_stats_converge() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![4.0, 6.0], &[1, 1, 1, 2]).unwrap();
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean[0] - 5.0).abs() < 1e-2);
        assert!((bn.running_var[0] - 1.0).abs() < 1e-1);
        // Inference uses running stats: output for x=5 should be ≈ 0.
        let y = bn.forward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap(), false);
        assert!(y.as_slice()[0].abs() < 0.1);
    }

    #[test]
    fn gradcheck_batchnorm() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec(
            (0..16).map(|v| (v as f32 * 0.37).sin() * 2.0).collect(),
            &[2, 2, 2, 2],
        )
        .unwrap();
        gradcheck::check_input_grad(&mut bn, &x, 5e-2);
        gradcheck::check_param_grads(&mut bn, &x, 5e-2);
    }
}
