use super::{Layer, Param};
use crate::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 2-D convolution with stride 1 and "same" zero padding.
///
/// Input and output are NCHW. The kernel tensor has shape
/// `[out_channels, in_channels, k, k]`; padding is `k / 2`, so odd kernel
/// sizes preserve spatial dimensions exactly.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_c: usize,
    out_c: usize,
    k: usize,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even (same-padding requires odd kernels) or any
    /// dimension is zero.
    pub fn new(in_c: usize, out_c: usize, k: usize, seed: u64) -> Self {
        assert!(k % 2 == 1, "kernel size must be odd for same padding");
        assert!(in_c > 0 && out_c > 0 && k > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_c * k * k;
        Conv2d {
            weight: Param::new(init::he_uniform(&[out_c, in_c, k, k], fan_in, &mut rng)),
            bias: Param::new(Tensor::zeros(&[out_c])),
            in_c,
            out_c,
            k,
            cache: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let [n, c, h, w] = shape4(x);
        assert_eq!(c, self.in_c, "input channel mismatch");
        let pad = self.k / 2;
        let mut out = Tensor::zeros(&[n, self.out_c, h, w]);
        let xd = x.as_slice();
        let wd = self.weight.value.as_slice();
        let bd = self.bias.value.as_slice();
        let od = out.as_mut_slice();
        for b in 0..n {
            for oc in 0..self.out_c {
                let obase = ((b * self.out_c) + oc) * h * w;
                for oy in 0..h {
                    for ox in 0..w {
                        let mut acc = bd[oc];
                        for ic in 0..self.in_c {
                            let ibase = ((b * c) + ic) * h * w;
                            let wbase = ((oc * self.in_c) + ic) * self.k * self.k;
                            for ky in 0..self.k {
                                let iy = oy + ky;
                                if iy < pad || iy - pad >= h {
                                    continue;
                                }
                                let iy = iy - pad;
                                for kx in 0..self.k {
                                    let ix = ox + kx;
                                    if ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    let ix = ix - pad;
                                    acc += xd[ibase + iy * w + ix]
                                        * wd[wbase + ky * self.k + kx];
                                }
                            }
                        }
                        od[obase + oy * w + ox] = acc;
                    }
                }
            }
        }
        self.cache = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.as_ref().expect("backward before forward");
        let [n, c, h, w] = shape4(x);
        let pad = self.k / 2;
        let mut gx = Tensor::zeros(&[n, c, h, w]);
        let xd = x.as_slice();
        let wd = self.weight.value.as_slice();
        let god = grad_out.as_slice();
        let gw = self.weight.grad.as_mut_slice();
        let gb = self.bias.grad.as_mut_slice();
        let gxd = gx.as_mut_slice();
        for b in 0..n {
            for oc in 0..self.out_c {
                let obase = ((b * self.out_c) + oc) * h * w;
                for oy in 0..h {
                    for ox in 0..w {
                        let go = god[obase + oy * w + ox];
                        if go == 0.0 {
                            continue;
                        }
                        gb[oc] += go;
                        for ic in 0..self.in_c {
                            let ibase = ((b * c) + ic) * h * w;
                            let wbase = ((oc * self.in_c) + ic) * self.k * self.k;
                            for ky in 0..self.k {
                                let iy = oy + ky;
                                if iy < pad || iy - pad >= h {
                                    continue;
                                }
                                let iy = iy - pad;
                                for kx in 0..self.k {
                                    let ix = ox + kx;
                                    if ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    let ix = ix - pad;
                                    gw[wbase + ky * self.k + kx] += go * xd[ibase + iy * w + ix];
                                    gxd[ibase + iy * w + ix] += go * wd[wbase + ky * self.k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Extracts `[n, c, h, w]` from a 4-D tensor.
///
/// # Panics
///
/// Panics if the tensor is not 4-D.
pub(crate) fn shape4(x: &Tensor) -> [usize; 4] {
    let s = x.shape();
    assert_eq!(s.len(), 4, "expected NCHW tensor, got shape {s:?}");
    [s[0], s[1], s[2], s[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        // Set kernel to the identity (center tap 1), bias 0.
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        w.set(&[0, 0, 1, 1], 1.0);
        conv.weight.value = w;
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn same_padding_preserves_shape() {
        let mut conv = Conv2d::new(3, 5, 3, 1);
        let x = Tensor::zeros(&[2, 3, 6, 7]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 5, 6, 7]);
    }

    #[test]
    fn bias_applied_everywhere() {
        let mut conv = Conv2d::new(1, 2, 3, 2);
        conv.weight.value = Tensor::zeros(&[2, 1, 3, 3]);
        conv.bias.value = Tensor::from_vec(vec![1.5, -0.5], &[2]).unwrap();
        let y = conv.forward(&Tensor::zeros(&[1, 1, 2, 2]), false);
        assert!(y.as_slice()[..4].iter().all(|&v| v == 1.5));
        assert!(y.as_slice()[4..].iter().all(|&v| v == -0.5));
    }

    #[test]
    fn gradcheck_input() {
        let mut conv = Conv2d::new(2, 3, 3, 3);
        let x = Tensor::from_vec(
            (0..2 * 4 * 4).map(|v| (v as f32 * 0.13).sin()).collect(),
            &[1, 2, 4, 4],
        )
        .unwrap();
        gradcheck::check_input_grad(&mut conv, &x, 2e-2);
    }

    #[test]
    fn gradcheck_params() {
        let mut conv = Conv2d::new(1, 2, 3, 4);
        let x = Tensor::from_vec(
            (0..9).map(|v| (v as f32 * 0.31).cos()).collect(),
            &[1, 1, 3, 3],
        )
        .unwrap();
        gradcheck::check_param_grads(&mut conv, &x, 2e-2);
    }
}
