use super::{Layer, Param};
use crate::{init, kernels, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 2-D convolution with stride 1 and "same" zero padding.
///
/// Input and output are NCHW. The kernel tensor has shape
/// `[out_channels, in_channels, k, k]`; padding is `k / 2`, so odd kernel
/// sizes preserve spatial dimensions exactly.
///
/// Both passes lower onto the blocked GEMM in [`crate::kernels`]: the
/// forward pass im2col-expands each batch item into a
/// `[in_c·k·k, h·w]` column matrix and multiplies by the weight matrix
/// viewed as `[out_c, in_c·k·k]`; the backward pass recomputes the column
/// matrix (cheaper than caching it for large batches), forms the weight
/// gradient as `grad_out × colᵀ` and scatters `Wᵀ × grad_out` back through
/// col2im for the input gradient. The naive loop nest these must agree
/// with lives in [`crate::reference::conv2d_naive`].
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_c: usize,
    out_c: usize,
    k: usize,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even (same-padding requires odd kernels) or any
    /// dimension is zero.
    pub fn new(in_c: usize, out_c: usize, k: usize, seed: u64) -> Self {
        assert!(k % 2 == 1, "kernel size must be odd for same padding");
        assert!(in_c > 0 && out_c > 0 && k > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_c * k * k;
        Conv2d {
            weight: Param::new(init::he_uniform(&[out_c, in_c, k, k], fan_in, &mut rng)),
            bias: Param::new(Tensor::zeros(&[out_c])),
            in_c,
            out_c,
            k,
            cache: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let timer = crate::instrument::start();
        let [n, c, h, w] = shape4(x);
        assert_eq!(c, self.in_c, "input channel mismatch");
        let hw = h * w;
        let kdim = self.in_c * self.k * self.k;
        let mut out = Tensor::zeros(&[n, self.out_c, h, w]);
        let xd = x.as_slice();
        let wd = self.weight.value.as_slice();
        let bd = self.bias.value.as_slice();
        let od = out.as_mut_slice();
        let mut col = vec![0.0f32; kdim * hw];
        for b in 0..n {
            im2col(&xd[b * c * hw..][..c * hw], c, h, w, self.k, &mut col);
            let out_b = &mut od[b * self.out_c * hw..][..self.out_c * hw];
            // out[b] = W[out_c, kdim] × col[kdim, hw]
            kernels::gemm(false, false, self.out_c, kdim, hw, wd, &col, out_b);
            for oc in 0..self.out_c {
                let bias = bd[oc];
                for v in &mut out_b[oc * hw..(oc + 1) * hw] {
                    *v += bias;
                }
            }
        }
        self.cache = Some(x.clone());
        crate::instrument::record_since("nn.conv_us", timer);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.as_ref().expect("backward before forward");
        let [n, c, h, w] = shape4(x);
        assert_eq!(
            grad_out.shape(),
            &[n, self.out_c, h, w],
            "gradient shape mismatch"
        );
        let hw = h * w;
        let kdim = self.in_c * self.k * self.k;
        let mut gx = Tensor::zeros(&[n, c, h, w]);
        let xd = x.as_slice();
        let wd = self.weight.value.as_slice();
        let god = grad_out.as_slice();
        let gw = self.weight.grad.as_mut_slice();
        let gb = self.bias.grad.as_mut_slice();
        let gxd = gx.as_mut_slice();
        let mut col = vec![0.0f32; kdim * hw];
        let mut gw_batch = vec![0.0f32; self.out_c * kdim];
        let mut gcol = vec![0.0f32; kdim * hw];
        for b in 0..n {
            let go_b = &god[b * self.out_c * hw..][..self.out_c * hw];
            for oc in 0..self.out_c {
                gb[oc] += go_b[oc * hw..(oc + 1) * hw].iter().sum::<f32>();
            }
            // gW += grad_out[b] × col[b]ᵀ (gemm overwrites, so go through a
            // scratch buffer; parameter gradients accumulate across calls).
            im2col(&xd[b * c * hw..][..c * hw], c, h, w, self.k, &mut col);
            kernels::gemm(false, true, self.out_c, hw, kdim, go_b, &col, &mut gw_batch);
            for (dst, &v) in gw.iter_mut().zip(&gw_batch) {
                *dst += v;
            }
            // gx[b] = col2im(Wᵀ × grad_out[b])
            kernels::gemm(true, false, kdim, self.out_c, hw, wd, go_b, &mut gcol);
            col2im(&gcol, c, h, w, self.k, &mut gxd[b * c * hw..][..c * hw]);
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Expands one NCHW batch item (`x` is `[c, h, w]` flattened) into the
/// im2col matrix `col[(ic·k + ky)·k + kx, oy·w + ox] = x[ic, oy+ky-pad,
/// ox+kx-pad]`, with zero padding outside the image. For each
/// `(ic, ky, kx, oy)` the valid `ox` range is one contiguous run, so rows
/// are filled with slice copies rather than per-pixel bounds checks.
fn im2col(x: &[f32], c: usize, h: usize, w: usize, k: usize, col: &mut [f32]) {
    let pad = k / 2;
    let hw = h * w;
    debug_assert_eq!(x.len(), c * hw);
    debug_assert_eq!(col.len(), c * k * k * hw);
    for ic in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = &mut col[((ic * k + ky) * k + kx) * hw..][..hw];
                // Valid output xs: 0 <= ox + kx - pad < w.
                let ox_lo = pad.saturating_sub(kx);
                let ox_hi = (w + pad).saturating_sub(kx).min(w);
                for oy in 0..h {
                    let dst = &mut row[oy * w..(oy + 1) * w];
                    let iy = oy + ky;
                    if iy < pad || iy - pad >= h || ox_lo >= ox_hi {
                        dst.fill(0.0);
                        continue;
                    }
                    let iy = iy - pad;
                    dst[..ox_lo].fill(0.0);
                    dst[ox_hi..].fill(0.0);
                    let ix_lo = ox_lo + kx - pad;
                    let src = &x[ic * hw + iy * w..][ix_lo..ix_lo + (ox_hi - ox_lo)];
                    dst[ox_lo..ox_hi].copy_from_slice(src);
                }
            }
        }
    }
}

/// Inverse of [`im2col`] for gradients: scatter-adds the column-matrix
/// gradient back onto the image gradient (`gx` is `[c, h, w]` flattened,
/// accumulated into). Overlapping kernel windows sum, matching the direct
/// convolution's input gradient.
fn col2im(gcol: &[f32], c: usize, h: usize, w: usize, k: usize, gx: &mut [f32]) {
    let pad = k / 2;
    let hw = h * w;
    debug_assert_eq!(gx.len(), c * hw);
    debug_assert_eq!(gcol.len(), c * k * k * hw);
    for ic in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = &gcol[((ic * k + ky) * k + kx) * hw..][..hw];
                let ox_lo = pad.saturating_sub(kx);
                let ox_hi = (w + pad).saturating_sub(kx).min(w);
                if ox_lo >= ox_hi {
                    continue;
                }
                for oy in 0..h {
                    let iy = oy + ky;
                    if iy < pad || iy - pad >= h {
                        continue;
                    }
                    let iy = iy - pad;
                    let ix_lo = ox_lo + kx - pad;
                    let dst = &mut gx[ic * hw + iy * w..][ix_lo..ix_lo + (ox_hi - ox_lo)];
                    let src = &row[oy * w + ox_lo..oy * w + ox_hi];
                    for (d, &g) in dst.iter_mut().zip(src) {
                        *d += g;
                    }
                }
            }
        }
    }
}

/// Extracts `[n, c, h, w]` from a 4-D tensor.
///
/// # Panics
///
/// Panics if the tensor is not 4-D.
pub(crate) fn shape4(x: &Tensor) -> [usize; 4] {
    let s = x.shape();
    assert_eq!(s.len(), 4, "expected NCHW tensor, got shape {s:?}");
    [s[0], s[1], s[2], s[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        // Set kernel to the identity (center tap 1), bias 0.
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        w.set(&[0, 0, 1, 1], 1.0);
        conv.weight.value = w;
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn same_padding_preserves_shape() {
        let mut conv = Conv2d::new(3, 5, 3, 1);
        let x = Tensor::zeros(&[2, 3, 6, 7]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 5, 6, 7]);
    }

    #[test]
    fn bias_applied_everywhere() {
        let mut conv = Conv2d::new(1, 2, 3, 2);
        conv.weight.value = Tensor::zeros(&[2, 1, 3, 3]);
        conv.bias.value = Tensor::from_vec(vec![1.5, -0.5], &[2]).unwrap();
        let y = conv.forward(&Tensor::zeros(&[1, 1, 2, 2]), false);
        assert!(y.as_slice()[..4].iter().all(|&v| v == 1.5));
        assert!(y.as_slice()[4..].iter().all(|&v| v == -0.5));
    }

    #[test]
    fn gradcheck_input() {
        let mut conv = Conv2d::new(2, 3, 3, 3);
        let x = Tensor::from_vec(
            (0..2 * 4 * 4).map(|v| (v as f32 * 0.13).sin()).collect(),
            &[1, 2, 4, 4],
        )
        .unwrap();
        gradcheck::check_input_grad(&mut conv, &x, 2e-2);
    }

    #[test]
    fn im2col_forward_matches_naive_reference() {
        use rand::Rng;
        // Random shapes, including batch > 1, non-square spatial dims, and
        // k = 5 (larger padding) — the im2col path must agree with the
        // direct loop nest everywhere.
        let shapes: &[(usize, usize, usize, usize, usize)] = &[
            (1, 1, 4, 4, 3),
            (2, 3, 6, 7, 3),
            (3, 2, 5, 9, 5),
            (4, 4, 8, 8, 3),
            (2, 1, 1, 6, 3),
        ];
        let mut rng = StdRng::seed_from_u64(99);
        for &(n, c, h, w, k) in shapes {
            let mut conv = Conv2d::new(c, c + 1, k, 5);
            let x = Tensor::from_vec(
                (0..n * c * h * w)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
                &[n, c, h, w],
            )
            .unwrap();
            let got = conv.forward(&x, false);
            let want = crate::reference::conv2d_naive(&x, &conv.weight.value, &conv.bias.value);
            assert_eq!(got.shape(), want.shape());
            for (g, e) in got.as_slice().iter().zip(want.as_slice()) {
                assert!(
                    (g - e).abs() <= 1e-5,
                    "conv parity failed at shape {:?}: {g} vs {e}",
                    (n, c, h, w, k)
                );
            }
        }
    }

    #[test]
    fn backward_no_longer_skips_zero_grads() {
        // A zero upstream gradient times a NaN weight must still propagate
        // NaN into the input gradient (0 × NaN = NaN); the old loop skipped
        // zero grad_out entries entirely.
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.weight.value = Tensor::from_vec(vec![f32::NAN; 9], &[1, 1, 3, 3]).unwrap();
        let x = Tensor::zeros(&[1, 1, 3, 3]);
        conv.forward(&x, true);
        let gx = conv.backward(&Tensor::zeros(&[1, 1, 3, 3]));
        assert!(gx.as_slice().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn gradcheck_params() {
        let mut conv = Conv2d::new(1, 2, 3, 4);
        let x = Tensor::from_vec(
            (0..9).map(|v| (v as f32 * 0.31).cos()).collect(),
            &[1, 1, 3, 3],
        )
        .unwrap();
        gradcheck::check_param_grads(&mut conv, &x, 2e-2);
    }
}
