use super::{Layer, Param};
use crate::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully connected layer: `y = x W + b` with `x: [batch, in]`,
/// `W: [in, out]`, `b: [out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_f: usize,
    out_f: usize,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_f: usize, out_f: usize, seed: u64) -> Self {
        assert!(in_f > 0 && out_f > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        Linear {
            weight: Param::new(init::xavier_uniform(&[in_f, out_f], in_f, out_f, &mut rng)),
            bias: Param::new(Tensor::zeros(&[out_f])),
            in_f,
            out_f,
            cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_f
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_f
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Linear expects [batch, features]");
        assert_eq!(x.shape()[1], self.in_f, "feature count mismatch");
        let mut y = x.matmul(&self.weight.value);
        let b = self.bias.value.as_slice();
        let out = self.out_f;
        for row in y.as_mut_slice().chunks_mut(out) {
            for (v, &bi) in row.iter_mut().zip(b) {
                *v += bi;
            }
        }
        self.cache = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.as_ref().expect("backward before forward");
        // dW = xᵀ g ; db = Σ_batch g ; dx = g Wᵀ.
        let gw = x.transpose().matmul(grad_out);
        self.weight.grad.add_scaled(&gw, 1.0);
        let g = grad_out.as_slice();
        let gb = self.bias.grad.as_mut_slice();
        for row in g.chunks(self.out_f) {
            for (b, &v) in gb.iter_mut().zip(row) {
                *b += v;
            }
        }
        grad_out.matmul(&self.weight.value.transpose())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Reshapes NCHW activations to `[batch, c*h*w]`, remembering the original
/// shape for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cache: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let shape = x.shape().to_vec();
        assert!(!shape.is_empty());
        let batch = shape[0];
        let rest: usize = shape[1..].iter().product();
        self.cache = Some(shape);
        x.reshape(&[batch, rest]).expect("element count unchanged")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cache.as_ref().expect("backward before forward");
        grad_out.reshape(shape).expect("element count unchanged")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn known_affine_map() {
        let mut lin = Linear::new(2, 2, 0);
        lin.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        lin.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = lin.forward(&x, false);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn batch_forward() {
        let mut lin = Linear::new(3, 1, 1);
        let x = Tensor::zeros(&[4, 3]);
        assert_eq!(lin.forward(&x, false).shape(), &[4, 1]);
    }

    #[test]
    fn gradcheck_linear() {
        let mut lin = Linear::new(3, 4, 2);
        let x =
            Tensor::from_vec((0..6).map(|v| (v as f32 * 0.7).sin()).collect(), &[2, 3]).unwrap();
        gradcheck::check_input_grad(&mut lin, &x, 1e-2);
        gradcheck::check_param_grads(&mut lin, &x, 1e-2);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let y = f.forward(&x, false);
        assert_eq!(y.shape(), &[2, 12]);
        let back = f.backward(&y);
        assert_eq!(back, x);
    }
}
