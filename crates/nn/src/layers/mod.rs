//! Neural-network layers with explicit forward/backward passes.
//!
//! Each layer caches whatever it needs during [`Layer::forward`] and
//! consumes that cache in [`Layer::backward`]. Parameters are exposed
//! through [`Layer::params_mut`] so optimizers in [`crate::optim`] can
//! update them uniformly.

mod activation;
mod batchnorm;
mod conv;
mod linear;
mod pool;
mod residual;
mod sequential;

pub use activation::{Relu, Tanh};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use linear::{Flatten, Linear};
pub use pool::MaxPool2d;
pub use residual::ResidualBlock;
pub use sequential::Sequential;

use crate::Tensor;

/// A trainable parameter: its value and the gradient accumulated by the
/// most recent backward pass(es).
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.shape());
    }
}

/// A differentiable network layer.
///
/// The contract is strictly sequential: `backward` must be called with the
/// gradient of the loss with respect to the output of the *most recent*
/// `forward`, and returns the gradient with respect to that forward's input.
/// Gradients accumulate into [`Param::grad`] (they are not overwritten), so
/// multiple episodes can be batched before an optimizer step.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output. `train` selects training behaviour for
    /// layers that distinguish it (e.g. batch-norm statistics).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out` (∂loss/∂output), accumulating parameter
    /// gradients and returning ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// The layer's trainable parameters, if any.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Appends this layer's persistent non-parameter state — values a
    /// training forward mutates that are not [`Param`]s (batch-norm
    /// running statistics) — onto `out`. Stateless layers append nothing.
    /// Together with [`Layer::load_norm_state`] this lets a caller make a
    /// training attempt fully transactional.
    fn append_norm_state(&self, out: &mut Vec<f32>) {
        let _ = out;
    }

    /// Restores the prefix of `state` captured by
    /// [`Layer::append_norm_state`], returning how many values were
    /// consumed. Stateless layers consume nothing.
    fn load_norm_state(&mut self, state: &[f32]) -> usize {
        let _ = state;
        0
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::Layer;
    use crate::Tensor;

    /// Verifies `layer`'s input gradient against central finite differences
    /// of the scalar loss `sum(forward(x) * weights)`.
    pub fn check_input_grad(layer: &mut impl Layer, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true);
        // Use deterministic pseudo-random loss weights to cover all outputs.
        let weights: Vec<f32> = (0..out.len())
            .map(|i| ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.3)
            .collect();
        let w = Tensor::from_vec(weights, out.shape()).unwrap();
        let analytic = layer.backward(&w);

        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = layer.forward(&xp, true).mul(&w).sum();
            let lm = layer.forward(&xm, true).mul(&w).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "input grad [{i}]: analytic {a}, numeric {numeric}"
            );
        }
    }

    /// Verifies parameter gradients of `layer` the same way.
    pub fn check_param_grads(layer: &mut impl Layer, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true);
        let weights: Vec<f32> = (0..out.len())
            .map(|i| ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.3)
            .collect();
        let w = Tensor::from_vec(weights, out.shape()).unwrap();
        layer.zero_grad();
        let _ = layer.backward(&w);
        let analytic: Vec<Tensor> = layer.params_mut().iter().map(|p| p.grad.clone()).collect();

        let eps = 1e-2f32;
        for (pi, grad) in analytic.iter().enumerate() {
            for i in 0..grad.len() {
                let orig = {
                    let mut ps = layer.params_mut();
                    let v = ps[pi].value.as_slice()[i];
                    ps[pi].value.as_mut_slice()[i] = v + eps;
                    v
                };
                let lp = layer.forward(x, true).mul(&w).sum();
                layer.params_mut()[pi].value.as_mut_slice()[i] = orig - eps;
                let lm = layer.forward(x, true).mul(&w).sum();
                layer.params_mut()[pi].value.as_mut_slice()[i] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let a = grad.as_slice()[i];
                assert!(
                    (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "param {pi} grad [{i}]: analytic {a}, numeric {numeric}"
                );
            }
        }
    }
}
