use super::conv::shape4;
use super::Layer;
use crate::Tensor;

/// 2x2 max pooling with stride 2 (the paper's `pool, /2`).
///
/// Odd spatial dimensions are handled by letting the final window clamp to
/// the edge (ceiling division), so no input element is dropped.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2d {
    /// For each output element, the flat input index that won the max.
    argmax: Option<(Vec<usize>, Vec<usize>)>, // (input shape proxy, winners)
    in_shape: Option<[usize; 4]>,
}

impl MaxPool2d {
    /// Creates a 2x2/stride-2 max-pooling layer.
    pub fn new() -> Self {
        MaxPool2d::default()
    }

    /// Output spatial size for an input of `side` (ceiling halving).
    pub fn out_side(side: usize) -> usize {
        side.div_ceil(2)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let [n, c, h, w] = shape4(x);
        let (oh, ow) = (h.div_ceil(2), w.div_ceil(2));
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut winners = vec![0usize; n * c * oh * ow];
        let xd = x.as_slice();
        let od = out.as_mut_slice();
        for b in 0..n {
            for ch in 0..c {
                let ibase = ((b * c) + ch) * h * w;
                let obase = ((b * c) + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            let iy = (2 * oy + dy).min(h - 1);
                            for dx in 0..2 {
                                let ix = (2 * ox + dx).min(w - 1);
                                let idx = ibase + iy * w + ix;
                                if xd[idx] > best {
                                    best = xd[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        od[obase + oy * ow + ox] = best;
                        winners[obase + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        self.in_shape = Some([n, c, h, w]);
        self.argmax = Some((vec![n * c * h * w], winners));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = self.in_shape.expect("backward before forward");
        let (_, winners) = self.argmax.as_ref().expect("backward before forward");
        let mut gx = Tensor::zeros(&[n, c, h, w]);
        let gxd = gx.as_mut_slice();
        for (&win, &g) in winners.iter().zip(grad_out.as_slice()) {
            gxd[win] += g;
        }
        gx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_halves_even_dims() {
        let mut p = MaxPool2d::new();
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn pool_ceils_odd_dims() {
        let mut p = MaxPool2d::new();
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool2d::new();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 9.0, 5.0, 6.0, 7.0, 8.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::full(&[1, 1, 2, 2], 1.0));
        // Exactly four gradient entries, each 1.0, at the max positions.
        let nonzero: Vec<usize> = g
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(nonzero.len(), 4);
        assert!(nonzero.contains(&5), "5.0 at flat index 5 wins its window");
        assert!(nonzero.contains(&3), "9.0 at flat index 3 wins its window");
    }

    #[test]
    fn out_side_helper() {
        assert_eq!(MaxPool2d::out_side(4), 2);
        assert_eq!(MaxPool2d::out_side(5), 3);
        assert_eq!(MaxPool2d::out_side(1), 1);
    }
}
