use super::{BatchNorm2d, Conv2d, Layer, Param, Relu};
use crate::Tensor;

/// The paper's residual building block (Figure 6a/6b): two 3x3
/// convolutions with batch normalization, a shortcut connection adding the
/// block input to the second convolution's output, and a final ReLU.
///
/// The channel count is preserved (`C → C`), matching the `Res: 3x3 conv,
/// C` boxes of Figure 6(c).
#[derive(Debug)]
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    relu_out: Relu,
}

impl ResidualBlock {
    /// Creates a residual block over `channels` feature maps.
    pub fn new(channels: usize, seed: u64) -> Self {
        ResidualBlock {
            conv1: Conv2d::new(channels, channels, 3, seed),
            bn1: BatchNorm2d::new(channels),
            relu1: Relu::new(),
            conv2: Conv2d::new(channels, channels, 3, seed.wrapping_add(1)),
            bn2: BatchNorm2d::new(channels),
            relu_out: Relu::new(),
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut f = self.conv1.forward(x, train);
        f = self.bn1.forward(&f, train);
        f = self.relu1.forward(&f, train);
        f = self.conv2.forward(&f, train);
        f = self.bn2.forward(&f, train);
        // Shortcut: activation applies to F(x) + x (Figure 6a).
        let sum = f.add(x);
        self.relu_out.forward(&sum, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_sum = self.relu_out.backward(grad_out);
        // The sum node fans the gradient to both branches.
        let mut g = self.bn2.backward(&g_sum);
        g = self.conv2.backward(&g);
        g = self.relu1.backward(&g);
        g = self.bn1.backward(&g);
        g = self.conv1.backward(&g);
        g.add(&g_sum)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.conv1.params_mut();
        out.extend(self.bn1.params_mut());
        out.extend(self.conv2.params_mut());
        out.extend(self.bn2.params_mut());
        out
    }

    fn append_norm_state(&self, out: &mut Vec<f32>) {
        self.bn1.append_norm_state(out);
        self.bn2.append_norm_state(out);
    }

    fn load_norm_state(&mut self, state: &[f32]) -> usize {
        let mut used = self.bn1.load_norm_state(state);
        used += self.bn2.load_norm_state(&state[used..]);
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn preserves_shape() {
        let mut block = ResidualBlock::new(4, 0);
        let x = Tensor::zeros(&[1, 4, 5, 5]);
        assert_eq!(block.forward(&x, true).shape(), &[1, 4, 5, 5]);
    }

    #[test]
    fn shortcut_feeds_through_when_convs_zeroed() {
        let mut block = ResidualBlock::new(1, 0);
        // Zero both convolutions so F(x) == bn(0) == beta == 0; output is
        // then relu(x).
        for p in block.conv1.params_mut() {
            p.value = Tensor::zeros(p.value.shape());
        }
        for p in block.conv2.params_mut() {
            p.value = Tensor::zeros(p.value.shape());
        }
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = block.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn gradcheck_residual_block() {
        // Init seed chosen so no ReLU sits on its kink for this input
        // under the workspace PRNG stream (see vendor/rand); finite
        // differences are unreliable at kinks.
        let mut block = ResidualBlock::new(2, 3);
        let x = Tensor::from_vec(
            (0..2 * 9).map(|v| (v as f32 * 0.23).sin()).collect(),
            &[1, 2, 3, 3],
        )
        .unwrap();
        gradcheck::check_input_grad(&mut block, &x, 6e-2);
    }

    #[test]
    fn param_count() {
        let mut block = ResidualBlock::new(3, 0);
        // conv(W,b) ×2 + bn(γ,β) ×2 = 8 parameter tensors.
        assert_eq!(block.params_mut().len(), 8);
    }
}
