use super::{Layer, Param};
use crate::Tensor;

/// A chain of layers applied in order.
///
/// `Sequential` is itself a [`Layer`], so stacks nest naturally (the
/// policy/value heads in [`crate::PolicyValueNet`] are each a
/// `Sequential`).
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer, builder style.
    #[must_use]
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a layer in place.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn append_norm_state(&self, out: &mut Vec<f32>) {
        for layer in &self.layers {
            layer.append_norm_state(out);
        }
    }

    fn load_norm_state(&mut self, state: &[f32]) -> usize {
        let mut used = 0;
        for layer in &mut self.layers {
            used += layer.load_norm_state(&state[used..]);
        }
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};

    #[test]
    fn chains_forward_and_backward() {
        let mut net = Sequential::new()
            .with(Linear::new(2, 3, 0))
            .with(Relu::new())
            .with(Linear::new(3, 1, 1));
        let x = Tensor::from_vec(vec![0.5, -0.5], &[1, 2]).unwrap();
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1]);
        let gx = net.backward(&Tensor::full(&[1, 1], 1.0));
        assert_eq!(gx.shape(), &[1, 2]);
        assert_eq!(net.params_mut().len(), 4, "two linears × (W, b)");
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut net = Sequential::new().with(Linear::new(2, 2, 0));
        let x = Tensor::full(&[1, 2], 1.0);
        let _ = net.forward(&x, true);
        let _ = net.backward(&Tensor::full(&[1, 2], 1.0));
        assert!(net.params_mut().iter().any(|p| p.grad.norm() > 0.0));
        net.zero_grad();
        assert!(net.params_mut().iter().all(|p| p.grad.norm() == 0.0));
    }
}
