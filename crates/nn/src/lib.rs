//! A from-scratch neural-network library for the `rlnoc` workspace.
//!
//! The paper's DRL agent uses a deep residual convolutional network with two
//! output heads (policy and value, Figure 6c). No ML framework dependency is
//! allowed in this reproduction, so this crate implements the required
//! machinery directly:
//!
//! - [`Tensor`]: a dense row-major `f32` tensor with NCHW convention,
//! - layers ([`layers`]): 2-D convolution, batch normalization, max pooling,
//!   fully connected, ReLU/Tanh activations, and residual blocks,
//! - [`PolicyValueNet`]: the paper's two-headed architecture, parameterized
//!   by grid size and channel widths,
//! - [`optim`]: SGD with momentum and Adam, with global-norm gradient
//!   clipping,
//! - [`loss`]: softmax/cross-entropy utilities and the advantage
//!   actor-critic gradients of the paper's Equations 17–18.
//!
//! Everything runs on CPU with deterministic seeding, sized for the
//! laptop-scale experiments in this reproduction.
//!
//! # Example
//!
//! ```
//! use rlnoc_nn::{PolicyValueNet, PolicyValueConfig, Tensor};
//!
//! let cfg = PolicyValueConfig::small(4); // 4x4 NoC → 16x16 state matrix
//! let mut net = PolicyValueNet::new(cfg, 42);
//! let state = Tensor::zeros(&[1, 1, 16, 16]);
//! let out = net.forward(&state, false);
//! assert_eq!(out.coord_logits.shape(), &[1, 4, 4]); // 4 heads × N logits
//! assert_eq!(out.value.shape(), &[1, 1]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod tensor;

pub mod init;
pub mod instrument;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod net;
pub mod optim;
pub mod reference;

pub use error::NnError;
pub use net::{PolicyValueConfig, PolicyValueNet, PolicyValueOutput};
pub use tensor::Tensor;
