//! Loss functions and output-head gradients for advantage actor-critic
//! training (paper Equations 15–18).
//!
//! The two-headed network is trained with
//!
//! - a policy-gradient term `−A · ∇ log π(a; s, θ)` per action component,
//!   where the advantage `A = Σ γ^(t′−t) r_{t′} − V(s_t; θ_v)` (Eq. 16–17),
//! - a value regression term `∇ (A)²` (Eq. 18).
//!
//! These functions compute both the scalar losses (for logging) and the
//! gradients with respect to the network's raw outputs, ready for
//! [`crate::PolicyValueNet::backward`].

/// Numerically stable softmax over a logit slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "softmax of empty slice");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Log of `softmax(logits)[index]`, computed stably.
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn log_softmax_at(logits: &[f32], index: usize) -> f32 {
    assert!(index < logits.len(), "index out of range");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let lse: f32 = logits.iter().map(|&l| (l - max).exp()).sum::<f32>().ln() + max;
    logits[index] - lse
}

/// Policy-gradient loss and logit gradient for one categorical head.
///
/// Returns `(loss, grad)` where `loss = −A · log softmax(logits)[chosen]`
/// and `grad[i] = A · (softmax(logits)[i] − 1[i == chosen])`, i.e. the
/// gradient of the loss with respect to the raw logits.
///
/// # Panics
///
/// Panics if `chosen` is out of range.
pub fn policy_head_grad(logits: &[f32], chosen: usize, advantage: f32) -> (f32, Vec<f32>) {
    assert!(chosen < logits.len(), "chosen index out of range");
    let probs = softmax(logits);
    let loss = -advantage * log_softmax_at(logits, chosen);
    let grad = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| advantage * (p - f32::from(u8::from(i == chosen))))
        .collect();
    (loss, grad)
}

/// Policy-gradient loss and gradient for the tanh direction head.
///
/// The head outputs `t ∈ (−1, 1)`; the paper maps `t > 0` to clockwise.
/// We interpret the head as a Bernoulli policy with
/// `P(clockwise) = (1 + t) / 2` and differentiate
/// `−A · log P(chosen)` with respect to `t`.
///
/// Returns `(loss, dloss/dt)`.
pub fn direction_head_grad(t: f32, clockwise: bool, advantage: f32) -> (f32, f32) {
    // Clamp away from the saturated ends for numerical stability.
    let t = t.clamp(-0.999_99, 0.999_99);
    let p_cw = (1.0 + t) / 2.0;
    if clockwise {
        let loss = -advantage * p_cw.ln();
        let grad = -advantage / (1.0 + t);
        (loss, grad)
    } else {
        let loss = -advantage * (1.0 - p_cw).ln();
        let grad = advantage / (1.0 - t);
        (loss, grad)
    }
}

/// Value-head regression: `loss = (v − target)²`, `dloss/dv = 2 (v −
/// target)` (paper Eq. 18 with the advantage as the residual).
pub fn value_head_grad(v: f32, target: f32) -> (f32, f32) {
    let d = v - target;
    (d * d, 2.0 * d)
}

/// Entropy of a categorical distribution given raw logits; useful as an
/// exploration bonus diagnostic.
pub fn entropy(logits: &[f32]) -> f32 {
    softmax(logits)
        .into_iter()
        .filter(|&p| p > 0.0)
        .map(|p| -p * p.ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = [0.3, -1.2, 2.0];
        let p = softmax(&logits);
        for (i, &pi) in p.iter().enumerate() {
            assert!((log_softmax_at(&logits, i) - pi.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn policy_grad_finite_difference() {
        let logits = vec![0.5, -0.3, 1.1, 0.0];
        let a = 1.7;
        let (_, grad) = policy_head_grad(&logits, 2, a);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp[i] += eps;
            let mut lm = logits.clone();
            lm[i] -= eps;
            let fp = -a * log_softmax_at(&lp, 2);
            let fm = -a * log_softmax_at(&lm, 2);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[i] - numeric).abs() < 1e-3,
                "grad[{i}]: {} vs {numeric}",
                grad[i]
            );
        }
    }

    #[test]
    fn policy_grad_pushes_toward_chosen_with_positive_advantage() {
        let (_, grad) = policy_head_grad(&[0.0, 0.0], 0, 1.0);
        // Gradient descent subtracts grad: chosen logit must rise.
        assert!(grad[0] < 0.0);
        assert!(grad[1] > 0.0);
        // Negative advantage flips the direction.
        let (_, grad) = policy_head_grad(&[0.0, 0.0], 0, -1.0);
        assert!(grad[0] > 0.0);
    }

    #[test]
    fn direction_grad_finite_difference() {
        for &(t, cw) in &[(0.3f32, true), (-0.6, false), (0.0, true)] {
            let a = 0.9;
            let (_, grad) = direction_head_grad(t, cw, a);
            let eps = 1e-3;
            let f = |t: f32| direction_head_grad(t, cw, a).0;
            let numeric = (f(t + eps) - f(t - eps)) / (2.0 * eps);
            assert!(
                (grad - numeric).abs() < 1e-2,
                "t={t} cw={cw}: {grad} vs {numeric}"
            );
        }
    }

    #[test]
    fn value_grad_is_two_residual() {
        let (loss, grad) = value_head_grad(2.0, -1.0);
        assert_eq!(loss, 9.0);
        assert_eq!(grad, 6.0);
    }

    #[test]
    fn entropy_maximal_for_uniform() {
        let h_uniform = entropy(&[0.0, 0.0, 0.0, 0.0]);
        let h_peaked = entropy(&[10.0, 0.0, 0.0, 0.0]);
        assert!(h_uniform > h_peaked);
        assert!((h_uniform - (4.0f32).ln()).abs() < 1e-5);
    }
}
