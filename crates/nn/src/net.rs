//! The paper's two-headed policy/value network (Figure 6c).

use crate::layers::{
    BatchNorm2d, Conv2d, Flatten, Layer, Linear, MaxPool2d, Param, Relu, ResidualBlock, Sequential,
    Tanh,
};
use crate::Tensor;

/// Architecture hyperparameters for [`PolicyValueNet`].
///
/// The network consumes the `N²×N²` hop-count state matrix of an `N×N` NoC
/// (one input channel) and produces:
///
/// - four categorical heads of `N` logits each, for `x1, y1, x2, y2`,
/// - one tanh scalar for the loop direction (`> 0` ⇒ clockwise),
/// - one linear scalar estimating the value function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyValueConfig {
    /// Grid dimension `N` (each coordinate head emits `N` logits).
    pub n: usize,
    /// Side of the square input state matrix (`N²` for square grids).
    pub input_side: usize,
    /// Channel width of each trunk stage; a 2x2 max-pool sits between
    /// consecutive stages. The paper uses `[16, 32, 64, 128]`.
    pub channels: Vec<usize>,
    /// Kernel size of the stem convolution (odd). The paper draws an `N×N`
    /// stem kernel; 3 is the default here for tractable CPU training, and
    /// any odd size may be configured.
    pub stem_kernel: usize,
    /// Hidden width of the value head's fully connected layer.
    pub value_hidden: usize,
}

impl PolicyValueConfig {
    /// The full architecture of Figure 6(c): stages `[16, 32, 64, 128]`
    /// with three interleaved poolings.
    pub fn paper(n: usize) -> Self {
        PolicyValueConfig {
            n,
            input_side: n * n,
            channels: vec![16, 32, 64, 128],
            stem_kernel: 3,
            value_hidden: 32,
        }
    }

    /// A reduced configuration (one 8-channel stage) for fast CPU
    /// experiments and tests; identical topology, smaller widths.
    pub fn small(n: usize) -> Self {
        PolicyValueConfig {
            n,
            input_side: n * n,
            channels: vec![8],
            stem_kernel: 3,
            value_hidden: 16,
        }
    }

    /// Spatial side length after all inter-stage poolings.
    pub fn final_side(&self) -> usize {
        let mut side = self.input_side;
        for _ in 1..self.channels.len() {
            side = MaxPool2d::out_side(side);
        }
        side
    }
}

/// Raw network outputs for a batch of states.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyValueOutput {
    /// Coordinate logits, shape `[batch, 4, N]` — rows are `x1, y1, x2, y2`
    /// (softmax is applied by the consumer; see [`crate::loss`]).
    pub coord_logits: Tensor,
    /// Direction head output in `(−1, 1)`, shape `[batch, 1]`.
    pub dir: Tensor,
    /// Value estimate, shape `[batch, 1]`.
    pub value: Tensor,
}

/// Gradients with respect to the three outputs, same shapes as
/// [`PolicyValueOutput`].
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyValueGrad {
    /// ∂loss/∂coord_logits, `[batch, 4, N]`.
    pub coord_logits: Tensor,
    /// ∂loss/∂dir, `[batch, 1]`.
    pub dir: Tensor,
    /// ∂loss/∂value, `[batch, 1]`.
    pub value: Tensor,
}

/// The two-headed residual policy/value network of the paper's Figure 6(c).
///
/// # Example
///
/// ```
/// use rlnoc_nn::{PolicyValueNet, PolicyValueConfig, Tensor};
/// let mut net = PolicyValueNet::new(PolicyValueConfig::small(4), 7);
/// let state = Tensor::zeros(&[1, 1, 16, 16]);
/// let out = net.forward(&state, false);
/// assert!(out.dir.as_slice()[0].abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct PolicyValueNet {
    config: PolicyValueConfig,
    trunk: Sequential,
    coord_head: Sequential,
    dir_head: Sequential,
    value_head: Sequential,
}

impl PolicyValueNet {
    /// Builds the network with deterministic weight initialization from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config.channels` is empty or `config.stem_kernel` is even.
    pub fn new(config: PolicyValueConfig, seed: u64) -> Self {
        assert!(!config.channels.is_empty(), "need at least one trunk stage");
        let mut trunk = Sequential::new();
        let mut prev = 1;
        let mut s = seed;
        let mut next_seed = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        for (i, &c) in config.channels.iter().enumerate() {
            let k = if i == 0 { config.stem_kernel } else { 3 };
            trunk.push(Conv2d::new(prev, c, k, next_seed()));
            trunk.push(BatchNorm2d::new(c));
            trunk.push(Relu::new());
            trunk.push(ResidualBlock::new(c, next_seed()));
            if i + 1 < config.channels.len() {
                trunk.push(MaxPool2d::new());
            }
            prev = c;
        }
        let side = config.final_side();
        let flat = 2 * side * side;

        let coord_head = Sequential::new()
            .with(Conv2d::new(prev, 2, 3, next_seed()))
            .with(Relu::new())
            .with(Flatten::new())
            .with(Linear::new(flat, 4 * config.n, next_seed()));
        let dir_head = Sequential::new()
            .with(Conv2d::new(prev, 2, 3, next_seed()))
            .with(Relu::new())
            .with(Flatten::new())
            .with(Linear::new(flat, 1, next_seed()))
            .with(Tanh::new());
        let value_head = Sequential::new()
            .with(Conv2d::new(prev, 2, 3, next_seed()))
            .with(Relu::new())
            .with(Flatten::new())
            .with(Linear::new(flat, config.value_hidden, next_seed()))
            .with(Relu::new())
            .with(Linear::new(config.value_hidden, 1, next_seed()));

        PolicyValueNet {
            config,
            trunk,
            coord_head,
            dir_head,
            value_head,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &PolicyValueConfig {
        &self.config
    }

    /// Runs the network on `x` of shape `[batch, 1, side, side]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong spatial dimensions.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> PolicyValueOutput {
        let s = self.config.input_side;
        assert_eq!(
            x.shape()[2..],
            [s, s],
            "expected {s}x{s} input state matrix"
        );
        let timer = crate::instrument::start();
        let batch = x.shape()[0];
        crate::instrument::record_value("nn.forward_batch", batch as u64);
        let features = self.trunk.forward(x, train);
        let coord = self.coord_head.forward(&features, train);
        let dir = self.dir_head.forward(&features, train);
        let value = self.value_head.forward(&features, train);
        crate::instrument::record_since("nn.forward_us", timer);
        PolicyValueOutput {
            coord_logits: coord
                .reshape(&[batch, 4, self.config.n])
                .expect("head emits 4N logits"),
            dir,
            value,
        }
    }

    /// Backpropagates output gradients from the most recent
    /// [`PolicyValueNet::forward`], accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with mismatched shapes.
    pub fn backward(&mut self, grad: &PolicyValueGrad) {
        let batch = grad.coord_logits.shape()[0];
        let flat = grad
            .coord_logits
            .reshape(&[batch, 4 * self.config.n])
            .expect("same element count");
        let g1 = self.coord_head.backward(&flat);
        let g2 = self.dir_head.backward(&grad.dir);
        let g3 = self.value_head.backward(&grad.value);
        let total = g1.add(&g2).add(&g3);
        let _ = self.trunk.backward(&total);
    }

    /// All trainable parameters, in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.trunk.params_mut();
        out.extend(self.coord_head.params_mut());
        out.extend(self.dir_head.params_mut());
        out.extend(self.value_head.params_mut());
        out
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Snapshot of all parameter values (for parameter-server exchange in
    /// the multi-threaded framework, §4.6).
    pub fn param_snapshot(&mut self) -> Vec<Tensor> {
        self.params_mut().iter().map(|p| p.value.clone()).collect()
    }

    /// Loads a parameter snapshot produced by
    /// [`PolicyValueNet::param_snapshot`] on an identically configured net.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match this network's parameters.
    pub fn load_params(&mut self, snapshot: &[Tensor]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), snapshot.len(), "snapshot length mismatch");
        for (p, s) in params.iter_mut().zip(snapshot) {
            assert_eq!(p.value.shape(), s.shape(), "snapshot shape mismatch");
            p.value = s.clone();
        }
    }

    /// Snapshot of all accumulated gradients (child → parent exchange).
    pub fn grad_snapshot(&mut self) -> Vec<Tensor> {
        self.params_mut().iter().map(|p| p.grad.clone()).collect()
    }

    /// Snapshot of the non-parameter state that training forwards mutate
    /// (batch-norm running statistics). Parameter snapshots do NOT include
    /// this state; a caller that needs a training attempt to be fully
    /// reversible must capture both.
    pub fn norm_snapshot(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.trunk.append_norm_state(&mut out);
        self.coord_head.append_norm_state(&mut out);
        self.dir_head.append_norm_state(&mut out);
        self.value_head.append_norm_state(&mut out);
        out
    }

    /// Restores a snapshot from [`PolicyValueNet::norm_snapshot`] on an
    /// identically configured net.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match this network's norm layers.
    pub fn load_norm_snapshot(&mut self, snapshot: &[f32]) {
        let mut used = self.trunk.load_norm_state(snapshot);
        used += self.coord_head.load_norm_state(&snapshot[used..]);
        used += self.dir_head.load_norm_state(&snapshot[used..]);
        used += self.value_head.load_norm_state(&snapshot[used..]);
        assert_eq!(used, snapshot.len(), "norm snapshot length mismatch");
    }

    /// Accumulates a gradient snapshot into this network's parameter
    /// gradients (parent side of the §4.6 exchange).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match this network's parameters.
    pub fn accumulate_grads(&mut self, grads: &[Tensor]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), grads.len(), "gradient snapshot mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            p.grad.add_scaled(g, 1.0);
        }
    }

    /// Serializes the parameter values to a JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be written.
    pub fn save_checkpoint(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let snapshot = self.param_snapshot();
        let json = serde_json::to_string(&snapshot).expect("tensors always serialize");
        std::fs::write(path, json)
    }

    /// Loads parameter values from a checkpoint written by
    /// [`PolicyValueNet::save_checkpoint`] on an identically configured
    /// network.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read or parsed.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shapes do not match this network.
    pub fn load_checkpoint(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = std::fs::read_to_string(path)?;
        let snapshot: Vec<Tensor> = serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.load_params(&snapshot);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shapes_small() {
        let mut net = PolicyValueNet::new(PolicyValueConfig::small(4), 1);
        let x = Tensor::zeros(&[2, 1, 16, 16]);
        let out = net.forward(&x, false);
        assert_eq!(out.coord_logits.shape(), &[2, 4, 4]);
        assert_eq!(out.dir.shape(), &[2, 1]);
        assert_eq!(out.value.shape(), &[2, 1]);
        assert!(out.dir.as_slice().iter().all(|d| d.abs() <= 1.0));
    }

    #[test]
    fn paper_config_pools_three_times() {
        let cfg = PolicyValueConfig::paper(8);
        assert_eq!(cfg.input_side, 64);
        assert_eq!(cfg.final_side(), 8);
    }

    #[test]
    fn forward_is_deterministic_per_seed() {
        let cfg = PolicyValueConfig::small(2);
        let x =
            Tensor::from_vec((0..16).map(|v| v as f32 / 16.0).collect(), &[1, 1, 4, 4]).unwrap();
        let mut a = PolicyValueNet::new(cfg.clone(), 5);
        let mut b = PolicyValueNet::new(cfg, 5);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn snapshot_round_trip() {
        let cfg = PolicyValueConfig::small(2);
        let x =
            Tensor::from_vec((0..16).map(|v| (v as f32).sin()).collect(), &[1, 1, 4, 4]).unwrap();
        let mut a = PolicyValueNet::new(cfg.clone(), 5);
        let mut b = PolicyValueNet::new(cfg, 99);
        assert_ne!(a.forward(&x, false), b.forward(&x, false));
        let snap = a.param_snapshot();
        b.load_params(&snap);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn checkpoint_round_trip() {
        let cfg = PolicyValueConfig::small(2);
        let x =
            Tensor::from_vec((0..16).map(|v| (v as f32).cos()).collect(), &[1, 1, 4, 4]).unwrap();
        let mut a = PolicyValueNet::new(cfg.clone(), 5);
        let mut b = PolicyValueNet::new(cfg, 99);
        let dir = std::env::temp_dir().join("rlnoc_ckpt_test.json");
        a.save_checkpoint(&dir).unwrap();
        b.load_checkpoint(&dir).unwrap();
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn training_reduces_value_loss() {
        // Regress the value head toward a constant target — a smoke test
        // that gradients flow end to end.
        let cfg = PolicyValueConfig::small(2);
        let mut net = PolicyValueNet::new(cfg, 3);
        let x = Tensor::from_vec((0..16).map(|v| v as f32 / 8.0).collect(), &[1, 1, 4, 4]).unwrap();
        let target = 0.7f32;
        let mut opt = crate::optim::Adam::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let out = net.forward(&x, true);
            let v = out.value.as_slice()[0];
            let (loss, gv) = crate::loss::value_head_grad(v, target);
            first.get_or_insert(loss);
            last = loss;
            let grad = PolicyValueGrad {
                coord_logits: Tensor::zeros(&[1, 4, 2]),
                dir: Tensor::zeros(&[1, 1]),
                value: Tensor::from_vec(vec![gv], &[1, 1]).unwrap(),
            };
            net.backward(&grad);
            let mut params = net.params_mut();
            opt.step(&mut params);
        }
        assert!(
            last < first.unwrap() * 0.2,
            "value loss should shrink: first {:?} last {last}",
            first
        );
    }

    #[test]
    fn policy_training_shifts_distribution() {
        // Reinforce action index 3 of head 0 with positive advantage; its
        // probability should grow.
        let cfg = PolicyValueConfig::small(4);
        let mut net = PolicyValueNet::new(cfg, 11);
        let x = Tensor::from_vec(
            (0..256).map(|v| (v as f32 * 0.1).cos()).collect(),
            &[1, 1, 16, 16],
        )
        .unwrap();
        let probs_of = |net: &mut PolicyValueNet, x: &Tensor| {
            let out = net.forward(x, false);
            let logits: Vec<f32> = out.coord_logits.as_slice()[0..4].to_vec();
            crate::loss::softmax(&logits)
        };
        let before = probs_of(&mut net, &x)[3];
        let mut opt = crate::optim::Adam::new(1e-2);
        for _ in 0..20 {
            let out = net.forward(&x, true);
            let logits: Vec<f32> = out.coord_logits.as_slice()[0..4].to_vec();
            let (_, g) = crate::loss::policy_head_grad(&logits, 3, 1.0);
            let mut cg = Tensor::zeros(&[1, 4, 4]);
            for (i, &gi) in g.iter().enumerate() {
                cg.set(&[0, 0, i], gi);
            }
            net.backward(&PolicyValueGrad {
                coord_logits: cg,
                dir: Tensor::zeros(&[1, 1]),
                value: Tensor::zeros(&[1, 1]),
            });
            let mut params = net.params_mut();
            opt.step(&mut params);
        }
        let after = probs_of(&mut net, &x)[3];
        assert!(
            after > before,
            "P(x1=3) should increase: {before} → {after}"
        );
    }
}
