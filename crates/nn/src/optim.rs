//! Optimizers: SGD with momentum and Adam, plus global-norm gradient
//! clipping (the stabilization the paper's multi-threaded training relies
//! on when averaging "both large gradients and small gradients", §4.6).

use crate::layers::Param;
use crate::Tensor;

/// Scales all gradients so their global L2 norm does not exceed
/// `max_norm`. Returns the pre-clip norm.
///
/// A non-finite norm (NaN/Inf gradients, or overflow in the sum of
/// squares) leaves the gradients untouched: rescaling by `max_norm / NaN`
/// would poison every parameter on the following step. The norm is still
/// returned so callers can detect and report the anomaly.
pub fn clip_global_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let norm: f32 = params
        .iter()
        .map(|p| {
            let n = p.grad.norm();
            n * n
        })
        .sum::<f32>()
        .sqrt();
    if norm.is_finite() && norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.grad = p.grad.scale(scale);
        }
    }
    norm
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr` and momentum
    /// coefficient `momentum` (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to `params` from their accumulated
    /// gradients, then zeroes the gradients.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list changes shape between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter set changed");
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            assert_eq!(v.shape(), p.value.shape(), "parameter shape changed");
            *v = v.scale(self.momentum);
            v.add_scaled(&p.grad, 1.0);
            p.value.add_scaled(v, -self.lr);
            p.zero_grad();
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Step count and first/second moment estimates, for checkpointing.
    /// Empty moments mean the optimizer has not stepped yet.
    pub fn state(&self) -> (u64, &[Tensor], &[Tensor]) {
        (self.t, &self.m, &self.v)
    }

    /// Restores state captured by [`Adam::state`]. Resuming a run without
    /// the moments silently restarts bias correction and changes every
    /// subsequent step, so checkpoints must round-trip them.
    ///
    /// # Panics
    ///
    /// Panics if the moment vectors disagree in length.
    pub fn restore_state(&mut self, t: u64, m: Vec<Tensor>, v: Vec<Tensor>) {
        assert_eq!(m.len(), v.len(), "moment vectors must align");
        self.t = t;
        self.m = m;
        self.v = v;
    }

    /// Applies one Adam step to `params`, then zeroes their gradients.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list changes shape between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter set changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad.as_slice();
            let mv = m.as_mut_slice();
            let vv = v.as_mut_slice();
            let pv = p.value.as_mut_slice();
            for i in 0..g.len() {
                mv[i] = self.beta1 * mv[i] + (1.0 - self.beta1) * g[i];
                vv[i] = self.beta2 * vv[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = mv[i] / bc1;
                let vhat = vv[i] / bc2;
                pv[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Param {
        Param::new(Tensor::from_vec(vec![x0], &[1]).unwrap())
    }

    /// Minimize f(x) = (x - 3)² with each optimizer.
    fn run<F: FnMut(&mut [&mut Param])>(p: &mut Param, mut step: F, iters: usize) -> f32 {
        for _ in 0..iters {
            let x = p.value.as_slice()[0];
            p.grad = Tensor::from_vec(vec![2.0 * (x - 3.0)], &[1]).unwrap();
            let mut params = [&mut *p];
            step(&mut params);
        }
        p.value.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = quadratic_param(0.0);
        let mut opt = Sgd::new(0.1, 0.0);
        let x = run(&mut p, |ps| opt.step(ps), 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut p = quadratic_param(-5.0);
        let mut opt = Sgd::new(0.05, 0.9);
        let x = run(&mut p, |ps| opt.step(ps), 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = quadratic_param(10.0);
        let mut opt = Adam::new(0.3);
        let x = run(&mut p, |ps| opt.step(ps), 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = quadratic_param(0.0);
        p.grad = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let mut opt = Sgd::new(0.1, 0.0);
        let mut params = [&mut p];
        opt.step(&mut params);
        assert_eq!(p.grad.as_slice(), &[0.0]);
    }

    #[test]
    fn clip_rescales_only_when_needed() {
        let mut a = quadratic_param(0.0);
        a.grad = Tensor::from_vec(vec![3.0], &[1]).unwrap();
        let mut b = quadratic_param(0.0);
        b.grad = Tensor::from_vec(vec![4.0], &[1]).unwrap();
        {
            let mut params = [&mut a, &mut b];
            let norm = clip_global_norm(&mut params, 10.0);
            assert!((norm - 5.0).abs() < 1e-6);
        }
        assert_eq!(a.grad.as_slice(), &[3.0], "below cap: untouched");
        {
            let mut params = [&mut a, &mut b];
            let norm = clip_global_norm(&mut params, 1.0);
            assert!((norm - 5.0).abs() < 1e-6);
        }
        assert!((a.grad.as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((b.grad.as_slice()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn clip_leaves_grads_alone_on_non_finite_norm() {
        let mut a = quadratic_param(0.0);
        a.grad = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        let mut b = quadratic_param(0.0);
        b.grad = Tensor::from_vec(vec![4.0], &[1]).unwrap();
        let norm = {
            let mut params = [&mut a, &mut b];
            clip_global_norm(&mut params, 1.0)
        };
        assert!(norm.is_nan(), "norm reported for anomaly detection: {norm}");
        assert!(a.grad.as_slice()[0].is_nan(), "NaN grad untouched");
        assert_eq!(
            b.grad.as_slice(),
            &[4.0],
            "finite grad must not be rescaled by NaN"
        );

        let mut c = quadratic_param(0.0);
        c.grad = Tensor::from_vec(vec![f32::INFINITY], &[1]).unwrap();
        let norm = {
            let mut params = [&mut c];
            clip_global_norm(&mut params, 1.0)
        };
        assert_eq!(norm, f32::INFINITY);
        assert_eq!(c.grad.as_slice()[0], f32::INFINITY, "Inf grad untouched");
    }
}
