//! Naive reference kernels — the correctness oracles for the optimized
//! paths in [`crate::kernels`] and the im2col convolution.
//!
//! These are the original (pre-optimization) loop nests, kept as
//! straightforward as possible so they are easy to audit by eye. Parity
//! tests assert that the blocked GEMM and the im2col convolution agree
//! with these within floating-point tolerance across random shapes. They
//! are compiled into the library (not just test builds) so benchmarks can
//! report optimized-vs-naive ratios.

use crate::Tensor;

/// Naive triple-loop matrix multiply: `[m, k] × [k, n] → [m, n]`.
///
/// No zero-skip fast path: `0 × NaN` propagates, exactly like the blocked
/// kernel.
///
/// # Panics
/// Panics if either tensor is not 2-D or inner dimensions disagree.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimensions disagree");
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            let row = &bd[p * n..(p + 1) * n];
            let dst = &mut out[i * n..(i + 1) * n];
            for (d, &bv) in dst.iter_mut().zip(row) {
                *d += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("sized above")
}

/// Naive direct convolution: stride 1, same zero padding (`pad = k / 2`).
///
/// `x` is `[batch, in_c, h, w]`, `weight` is `[out_c, in_c, k, k]`, `bias`
/// is `[out_c]`; the result is `[batch, out_c, h, w]`.
///
/// # Panics
/// Panics if shapes are inconsistent.
pub fn conv2d_naive(x: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
    let [batch, in_c, h, w] = shape4(x);
    let [out_c, w_in_c, k, k2] = shape4(weight);
    assert_eq!(in_c, w_in_c, "conv input channels disagree");
    assert_eq!(k, k2, "conv kernels must be square");
    assert_eq!(bias.shape(), &[out_c], "conv bias shape");
    let pad = k / 2;

    let (xd, wd, bd) = (x.as_slice(), weight.as_slice(), bias.as_slice());
    let mut out = vec![0.0f32; batch * out_c * h * w];
    for b in 0..batch {
        for oc in 0..out_c {
            for oy in 0..h {
                for ox in 0..w {
                    let mut acc = bd[oc];
                    for ic in 0..in_c {
                        let ibase = (b * in_c + ic) * h * w;
                        let wbase = ((oc * in_c + ic) * k) * k;
                        for ky in 0..k {
                            let iy = oy + ky;
                            if iy < pad || iy >= h + pad {
                                continue;
                            }
                            let iy = iy - pad;
                            for kx in 0..k {
                                let ix = ox + kx;
                                if ix < pad || ix >= w + pad {
                                    continue;
                                }
                                let ix = ix - pad;
                                acc += xd[ibase + iy * w + ix] * wd[wbase + ky * k + kx];
                            }
                        }
                    }
                    out[((b * out_c + oc) * h + oy) * w + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[batch, out_c, h, w]).expect("sized above")
}

fn shape4(t: &Tensor) -> [usize; 4] {
    let s = t.shape();
    assert_eq!(s.len(), 4, "expected a 4-D tensor, got {s:?}");
    [s[0], s[1], s[2], s[3]]
}
