use crate::NnError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// Convolutional data follows the NCHW convention: `[batch, channels,
/// height, width]`. Fully connected data is `[batch, features]`.
///
/// # Example
///
/// ```
/// use rlnoc_nn::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Wraps `data` with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadReshape`] if `data.len()` does not match the
    /// shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, NnError> {
        let expect: usize = shape.iter().product();
        if data.len() != expect {
            return Err(NnError::BadReshape {
                from: data.len(),
                to: expect,
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < dim, "index {ix} out of range for dim {i} (size {dim})");
            off = off * dim + ix;
        }
        off
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadReshape`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, NnError> {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += other * scale`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// L2 norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// True when every element is finite (no NaN or ±Inf). Anomaly
    /// detectors use this to scan gradients and parameters after a step.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Matrix multiplication of 2-D tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Runs on the cache-blocked kernel in [`crate::kernels`] (row-parallel
    /// above a size threshold; results are identical for any thread count).
    /// Unlike earlier versions there is no zero-skip fast path, so
    /// `0 × NaN` propagates as IEEE-754 requires.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, _, n) = self.matmul_dims(other);
        let mut out = Tensor::zeros(&[m, n]);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix multiplication writing into a caller-provided output tensor,
    /// avoiding the per-call allocation of [`Tensor::matmul`]. `out` is
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if operands are not 2-D, inner dimensions disagree, or `out`
    /// is not `[m, n]`.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k, n) = self.matmul_dims(other);
        assert_eq!(out.shape, [m, n], "matmul_into output shape mismatch");
        crate::kernels::gemm(
            false,
            false,
            m,
            k,
            n,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    fn matmul_dims(&self, other: &Tensor) -> (usize, usize, usize) {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions disagree");
        (m, k, n)
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "elementwise shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} (mean {:.4})", self.shape, self.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
        assert_eq!(t.get(&[1, 2, 3]), 23.0);
        assert_eq!(t.get(&[1, 0, 2]), 14.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(NnError::BadReshape { from: 5, to: 6 })
        ));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let b = Tensor::from_vec((0..20).map(|x| x as f32 * 0.5).collect(), &[4, 5]).unwrap();
        let mut out = Tensor::full(&[3, 5], f32::NAN); // must be fully overwritten
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_zero_times_nan_is_nan() {
        let a = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, 1.0], &[2, 1]).unwrap();
        assert!(a.matmul(&b).as_slice()[0].is_nan());
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn matmul_into_rejects_bad_output_shape() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let mut out = Tensor::zeros(&[2, 3]);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(&[2, 1]), a.get(&[1, 2]));
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.max(), 3.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert!((t.norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn add_scaled_in_place() {
        let mut a = Tensor::zeros(&[2]);
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn elementwise_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }
}
