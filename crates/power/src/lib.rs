//! Analytical power and area models for NoC fabrics, calibrated to the
//! paper's post-place-&-route numbers (15 nm NanGate, 2.0 GHz).
//!
//! The paper obtains power and area from Synopsys DC synthesis plus
//! Cadence Encounter place & route, then scales dynamic power by link
//! utilization from simulation (§5, §6.5–6.6). This crate encodes that
//! same methodology analytically (see `DESIGN.md`): per-component
//! constants anchored to the paper's reported values, scaled by
//! structure (the node-overlapping cap) and activity (flit-hops per cycle
//! from [`rlnoc_sim::Metrics`]).
//!
//! Calibration anchors from the paper:
//!
//! - node area, 8x8 after P&R: mesh 45,278 µm²; REC/DRL at overlap 14
//!   7,981 µm²; DRL at overlap 10 5,860 µm² (Figure 15);
//! - source lookup table: 443 µm² and 0.028 mW (§6.6);
//! - static power per node: mesh 1.23 mW, REC/DRL 0.23 mW at overlap 14
//!   (Figure 14);
//! - average dynamic power (PARSEC, 8x8): DRL ≈ 80.8% below mesh and
//!   11.7% below REC (§6.5).
//!
//! # Example
//!
//! ```
//! use rlnoc_power::{AreaModel, PowerModel, Fabric};
//!
//! let area = AreaModel::default();
//! assert!(area.node_area_um2(Fabric::Mesh) > 40_000.0);
//! let power = PowerModel::default();
//! // Idle fabrics burn only static power.
//! let idle = power.node_power_mw(Fabric::Routerless { overlap: 14 }, 0.0);
//! assert!((idle.static_mw - 0.23).abs() < 1e-9);
//! assert_eq!(idle.dynamic_mw, 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use serde::{Deserialize, Serialize};

/// The fabric whose power/area is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fabric {
    /// Router-based mesh (the paper's Mesh-2/Mesh-1 hardware is the same
    /// router; pipeline depth does not change area/power here).
    Mesh,
    /// Routerless NoC with interfaces sized for `overlap` loops per node.
    Routerless {
        /// The node-overlapping cap the interface is built for.
        overlap: u32,
    },
}

/// Per-node power split into static and dynamic components, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Leakage + clock power, independent of traffic.
    pub static_mw: f64,
    /// Activity-proportional power.
    pub dynamic_mw: f64,
}

impl PowerBreakdown {
    /// Total per-node power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }
}

/// Activity-scaled power model.
///
/// Dynamic power is `energy-per-flit-hop × flit-hops-per-cycle ×
/// frequency`; the per-flit-hop energy differs by an order of magnitude
/// between a mesh hop (buffer write/read, VC and switch allocation,
/// crossbar traversal, link) and a routerless hop (link plus one flit
/// register), which is what produces the paper's ~5x total power gap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Energy per flit-hop through a mesh router + link, picojoules.
    pub mesh_pj_per_flit_hop: f64,
    /// Energy per flit-hop along a routerless loop, picojoules.
    pub routerless_pj_per_flit_hop: f64,
    /// Static power of a mesh node, milliwatts.
    pub mesh_static_mw: f64,
    /// Static power intercept of a routerless node, milliwatts.
    pub routerless_static_base_mw: f64,
    /// Static power per unit of overlap cap (loop buffers + muxes),
    /// milliwatts.
    pub routerless_static_per_overlap_mw: f64,
    /// Clock frequency, GHz (the paper evaluates at 2.0 GHz).
    pub frequency_ghz: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            // Calibrated so that on the paper's PARSEC-like activity the
            // mesh/routerless dynamic gap lands near the reported 80.8%
            // (mesh flit-hops also run ~0.6x of routerless flit counts due
            // to wider links, so the per-hop energy gap must be ~10x).
            mesh_pj_per_flit_hop: 1.20,
            routerless_pj_per_flit_hop: 0.12,
            mesh_static_mw: 1.23,
            routerless_static_base_mw: 0.0375,
            routerless_static_per_overlap_mw: 0.01375,
            frequency_ghz: 2.0,
        }
    }
}

impl PowerModel {
    /// Per-node static power for `fabric`, milliwatts.
    pub fn static_power_mw(&self, fabric: Fabric) -> f64 {
        match fabric {
            Fabric::Mesh => self.mesh_static_mw,
            Fabric::Routerless { overlap } => {
                self.routerless_static_base_mw
                    + self.routerless_static_per_overlap_mw * f64::from(overlap)
            }
        }
    }

    /// Per-node dynamic power at the given activity (flit-hops per node
    /// per cycle), milliwatts.
    pub fn dynamic_power_mw(&self, fabric: Fabric, flit_hops_per_node_cycle: f64) -> f64 {
        let pj = match fabric {
            Fabric::Mesh => self.mesh_pj_per_flit_hop,
            Fabric::Routerless { .. } => self.routerless_pj_per_flit_hop,
        };
        // pJ × events/cycle × GHz = mW.
        pj * flit_hops_per_node_cycle * self.frequency_ghz
    }

    /// Full per-node breakdown at the given activity.
    pub fn node_power_mw(&self, fabric: Fabric, flit_hops_per_node_cycle: f64) -> PowerBreakdown {
        PowerBreakdown {
            static_mw: self.static_power_mw(fabric),
            dynamic_mw: self.dynamic_power_mw(fabric, flit_hops_per_node_cycle),
        }
    }

    /// Convenience: breakdown from simulation [`rlnoc_sim::Metrics`].
    pub fn from_metrics(&self, fabric: Fabric, metrics: &rlnoc_sim::Metrics) -> PowerBreakdown {
        self.node_power_mw(fabric, metrics.flit_hops_per_node_cycle())
    }
}

/// Node-area model (Figure 15), linear in the overlap cap for routerless
/// interfaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Mesh router + interface area, µm².
    pub mesh_node_um2: f64,
    /// Routerless interface intercept, µm² (source lookup table, ejection
    /// logic).
    pub routerless_base_um2: f64,
    /// Routerless area per unit of overlap cap (one loop's flit buffer and
    /// mux), µm².
    pub routerless_per_overlap_um2: f64,
    /// Repeater area per node per unit overlap, µm² (DRL needs repeaters
    /// on long wires; §6.6 reports 0.159 mm² total for DRL(14) on 8x8).
    pub repeater_per_overlap_um2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        // Solving the two routerless anchors (overlap 10 → 5,860; overlap
        // 14 → 7,981) gives slope 530.25 and intercept 557.5.
        AreaModel {
            mesh_node_um2: 45_278.0,
            routerless_base_um2: 557.5,
            routerless_per_overlap_um2: 530.25,
            repeater_per_overlap_um2: 0.159e6 / (64.0 * 14.0),
        }
    }
}

impl AreaModel {
    /// Per-node area for `fabric` (µm²).
    pub fn node_area_um2(&self, fabric: Fabric) -> f64 {
        match fabric {
            Fabric::Mesh => self.mesh_node_um2,
            Fabric::Routerless { overlap } => {
                self.routerless_base_um2 + self.routerless_per_overlap_um2 * f64::from(overlap)
            }
        }
    }

    /// Per-node repeater overhead for a routerless design at `overlap`
    /// (µm²).
    pub fn repeater_area_um2(&self, overlap: u32) -> f64 {
        self.repeater_per_overlap_um2 * f64::from(overlap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_matches_paper_anchors() {
        let a = AreaModel::default();
        let rec14 = a.node_area_um2(Fabric::Routerless { overlap: 14 });
        let drl10 = a.node_area_um2(Fabric::Routerless { overlap: 10 });
        assert!((rec14 - 7_981.0).abs() < 1.0, "overlap 14 → {rec14}");
        assert!((drl10 - 5_860.0).abs() < 1.0, "overlap 10 → {drl10}");
        assert!((a.node_area_um2(Fabric::Mesh) - 45_278.0).abs() < 1e-9);
    }

    #[test]
    fn area_ordering_matches_figure15() {
        let a = AreaModel::default();
        let mesh = a.node_area_um2(Fabric::Mesh);
        let r14 = a.node_area_um2(Fabric::Routerless { overlap: 14 });
        let r10 = a.node_area_um2(Fabric::Routerless { overlap: 10 });
        assert!(r10 < r14 && r14 < mesh);
        // Mesh is ~5.7x REC(14), as in the figure.
        assert!((mesh / r14 - 5.67).abs() < 0.2);
    }

    #[test]
    fn static_power_matches_paper() {
        let p = PowerModel::default();
        let rl14 = p.static_power_mw(Fabric::Routerless { overlap: 14 });
        assert!((rl14 - 0.23).abs() < 1e-9, "REC/DRL(14) static {rl14}");
        assert!((p.static_power_mw(Fabric::Mesh) - 1.23).abs() < 1e-9);
        // Lower overlap caps cost less leakage (Figure 13's x-axis trend).
        let rl10 = p.static_power_mw(Fabric::Routerless { overlap: 10 });
        assert!(rl10 < rl14);
    }

    #[test]
    fn dynamic_power_scales_with_activity() {
        let p = PowerModel::default();
        let f = Fabric::Routerless { overlap: 14 };
        let low = p.dynamic_power_mw(f, 0.1);
        let high = p.dynamic_power_mw(f, 0.2);
        assert!((high - 2.0 * low).abs() < 1e-12);
    }

    #[test]
    fn mesh_hop_energy_dominates() {
        // Same activity: a mesh hop costs ~10x a routerless hop, the root
        // of the paper's 80.8% dynamic power reduction.
        let p = PowerModel::default();
        let ratio = p.dynamic_power_mw(Fabric::Mesh, 1.0)
            / p.dynamic_power_mw(Fabric::Routerless { overlap: 14 }, 1.0);
        assert!((9.0..=11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn repeater_overhead_small_vs_mesh() {
        // Repeaters for DRL(14) come to ~2,484 µm²/node (0.159 mm² over 64
        // nodes, §6.6) — about 5% of one mesh node and negligible overall.
        let a = AreaModel::default();
        let per_node = a.repeater_area_um2(14);
        let pct = per_node / a.node_area_um2(Fabric::Mesh);
        assert!(
            (0.04..=0.06).contains(&pct),
            "repeaters are {pct:.3} of mesh"
        );
    }
}
