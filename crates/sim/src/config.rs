use serde::{Deserialize, Serialize};

/// Simulation parameters shared by all fabrics, defaulting to the paper's
/// methodology (§5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Warm-up cycles excluded from measurement.
    pub warmup: u64,
    /// Measured cycles after warm-up (the paper uses 100,000).
    pub measure: u64,
    /// Drain allowance after the measurement window, letting in-flight
    /// measured packets reach their destinations.
    pub drain: u64,
    /// Flits per data packet (paper: 72-byte data packets are 5 flits on
    /// 128-bit routerless links, 3 flits on 256-bit mesh links).
    pub data_flits: usize,
    /// Flits per control packet (1 in both fabrics).
    pub control_flits: usize,
    /// Fraction of generated packets that are control packets.
    pub control_fraction: f64,
}

impl SimConfig {
    /// The paper's measurement setup for routerless fabrics: 5-flit data
    /// packets on 128-bit links.
    pub fn routerless() -> Self {
        SimConfig {
            data_flits: 5,
            ..SimConfig::default()
        }
    }

    /// The paper's measurement setup for mesh fabrics: 3-flit data packets
    /// on 256-bit links.
    pub fn mesh() -> Self {
        SimConfig {
            data_flits: 3,
            ..SimConfig::default()
        }
    }

    /// Average flits per packet under the configured control/data mix.
    pub fn mean_packet_flits(&self) -> f64 {
        self.control_fraction * self.control_flits as f64
            + (1.0 - self.control_fraction) * self.data_flits as f64
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            warmup: 1_000,
            measure: 10_000,
            drain: 2_000,
            data_flits: 5,
            control_flits: 1,
            control_fraction: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_packet_sizes() {
        assert_eq!(SimConfig::routerless().data_flits, 5);
        assert_eq!(SimConfig::mesh().data_flits, 3);
        assert_eq!(SimConfig::mesh().control_flits, 1);
    }

    #[test]
    fn mean_packet_flits_mixes() {
        let cfg = SimConfig {
            control_fraction: 0.5,
            control_flits: 1,
            data_flits: 5,
            ..SimConfig::default()
        };
        assert!((cfg.mean_packet_flits() - 3.0).abs() < 1e-12);
    }
}
