//! Typed validation errors for simulator and sweep inputs.
//!
//! The tick loops assume sane parameters (positive rates, nonzero
//! windows); feeding them garbage used to surface as a panic deep inside
//! the kernel. These validators reject bad inputs at the boundary with a
//! descriptive [`SimError`] instead.

use crate::config::SimConfig;
use crate::sweep::{SweepEngine, SweepParams};

/// A rejected simulator or sweep input.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An injection rate outside `(0, 1]` flits/node/cycle.
    InvalidRate {
        /// The offending rate.
        rate: f64,
    },
    /// A cycle window that must be nonzero was zero.
    ZeroCycles {
        /// Which field was zero (e.g. `"measure"`).
        field: &'static str,
    },
    /// A worker pool cannot have zero threads.
    ZeroThreads,
    /// A sweep step that is not strictly positive.
    InvalidSweepStep {
        /// The offending step.
        step: f64,
    },
    /// A sweep whose `max_rate` lies below its `start`.
    EmptySweepRange {
        /// The first rate.
        start: f64,
        /// The (smaller) maximum rate.
        max_rate: f64,
    },
    /// A saturation latency factor that is not strictly positive.
    InvalidLatencyFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A control-packet fraction outside `[0, 1]`.
    InvalidControlFraction {
        /// The offending fraction.
        fraction: f64,
    },
    /// A packet size of zero flits.
    ZeroFlits {
        /// Which field was zero (`"data_flits"` or `"control_flits"`).
        field: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidRate { rate } => {
                write!(f, "injection rate {rate} outside (0, 1] flits/node/cycle")
            }
            SimError::ZeroCycles { field } => write!(f, "{field} must be nonzero"),
            SimError::ZeroThreads => write!(f, "thread count must be nonzero"),
            SimError::InvalidSweepStep { step } => {
                write!(f, "sweep step {step} must be strictly positive and finite")
            }
            SimError::EmptySweepRange { start, max_rate } => {
                write!(
                    f,
                    "sweep range is empty: start {start} > max_rate {max_rate}"
                )
            }
            SimError::InvalidLatencyFactor { factor } => {
                write!(
                    f,
                    "latency factor {factor} must be strictly positive and finite"
                )
            }
            SimError::InvalidControlFraction { fraction } => {
                write!(f, "control fraction {fraction} outside [0, 1]")
            }
            SimError::ZeroFlits { field } => write!(f, "{field} must be at least 1"),
        }
    }
}

impl std::error::Error for SimError {}

/// Validates a rate in `(0, 1]` flits/node/cycle.
pub(crate) fn validate_rate(rate: f64) -> Result<(), SimError> {
    if rate.is_finite() && rate > 0.0 && rate <= 1.0 {
        Ok(())
    } else {
        Err(SimError::InvalidRate { rate })
    }
}

impl SimConfig {
    /// Checks that this configuration can drive a meaningful run: a
    /// nonzero measurement window, nonzero packet sizes, and a control
    /// fraction in `[0, 1]`. (Warm-up and drain may legitimately be
    /// zero.)
    pub fn validate(&self) -> Result<(), SimError> {
        if self.measure == 0 {
            return Err(SimError::ZeroCycles { field: "measure" });
        }
        if self.data_flits == 0 {
            return Err(SimError::ZeroFlits {
                field: "data_flits",
            });
        }
        if self.control_flits == 0 {
            return Err(SimError::ZeroFlits {
                field: "control_flits",
            });
        }
        if !(0.0..=1.0).contains(&self.control_fraction) || self.control_fraction.is_nan() {
            return Err(SimError::InvalidControlFraction {
                fraction: self.control_fraction,
            });
        }
        Ok(())
    }
}

impl SweepParams {
    /// Checks that these parameters describe a nonempty, in-range sweep:
    /// `start` in `(0, 1]`, a strictly positive `step`, `max_rate ≥
    /// start` (and ≤ 1), and a positive saturation factor.
    pub fn validate(&self) -> Result<(), SimError> {
        validate_rate(self.start)?;
        if !self.step.is_finite() || self.step <= 0.0 {
            return Err(SimError::InvalidSweepStep { step: self.step });
        }
        if self.max_rate < self.start {
            return Err(SimError::EmptySweepRange {
                start: self.start,
                max_rate: self.max_rate,
            });
        }
        if self.max_rate > 1.0 {
            return Err(SimError::InvalidRate {
                rate: self.max_rate,
            });
        }
        if !self.latency_factor.is_finite() || self.latency_factor <= 0.0 {
            return Err(SimError::InvalidLatencyFactor {
                factor: self.latency_factor,
            });
        }
        Ok(())
    }
}

impl SweepEngine {
    /// Fallible constructor: rejects a zero thread count with a typed
    /// error instead of panicking like [`SweepEngine::new`].
    pub fn try_new(threads: usize) -> Result<Self, SimError> {
        if threads == 0 {
            Err(SimError::ZeroThreads)
        } else {
            Ok(SweepEngine::new(threads))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
        assert_eq!(SimConfig::routerless().validate(), Ok(()));
        assert_eq!(SimConfig::mesh().validate(), Ok(()));
        assert_eq!(SweepParams::paper(0).validate(), Ok(()));
    }

    #[test]
    fn bad_configs_are_rejected_with_typed_errors() {
        let cfg = SimConfig {
            measure: 0,
            ..SimConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(SimError::ZeroCycles { field: "measure" })
        );

        let cfg = SimConfig {
            data_flits: 0,
            ..SimConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(SimError::ZeroFlits {
                field: "data_flits"
            })
        );

        let cfg = SimConfig {
            control_fraction: 1.5,
            ..SimConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidControlFraction { .. })
        ));
    }

    #[test]
    fn bad_sweep_params_are_rejected() {
        let good = SweepParams::paper(1);
        assert!(SweepParams { start: 0.0, ..good }.validate().is_err());
        assert!(SweepParams {
            start: -0.1,
            ..good
        }
        .validate()
        .is_err());
        assert!(SweepParams { step: 0.0, ..good }.validate().is_err());
        assert!(SweepParams {
            step: f64::NAN,
            ..good
        }
        .validate()
        .is_err());
        assert_eq!(
            SweepParams {
                max_rate: 0.001,
                ..good
            }
            .validate(),
            Err(SimError::EmptySweepRange {
                start: 0.005,
                max_rate: 0.001
            })
        );
        assert!(SweepParams {
            max_rate: 1.5,
            ..good
        }
        .validate()
        .is_err());
        assert!(SweepParams {
            latency_factor: 0.0,
            ..good
        }
        .validate()
        .is_err());
    }

    #[test]
    fn try_new_rejects_zero_threads() {
        assert_eq!(SweepEngine::try_new(0).unwrap_err(), SimError::ZeroThreads);
        assert_eq!(SweepEngine::try_new(3).unwrap().threads(), 3);
    }

    #[test]
    fn errors_display_their_values() {
        let msg = SimError::InvalidRate { rate: 1.7 }.to_string();
        assert!(msg.contains("1.7"));
        let msg = SimError::ZeroCycles { field: "measure" }.to_string();
        assert!(msg.contains("measure"));
    }
}
