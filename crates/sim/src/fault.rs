//! Cycle-scheduled fault injection for the simulators: permanent loop and
//! link kills plus transient injection-stall windows, applied at exact
//! cycles so faulted runs stay deterministic (and therefore bit-identical
//! across sweep thread counts).
//!
//! A [`FaultPlan`] is a sorted schedule of [`FaultEvent`]s. Both fabrics
//! consult it at the top of each tick; an *empty* plan is required to
//! leave the kernels bit-identical to their fault-free behaviour — the
//! parity tests in `tests/fault_parity.rs` enforce that contract.

use rlnoc_topology::{FaultSet, NodeId};
use serde::{Deserialize, Serialize};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Permanently kill a whole loop of a routerless fabric at cycle `at`:
    /// in-flight flits on the loop are dropped (counted in
    /// `dropped_by_fault`), and sources reroute over the survivors.
    KillLoop {
        /// Cycle the fault becomes active (applied at the top of that tick).
        at: u64,
        /// Index into the topology's loop list.
        loop_index: usize,
    },
    /// Permanently cut one directed link of one routerless loop at cycle
    /// `at`, identified by the node the link leaves. Flits whose remaining
    /// arc crosses the cut are dropped; the rest of the loop keeps
    /// working.
    KillLink {
        /// Cycle the fault becomes active.
        at: u64,
        /// Index into the topology's loop list.
        loop_index: usize,
        /// Node whose outgoing link on that loop is cut.
        from: NodeId,
    },
    /// Permanently kill the directed mesh link `from -> to` at cycle `at`.
    /// The mesh falls back to fault-masked XY routing; packets left with
    /// no productive live port are dropped and accounted.
    KillMeshLink {
        /// Cycle the fault becomes active.
        at: u64,
        /// Upstream router of the dead link.
        from: NodeId,
        /// Downstream router of the dead link.
        to: NodeId,
    },
    /// Transiently prevent `node` from *injecting* new flits during cycles
    /// `[from, until)` — models a source stalled by a local fault. Traffic
    /// already on the network is unaffected; queued packets wait.
    StallInjection {
        /// Stalled node.
        node: NodeId,
        /// First stalled cycle (inclusive).
        from: u64,
        /// First cycle injection resumes (exclusive end).
        until: u64,
    },
}

impl FaultEvent {
    /// The cycle at which this event takes effect.
    pub fn activation_cycle(&self) -> u64 {
        match *self {
            FaultEvent::KillLoop { at, .. }
            | FaultEvent::KillLink { at, .. }
            | FaultEvent::KillMeshLink { at, .. } => at,
            FaultEvent::StallInjection { from, .. } => from,
        }
    }
}

/// A deterministic schedule of faults, sorted by activation cycle.
///
/// Build one with the fluent `kill_*`/`stall_*` methods (or from a
/// [`FaultSet`] via [`FaultPlan::kill_loops_at`]) and hand it to
/// `RouterlessSim::with_faults` / `MeshSim::with_faults`. The same plan
/// replayed against the same traffic always produces the same `Metrics`,
/// whatever thread count the sweep engine uses.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan — simulators treat it exactly like no plan at all.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, sorted by activation cycle (stable order for
    /// equal cycles: insertion order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Schedules `event`, keeping the list sorted by activation cycle.
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        let at = event.activation_cycle();
        let idx = self.events.partition_point(|e| e.activation_cycle() <= at);
        self.events.insert(idx, event);
        self
    }

    /// Schedules a whole-loop kill at `at`.
    pub fn kill_loop(&mut self, at: u64, loop_index: usize) -> &mut Self {
        self.push(FaultEvent::KillLoop { at, loop_index })
    }

    /// Schedules a routerless directed-link cut at `at`.
    pub fn kill_link(&mut self, at: u64, loop_index: usize, from: NodeId) -> &mut Self {
        self.push(FaultEvent::KillLink {
            at,
            loop_index,
            from,
        })
    }

    /// Schedules a directed mesh link kill at `at`.
    pub fn kill_mesh_link(&mut self, at: u64, from: NodeId, to: NodeId) -> &mut Self {
        self.push(FaultEvent::KillMeshLink { at, from, to })
    }

    /// Schedules an injection stall for `node` over `[from, until)`.
    pub fn stall_injection(&mut self, node: NodeId, from: u64, until: u64) -> &mut Self {
        self.push(FaultEvent::StallInjection { node, from, until })
    }

    /// Schedules a kill at `at` for every loop (and every individual
    /// link) a [`FaultSet`] marks failed — the bridge from the static
    /// topology-layer fault model to the dynamic schedule.
    pub fn kill_faults_at(&mut self, at: u64, faults: &FaultSet) -> &mut Self {
        for &l in faults.failed_loops() {
            self.kill_loop(at, l);
        }
        for &(l, from) in faults.failed_links() {
            self.kill_link(at, l, from);
        }
        self
    }

    /// Convenience: a plan killing `k` deterministic random loops (out of
    /// `num_loops`) at cycle `at`, seeded like
    /// [`FaultSet::random_loop_failures`].
    pub fn random_loop_kills(at: u64, k: usize, num_loops: usize, seed: u64) -> Self {
        let mut plan = FaultPlan::new();
        plan.kill_faults_at(at, &FaultSet::random_loop_failures(k, num_loops, seed));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_sorted_by_cycle() {
        let mut plan = FaultPlan::new();
        plan.kill_loop(50, 2)
            .kill_link(10, 0, 3)
            .stall_injection(1, 30, 40)
            .kill_mesh_link(10, 4, 5);
        let cycles: Vec<u64> = plan.events().iter().map(|e| e.activation_cycle()).collect();
        assert_eq!(cycles, vec![10, 10, 30, 50]);
        // Equal cycles keep insertion order.
        assert_eq!(
            plan.events()[0],
            FaultEvent::KillLink {
                at: 10,
                loop_index: 0,
                from: 3
            }
        );
        assert_eq!(
            plan.events()[1],
            FaultEvent::KillMeshLink {
                at: 10,
                from: 4,
                to: 5
            }
        );
    }

    #[test]
    fn kill_faults_at_mirrors_fault_set() {
        let mut fs = FaultSet::new();
        fs.fail_loop(3).fail_link(1, 7);
        let mut plan = FaultPlan::new();
        plan.kill_faults_at(5, &fs);
        assert_eq!(plan.events().len(), 2);
        assert!(plan.events().contains(&FaultEvent::KillLoop {
            at: 5,
            loop_index: 3
        }));
        assert!(plan.events().contains(&FaultEvent::KillLink {
            at: 5,
            loop_index: 1,
            from: 7
        }));
    }

    #[test]
    fn random_loop_kills_are_deterministic() {
        let a = FaultPlan::random_loop_kills(0, 2, 14, 9);
        let b = FaultPlan::random_loop_kills(0, 2, 14, 9);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 2);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::random_loop_kills(0, 0, 14, 1).is_empty());
    }
}
