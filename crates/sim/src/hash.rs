//! A minimal multiplicative hasher for the cycle kernels' packet-id maps.
//!
//! Packet ids are sequential `u64`s, so the default SipHash is pure
//! overhead on the hot eject/inject paths — a single Fibonacci multiply
//! mixes the high bits more than well enough for a table keyed by a
//! counter. Only `u64` keys are supported, which is all the kernels use;
//! correctness is unaffected because the maps are only ever probed by
//! key (their iteration order is never observed).

use std::hash::{BuildHasherDefault, Hasher};

/// Hasher state: the mixed key (see [`PacketIdHasher::write_u64`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct PacketIdHasher(u64);

/// `BuildHasher` plugging [`PacketIdHasher`] into a `HashMap`.
pub type PacketIdBuildHasher = BuildHasherDefault<PacketIdHasher>;

impl Hasher for PacketIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unimplemented!("PacketIdHasher only hashes u64 keys");
    }

    fn write_u64(&mut self, i: u64) {
        // Fibonacci hashing: one wrapping multiply by 2^64/phi spreads
        // sequential ids across the high bits the table indexes by.
        self.0 = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn map_roundtrips_sequential_ids() {
        let mut map: HashMap<u64, u32, PacketIdBuildHasher> = HashMap::default();
        for id in 0..10_000u64 {
            map.insert(id, id as u32);
        }
        for id in 0..10_000u64 {
            assert_eq!(map.remove(&id), Some(id as u32));
        }
        assert!(map.is_empty());
    }
}
