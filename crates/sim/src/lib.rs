//! Cycle-accurate flit-level NoC simulation for routerless and mesh
//! fabrics.
//!
//! This crate is the reproduction's substitute for Gem5 + Garnet2.0 (see
//! `DESIGN.md`): a synchronous, tick-per-cycle simulator capturing the
//! first-order behaviours the paper's evaluation depends on —
//!
//! - **routerless** ([`RouterlessSim`]): one dedicated wire ring per loop,
//!   single-cycle per hop, source routing via a per-node lookup table,
//!   injection only into free slots (passing traffic has priority),
//!   per-loop concurrent ejection;
//! - **mesh** ([`MeshSim`]): input-buffered wormhole routers with XY
//!   dimension-order routing, credit-based backpressure, and a configurable
//!   pipeline depth (2-cycle baseline `Mesh-2`, optimized 1-cycle `Mesh-1`,
//!   idealized 0-cycle `Mesh-0`);
//! - **synthetic traffic** ([`traffic`]): uniform random, tornado, bit
//!   complement, bit rotation, shuffle, and transpose, injected at a
//!   configurable flit rate with the paper's control/data packet mix;
//! - **measurement** ([`stats`], [`sweep`]): warm-up + measurement windows,
//!   average packet latency, hop counts, accepted throughput, and
//!   saturation sweeps (paper Figures 10 and 16).
//!
//! # Example
//!
//! ```
//! use rlnoc_sim::{RouterlessSim, SimConfig, traffic::Pattern, run_synthetic};
//! use rlnoc_baselines::rec_topology;
//! use rlnoc_topology::Grid;
//!
//! let topo = rec_topology(Grid::square(4).unwrap()).unwrap();
//! let mut sim = RouterlessSim::new(&topo);
//! let cfg = SimConfig { warmup: 200, measure: 500, ..SimConfig::default() };
//! let m = run_synthetic(&mut sim, Pattern::UniformRandom, 0.02, &cfg, 1);
//! assert!(m.avg_packet_latency() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod error;
mod fault;
mod hash;
mod mesh;
mod packet;
mod routerless;
mod runner;

pub mod reference;
pub mod stats;
pub mod sweep;
pub mod traffic;

pub use config::SimConfig;
pub use error::SimError;
pub use fault::{FaultEvent, FaultPlan};
pub use mesh::MeshSim;
pub use packet::{Flit, Packet, PacketKind};
pub use routerless::RouterlessSim;
pub use runner::{
    run_synthetic, run_synthetic_checked, run_synthetic_traced, run_with_source,
    run_with_source_traced, Delivery, Network, PacketSource,
};
pub use stats::Metrics;
