//! The router-based mesh fabric: input-buffered wormhole routers with XY
//! dimension-order routing and credit-based backpressure.

use crate::hash::PacketIdBuildHasher;
use crate::packet::{Flit, Packet};
use crate::runner::{Delivery, Network};
use rlnoc_topology::{Grid, NodeId};
use std::collections::{HashMap, VecDeque};

/// Router ports, in fixed arbitration order.
const NORTH: usize = 0;
const EAST: usize = 1;
const SOUTH: usize = 2;
const WEST: usize = 3;
const LOCAL: usize = 4;
const PORTS: usize = 5;

/// A buffered flit with the cycle it entered this router (for pipeline
/// modelling).
type Buffered = (Flit, u64);

#[derive(Debug, Clone)]
struct Router {
    /// Input FIFO per port.
    inputs: [VecDeque<Buffered>; PORTS],
    /// Wormhole reservation per output port: `(input port, flits left)`.
    out_lock: [Option<(usize, usize)>; PORTS],
    /// Round-robin pointer per output port.
    rr: [usize; PORTS],
}

impl Router {
    fn new() -> Self {
        Router {
            inputs: Default::default(),
            out_lock: [None; PORTS],
            rr: [0; PORTS],
        }
    }
}

/// Cycle-accurate mesh simulator.
///
/// Each hop costs one link cycle plus `router_delay` cycles in the input
/// buffer (the paper's Mesh-2 baseline uses 2, the optimized Mesh-1 uses
/// 1, and the idealized Mesh-0 uses 0). Wormhole switching holds an output
/// port from head to tail; credits bound each input FIFO at
/// `buffer_capacity` flits.
#[derive(Debug, Clone)]
pub struct MeshSim {
    grid: Grid,
    router_delay: u64,
    buffer_capacity: usize,
    routers: Vec<Router>,
    queues: Vec<VecDeque<Packet>>,
    /// Next flit index to inject for the head packet of each node queue.
    inject_progress: Vec<usize>,
    assembly: HashMap<u64, usize, PacketIdBuildHasher>,
    deliveries: Vec<Delivery>,
    in_flight_packets: usize,
    /// Persistent per-tick scratch (cleared, never reallocated): flits
    /// crossing a link this cycle.
    staged: Vec<(NodeId, usize, Flit)>,
    /// Persistent per-tick scratch: flits reaching their local port.
    local_deliveries: Vec<Flit>,
    /// Persistent per-tick scratch: input-buffer occupancy including this
    /// cycle's staged arrivals, for credit checks.
    occupancy: Vec<[usize; PORTS]>,
}

impl MeshSim {
    /// Creates a mesh with the given router pipeline depth (cycles per hop
    /// beyond the link) and per-input buffer capacity in flits.
    pub fn new(grid: Grid, router_delay: u64, buffer_capacity: usize) -> Self {
        MeshSim {
            grid,
            router_delay,
            buffer_capacity: buffer_capacity.max(1),
            routers: (0..grid.len()).map(|_| Router::new()).collect(),
            queues: vec![VecDeque::new(); grid.len()],
            inject_progress: vec![0; grid.len()],
            assembly: HashMap::default(),
            deliveries: Vec::new(),
            in_flight_packets: 0,
            staged: Vec::new(),
            local_deliveries: Vec::new(),
            occupancy: vec![[0; PORTS]; grid.len()],
        }
    }

    /// The paper's baseline two-cycle router.
    pub fn mesh2(grid: Grid) -> Self {
        MeshSim::new(grid, 2, 8)
    }

    /// The optimized one-cycle router.
    pub fn mesh1(grid: Grid) -> Self {
        MeshSim::new(grid, 1, 8)
    }

    /// The idealized zero-cycle router (link/contention delays only).
    pub fn mesh0(grid: Grid) -> Self {
        MeshSim::new(grid, 0, 8)
    }

    /// XY dimension-order output port at router `at` for destination `dst`.
    fn route_port(&self, at: NodeId, dst: NodeId) -> usize {
        let (x, y) = self.grid.coord_of(at);
        let (dx, dy) = self.grid.coord_of(dst);
        if x < dx {
            EAST
        } else if x > dx {
            WEST
        } else if y < dy {
            SOUTH
        } else if y > dy {
            NORTH
        } else {
            LOCAL
        }
    }

    /// The neighbouring router reached through `port`.
    fn neighbour(&self, at: NodeId, port: usize) -> NodeId {
        let (x, y) = self.grid.coord_of(at);
        match port {
            NORTH => self.grid.node_at(x, y - 1),
            EAST => self.grid.node_at(x + 1, y),
            SOUTH => self.grid.node_at(x, y + 1),
            WEST => self.grid.node_at(x - 1, y),
            _ => at,
        }
    }

    /// The port on the neighbour that a flit sent through `port` arrives on.
    fn arrival_port(port: usize) -> usize {
        match port {
            NORTH => SOUTH,
            SOUTH => NORTH,
            EAST => WEST,
            WEST => EAST,
            other => other,
        }
    }

    fn deliver(&mut self, flit: Flit, cycle: u64) {
        let count = self.assembly.entry(flit.packet.id).or_insert(0);
        *count += 1;
        if *count == flit.packet.flits {
            self.assembly.remove(&flit.packet.id);
            self.deliveries.push(Delivery {
                packet: flit.packet,
                delivered: cycle,
                hops: self.grid.manhattan(flit.packet.src, flit.packet.dst) as u64,
            });
            self.in_flight_packets -= 1;
        }
    }
}

impl Network for MeshSim {
    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn offer(&mut self, packet: Packet) {
        self.queues[packet.src].push_back(packet);
        self.in_flight_packets += 1;
    }

    fn tick(&mut self, cycle: u64) {
        // Staged transfers commit after all routers arbitrate, so a flit
        // moves at most one hop per cycle. The staging buffers are
        // persistent scratch moved out of `self` for the duration of the
        // tick (`mem::take` swaps in an unallocated empty vec) so the
        // steady-state cycle cost involves no heap allocation.
        let mut staged = std::mem::take(&mut self.staged);
        let mut local_deliveries = std::mem::take(&mut self.local_deliveries);
        // Occupancy including this cycle's staged arrivals, for credits.
        let mut occupancy = std::mem::take(&mut self.occupancy);
        for (r, router) in self.routers.iter().enumerate() {
            for (p, q) in router.inputs.iter().enumerate() {
                occupancy[r][p] = q.len();
            }
        }

        for r in 0..self.routers.len() {
            let mut served_inputs = [false; PORTS];
            for out in 0..PORTS {
                // Which input may use this output?
                let chosen: Option<usize> = match self.routers[r].out_lock[out] {
                    Some((inp, _)) => Some(inp),
                    None => {
                        let start = self.routers[r].rr[out];
                        (0..PORTS).map(|k| (start + k) % PORTS).find(|&inp| {
                            if served_inputs[inp] {
                                return false;
                            }
                            match self.routers[r].inputs[inp].front() {
                                Some(&(flit, entered)) => {
                                    flit.is_head()
                                        && cycle >= entered + self.router_delay
                                        && self.route_port(r, flit.packet.dst) == out
                                }
                                None => false,
                            }
                        })
                    }
                };
                let Some(inp) = chosen else { continue };
                if served_inputs[inp] {
                    continue;
                }
                // Pipeline delay also applies to locked (body) flits.
                let Some(&(flit, entered)) = self.routers[r].inputs[inp].front() else {
                    continue;
                };
                if cycle < entered + self.router_delay {
                    continue;
                }
                // Credit check for non-local outputs.
                if out != LOCAL {
                    let nb = self.neighbour(r, out);
                    let ap = Self::arrival_port(out);
                    if occupancy[nb][ap] >= self.buffer_capacity {
                        continue;
                    }
                    occupancy[nb][ap] += 1;
                }
                // Forward the flit.
                self.routers[r].inputs[inp].pop_front();
                served_inputs[inp] = true;
                if out == LOCAL {
                    local_deliveries.push(flit);
                } else {
                    staged.push((self.neighbour(r, out), Self::arrival_port(out), flit));
                }
                // Maintain the wormhole lock.
                match &mut self.routers[r].out_lock[out] {
                    Some((_, left)) => {
                        *left -= 1;
                        if *left == 0 {
                            self.routers[r].out_lock[out] = None;
                        }
                    }
                    None => {
                        self.routers[r].rr[out] = (inp + 1) % PORTS;
                        if flit.packet.flits > 1 {
                            self.routers[r].out_lock[out] = Some((inp, flit.packet.flits - 1));
                        }
                    }
                }
            }
        }

        for &flit in &local_deliveries {
            self.deliver(flit, cycle);
        }
        for &(router, port, flit) in &staged {
            self.routers[router].inputs[port].push_back((flit, cycle + 1));
        }
        staged.clear();
        local_deliveries.clear();
        self.staged = staged;
        self.local_deliveries = local_deliveries;
        self.occupancy = occupancy;

        // Injection: one flit per node per cycle into the local input, if
        // there is buffer space.
        for node in 0..self.grid.len() {
            let Some(&packet) = self.queues[node].front() else {
                continue;
            };
            if self.routers[node].inputs[LOCAL].len() >= self.buffer_capacity {
                continue;
            }
            let idx = self.inject_progress[node];
            self.routers[node].inputs[LOCAL].push_back((Flit { packet, index: idx }, cycle + 1));
            if idx + 1 == packet.flits {
                self.queues[node].pop_front();
                self.inject_progress[node] = 0;
            } else {
                self.inject_progress[node] = idx + 1;
            }
        }
    }

    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    fn in_flight(&self) -> usize {
        self.in_flight_packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::packet::PacketKind;
    use crate::runner::run_synthetic;
    use crate::traffic::Pattern;

    fn packet(id: u64, src: NodeId, dst: NodeId, flits: usize) -> Packet {
        Packet {
            id,
            src,
            dst,
            kind: PacketKind::Data,
            flits,
            created: 0,
            measured: true,
        }
    }

    fn run_until_delivered(sim: &mut MeshSim, max: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for cycle in 0..max {
            sim.tick(cycle);
            out.extend(sim.take_deliveries());
            if sim.in_flight() == 0 {
                break;
            }
        }
        out
    }

    #[test]
    fn zero_load_latency_scales_with_router_delay() {
        // 4x4 mesh, corner to corner: 6 hops. Expected zero-load latency
        // fits (hops+1) router traversals plus links plus serialization.
        let g = Grid::square(4).unwrap();
        let mut lat = Vec::new();
        for delay in [0u64, 1, 2] {
            let mut sim = MeshSim::new(g, delay, 8);
            sim.offer(packet(0, 0, 15, 1));
            let d = run_until_delivered(&mut sim, 200);
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].hops, 6);
            lat.push(d[0].delivered);
        }
        assert!(lat[0] < lat[1] && lat[1] < lat[2], "latencies {lat:?}");
        // Mesh-0 pays ~1 cycle/hop.
        assert!(lat[0] >= 6 && lat[0] <= 10, "mesh-0 latency {}", lat[0]);
        // Mesh-2 pays ~3 cycles/hop.
        assert!(lat[2] >= 18 && lat[2] <= 26, "mesh-2 latency {}", lat[2]);
    }

    #[test]
    fn xy_routing_no_deadlock_at_moderate_load() {
        let g = Grid::square(4).unwrap();
        let mut sim = MeshSim::mesh2(g);
        let cfg = SimConfig {
            warmup: 100,
            measure: 1_500,
            drain: 3_000,
            ..SimConfig::mesh()
        };
        let m = run_synthetic(&mut sim, Pattern::UniformRandom, 0.05, &cfg, 2);
        assert!(m.packets > 0);
        assert!(
            m.delivery_ratio() > 0.98,
            "moderate load must deliver: {}",
            m.delivery_ratio()
        );
        assert_eq!(sim.in_flight(), 0, "network must drain (deadlock-free)");
    }

    #[test]
    fn wormhole_keeps_packets_contiguous() {
        // Two multi-flit packets crossing the same router must not deliver
        // interleaved garbage: both arrive complete.
        let g = Grid::square(3).unwrap();
        let mut sim = MeshSim::mesh1(g);
        sim.offer(packet(1, g.node_at(0, 1), g.node_at(2, 1), 4));
        sim.offer(packet(2, g.node_at(1, 0), g.node_at(1, 2), 4));
        let d = run_until_delivered(&mut sim, 300);
        assert_eq!(d.len(), 2, "both packets complete");
    }

    #[test]
    fn hop_count_is_manhattan() {
        let g = Grid::square(5).unwrap();
        let mut sim = MeshSim::mesh1(g);
        sim.offer(packet(0, g.node_at(1, 1), g.node_at(4, 3), 2));
        let d = run_until_delivered(&mut sim, 200);
        assert_eq!(d[0].hops, 5);
    }

    #[test]
    fn backpressure_limits_throughput() {
        // At absurd offered load the mesh saturates: accepted throughput
        // flattens well below offered. 8x8 so the bisection actually binds.
        let g = Grid::square(8).unwrap();
        let cfg = SimConfig {
            warmup: 200,
            measure: 2_000,
            drain: 500,
            ..SimConfig::mesh()
        };
        let m = run_synthetic(&mut MeshSim::mesh2(g), Pattern::UniformRandom, 0.9, &cfg, 4);
        assert!(
            m.accepted_throughput() < 0.5,
            "accepted {} must sit below offered 0.9",
            m.accepted_throughput()
        );
    }

    #[test]
    fn local_delivery_same_router_is_fast() {
        // src == dst is not generated by traffic patterns, but a 1-hop
        // neighbour must arrive in a handful of cycles.
        let g = Grid::square(4).unwrap();
        let mut sim = MeshSim::mesh2(g);
        sim.offer(packet(0, 0, 1, 1));
        let d = run_until_delivered(&mut sim, 50);
        assert_eq!(d[0].hops, 1);
        assert!(d[0].delivered <= 8, "one hop took {}", d[0].delivered);
    }
}
