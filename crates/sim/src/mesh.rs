//! The router-based mesh fabric: input-buffered wormhole routers with XY
//! dimension-order routing and credit-based backpressure.

use crate::fault::{FaultEvent, FaultPlan};
use crate::hash::PacketIdBuildHasher;
use crate::packet::{Flit, Packet};
use crate::runner::{Delivery, Network};
use rlnoc_topology::{Grid, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Router ports, in fixed arbitration order.
const NORTH: usize = 0;
const EAST: usize = 1;
const SOUTH: usize = 2;
const WEST: usize = 3;
const LOCAL: usize = 4;
const PORTS: usize = 5;

/// A buffered flit with the cycle it entered this router (for pipeline
/// modelling).
type Buffered = (Flit, u64);

#[derive(Debug, Clone)]
struct Router {
    /// Input FIFO per port.
    inputs: [VecDeque<Buffered>; PORTS],
    /// Wormhole reservation per output port:
    /// `(input port, flits left, packet id)`. The id lets fault handling
    /// release locks held by packets lost to a dead link.
    out_lock: [Option<(usize, usize, u64)>; PORTS],
    /// Round-robin pointer per output port.
    rr: [usize; PORTS],
}

/// Live fault-injection state for the mesh (present only on sims built
/// with [`MeshSim::with_faults`]). All hooks are behavioural no-ops until
/// the first event fires, preserving the zero-fault bit-identity contract.
#[derive(Debug, Clone)]
struct MeshFaultState {
    plan: FaultPlan,
    /// Index of the next unapplied event in `plan`.
    next_event: usize,
    /// `dead_out[node][port]`: the directed link leaving `node` through
    /// `port` is dead.
    dead_out: Vec<[bool; PORTS]>,
    /// Whether any link has died yet (fast path gate).
    any_dead: bool,
    /// Injection-stall windows `(node, from, until)`.
    stalls: Vec<(NodeId, u64, u64)>,
    /// Packets that lost flits (or their only route) to a fault; their
    /// surviving flits are purged instead of delivered.
    condemned: HashSet<u64, PacketIdBuildHasher>,
    /// Packets condemned by faults (each counted once).
    dropped_packets: u64,
    /// Individual flits destroyed or discarded because of faults.
    dropped_flits: u64,
}

impl MeshFaultState {
    fn is_stalled(&self, node: NodeId, cycle: u64) -> bool {
        self.stalls
            .iter()
            .any(|&(n, from, until)| n == node && from <= cycle && cycle < until)
    }

    /// Condemns `id` exactly once, unwinding assembly and in-flight
    /// accounting. Returns whether it was newly condemned.
    fn condemn(
        &mut self,
        assembly: &mut HashMap<u64, usize, PacketIdBuildHasher>,
        in_flight_packets: &mut usize,
        id: u64,
    ) -> bool {
        if self.condemned.insert(id) {
            assembly.remove(&id);
            *in_flight_packets -= 1;
            self.dropped_packets += 1;
            true
        } else {
            false
        }
    }
}

impl Router {
    fn new() -> Self {
        Router {
            inputs: Default::default(),
            out_lock: [None; PORTS],
            rr: [0; PORTS],
        }
    }
}

/// Cycle-accurate mesh simulator.
///
/// Each hop costs one link cycle plus `router_delay` cycles in the input
/// buffer (the paper's Mesh-2 baseline uses 2, the optimized Mesh-1 uses
/// 1, and the idealized Mesh-0 uses 0). Wormhole switching holds an output
/// port from head to tail; credits bound each input FIFO at
/// `buffer_capacity` flits.
#[derive(Debug, Clone)]
pub struct MeshSim {
    grid: Grid,
    router_delay: u64,
    buffer_capacity: usize,
    routers: Vec<Router>,
    queues: Vec<VecDeque<Packet>>,
    /// Next flit index to inject for the head packet of each node queue.
    inject_progress: Vec<usize>,
    assembly: HashMap<u64, usize, PacketIdBuildHasher>,
    deliveries: Vec<Delivery>,
    in_flight_packets: usize,
    /// Persistent per-tick scratch (cleared, never reallocated): flits
    /// crossing a link this cycle.
    staged: Vec<(NodeId, usize, Flit)>,
    /// Persistent per-tick scratch: flits reaching their local port.
    local_deliveries: Vec<Flit>,
    /// Persistent per-tick scratch: input-buffer occupancy including this
    /// cycle's staged arrivals, for credit checks.
    occupancy: Vec<[usize; PORTS]>,
    /// Fault-injection state; `None` for sims without a fault plan.
    faults: Option<Box<MeshFaultState>>,
}

impl MeshSim {
    /// Creates a mesh with the given router pipeline depth (cycles per hop
    /// beyond the link) and per-input buffer capacity in flits.
    pub fn new(grid: Grid, router_delay: u64, buffer_capacity: usize) -> Self {
        MeshSim {
            grid,
            router_delay,
            buffer_capacity: buffer_capacity.max(1),
            routers: (0..grid.len()).map(|_| Router::new()).collect(),
            queues: vec![VecDeque::new(); grid.len()],
            inject_progress: vec![0; grid.len()],
            assembly: HashMap::default(),
            deliveries: Vec::new(),
            in_flight_packets: 0,
            staged: Vec::new(),
            local_deliveries: Vec::new(),
            occupancy: vec![[0; PORTS]; grid.len()],
            faults: None,
        }
    }

    /// Builds a mesh that replays `plan` as it runs: dead links switch the
    /// fabric to fault-masked XY routing (prefer the X-productive port if
    /// its link is alive, else the Y-productive one), packets left with no
    /// live productive port are dropped and accounted in
    /// [`MeshSim::dropped_by_fault`], and stall windows pause a node's
    /// injection. An empty plan behaves bit-identically to
    /// [`MeshSim::new`].
    ///
    /// Fault-masked routing keeps every move productive (no livelock) but
    /// abandons strict dimension order, so adversarial faulted workloads
    /// can in principle form wormhole cycles; bounded-drain runs report
    /// such stuck packets via [`Network::in_flight`] rather than hanging.
    pub fn with_faults(
        grid: Grid,
        router_delay: u64,
        buffer_capacity: usize,
        plan: FaultPlan,
    ) -> Self {
        let mut sim = MeshSim::new(grid, router_delay, buffer_capacity);
        let stalls = plan
            .events()
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::StallInjection { node, from, until } => Some((node, from, until)),
                _ => None,
            })
            .collect();
        sim.faults = Some(Box::new(MeshFaultState {
            plan,
            next_event: 0,
            dead_out: vec![[false; PORTS]; grid.len()],
            any_dead: false,
            stalls,
            condemned: HashSet::default(),
            dropped_packets: 0,
            dropped_flits: 0,
        }));
        sim
    }

    /// Packets condemned by injected faults (each counted once).
    pub fn dropped_by_fault(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.dropped_packets)
    }

    /// Individual flits destroyed or discarded because of injected faults.
    pub fn dropped_fault_flits(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.dropped_flits)
    }

    /// The paper's baseline two-cycle router.
    pub fn mesh2(grid: Grid) -> Self {
        MeshSim::new(grid, 2, 8)
    }

    /// The optimized one-cycle router.
    pub fn mesh1(grid: Grid) -> Self {
        MeshSim::new(grid, 1, 8)
    }

    /// The idealized zero-cycle router (link/contention delays only).
    pub fn mesh0(grid: Grid) -> Self {
        MeshSim::new(grid, 0, 8)
    }

    /// XY dimension-order output port at router `at` for destination `dst`.
    fn route_port(&self, at: NodeId, dst: NodeId) -> usize {
        let (x, y) = self.grid.coord_of(at);
        let (dx, dy) = self.grid.coord_of(dst);
        if x < dx {
            EAST
        } else if x > dx {
            WEST
        } else if y < dy {
            SOUTH
        } else if y > dy {
            NORTH
        } else {
            LOCAL
        }
    }

    /// Fault-masked XY output port: the X-productive port if its link is
    /// alive, else the Y-productive one, else `None` (no live productive
    /// move). With no dead links this is exactly [`MeshSim::route_port`].
    fn masked_port(
        grid: Grid,
        dead_out: &[[bool; PORTS]],
        at: NodeId,
        dst: NodeId,
    ) -> Option<usize> {
        if at == dst {
            return Some(LOCAL);
        }
        let (x, y) = grid.coord_of(at);
        let (dx, dy) = grid.coord_of(dst);
        let xport = if x < dx {
            Some(EAST)
        } else if x > dx {
            Some(WEST)
        } else {
            None
        };
        let yport = if y < dy {
            Some(SOUTH)
        } else if y > dy {
            Some(NORTH)
        } else {
            None
        };
        if let Some(p) = xport {
            if !dead_out[at][p] {
                return Some(p);
            }
        }
        if let Some(p) = yport {
            if !dead_out[at][p] {
                return Some(p);
            }
        }
        None
    }

    /// Routing decision honouring any dead links; `Some(port)` on healthy
    /// fabrics for every pair (XY always routes a full mesh).
    fn route_out(&self, at: NodeId, dst: NodeId) -> Option<usize> {
        match self.faults.as_deref() {
            Some(fs) if fs.any_dead => Self::masked_port(self.grid, &fs.dead_out, at, dst),
            _ => Some(self.route_port(at, dst)),
        }
    }

    /// Applies every scheduled fault whose activation cycle has arrived.
    /// No-op (one branch) without a plan or between events.
    fn apply_due_faults(&mut self, cycle: u64) {
        let due = match &self.faults {
            Some(f) => {
                f.next_event < f.plan.events().len()
                    && f.plan.events()[f.next_event].activation_cycle() <= cycle
            }
            None => return,
        };
        if !due {
            return;
        }
        let mut fs = self.faults.take().expect("checked above");
        while fs.next_event < fs.plan.events().len()
            && fs.plan.events()[fs.next_event].activation_cycle() <= cycle
        {
            let event = fs.plan.events()[fs.next_event];
            fs.next_event += 1;
            let FaultEvent::KillMeshLink { from, to, .. } = event else {
                // Routerless-only and pre-extracted events: nothing to do.
                continue;
            };
            let (x, y) = self.grid.coord_of(from);
            let (tx, ty) = self.grid.coord_of(to);
            let port = match (tx as i64 - x as i64, ty as i64 - y as i64) {
                (1, 0) => EAST,
                (-1, 0) => WEST,
                (0, 1) => SOUTH,
                (0, -1) => NORTH,
                _ => continue, // not an adjacent pair: ignore
            };
            if fs.dead_out[from][port] {
                continue;
            }
            fs.dead_out[from][port] = true;
            fs.any_dead = true;
            // A wormhole mid-transfer across the dying link is severed:
            // the packet can never complete.
            if let Some((_, _, pid)) = self.routers[from].out_lock[port] {
                fs.condemn(&mut self.assembly, &mut self.in_flight_packets, pid);
                self.routers[from].out_lock[port] = None;
            }
        }
        self.faults = Some(fs);
    }

    /// Removes fault casualties from the fabric: flits of condemned
    /// packets anywhere in the input buffers, head flits left with no live
    /// productive port (condemning their packets), and output locks held
    /// by condemned packets. Runs only while faults are active.
    fn purge_faulted(&mut self) {
        let Some(mut fs) = self.faults.take() else {
            return;
        };
        if fs.any_dead || !fs.condemned.is_empty() {
            // Drop condemned flits wherever they sit.
            if !fs.condemned.is_empty() {
                for router in &mut self.routers {
                    for q in &mut router.inputs {
                        let before = q.len();
                        q.retain(|&(f, _)| !fs.condemned.contains(&f.packet.id));
                        fs.dropped_flits += (before - q.len()) as u64;
                    }
                }
            }
            // Heads stuck with no live productive port block their whole
            // input queue: condemn and drop them.
            if fs.any_dead {
                for r in 0..self.routers.len() {
                    for p in 0..PORTS {
                        while let Some(&(flit, _)) = self.routers[r].inputs[p].front() {
                            if fs.condemned.contains(&flit.packet.id) {
                                self.routers[r].inputs[p].pop_front();
                                fs.dropped_flits += 1;
                                continue;
                            }
                            if flit.is_head()
                                && Self::masked_port(self.grid, &fs.dead_out, r, flit.packet.dst)
                                    .is_none()
                            {
                                self.routers[r].inputs[p].pop_front();
                                fs.dropped_flits += 1;
                                fs.condemn(
                                    &mut self.assembly,
                                    &mut self.in_flight_packets,
                                    flit.packet.id,
                                );
                                continue;
                            }
                            break;
                        }
                    }
                }
            }
            // Condemned packets release their wormhole reservations.
            if !fs.condemned.is_empty() {
                for router in &mut self.routers {
                    for lock in &mut router.out_lock {
                        if lock.is_some_and(|(_, _, pid)| fs.condemned.contains(&pid)) {
                            *lock = None;
                        }
                    }
                }
            }
        }
        self.faults = Some(fs);
    }

    /// The neighbouring router reached through `port`.
    fn neighbour(&self, at: NodeId, port: usize) -> NodeId {
        let (x, y) = self.grid.coord_of(at);
        match port {
            NORTH => self.grid.node_at(x, y - 1),
            EAST => self.grid.node_at(x + 1, y),
            SOUTH => self.grid.node_at(x, y + 1),
            WEST => self.grid.node_at(x - 1, y),
            _ => at,
        }
    }

    /// The port on the neighbour that a flit sent through `port` arrives on.
    fn arrival_port(port: usize) -> usize {
        match port {
            NORTH => SOUTH,
            SOUTH => NORTH,
            EAST => WEST,
            WEST => EAST,
            other => other,
        }
    }

    fn deliver(&mut self, flit: Flit, cycle: u64) {
        if let Some(fs) = self.faults.as_deref_mut() {
            // Stragglers of a packet already lost to a fault are discarded.
            if !fs.condemned.is_empty() && fs.condemned.contains(&flit.packet.id) {
                fs.dropped_flits += 1;
                return;
            }
        }
        let count = self.assembly.entry(flit.packet.id).or_insert(0);
        *count += 1;
        if *count == flit.packet.flits {
            self.assembly.remove(&flit.packet.id);
            self.deliveries.push(Delivery {
                packet: flit.packet,
                delivered: cycle,
                hops: self.grid.manhattan(flit.packet.src, flit.packet.dst) as u64,
            });
            self.in_flight_packets -= 1;
        }
    }
}

impl Network for MeshSim {
    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn offer(&mut self, packet: Packet) {
        self.queues[packet.src].push_back(packet);
        self.in_flight_packets += 1;
    }

    fn tick(&mut self, cycle: u64) {
        // Phase 0: activate scheduled faults and clear their casualties
        // (both no-ops without a plan).
        self.apply_due_faults(cycle);
        self.purge_faulted();

        // Staged transfers commit after all routers arbitrate, so a flit
        // moves at most one hop per cycle. The staging buffers are
        // persistent scratch moved out of `self` for the duration of the
        // tick (`mem::take` swaps in an unallocated empty vec) so the
        // steady-state cycle cost involves no heap allocation.
        let mut staged = std::mem::take(&mut self.staged);
        let mut local_deliveries = std::mem::take(&mut self.local_deliveries);
        // Occupancy including this cycle's staged arrivals, for credits.
        let mut occupancy = std::mem::take(&mut self.occupancy);
        for (r, router) in self.routers.iter().enumerate() {
            for (p, q) in router.inputs.iter().enumerate() {
                occupancy[r][p] = q.len();
            }
        }

        for r in 0..self.routers.len() {
            let mut served_inputs = [false; PORTS];
            for out in 0..PORTS {
                // Which input may use this output?
                let chosen: Option<usize> = match self.routers[r].out_lock[out] {
                    Some((inp, _, _)) => Some(inp),
                    None => {
                        let start = self.routers[r].rr[out];
                        (0..PORTS).map(|k| (start + k) % PORTS).find(|&inp| {
                            if served_inputs[inp] {
                                return false;
                            }
                            match self.routers[r].inputs[inp].front() {
                                Some(&(flit, entered)) => {
                                    flit.is_head()
                                        && cycle >= entered + self.router_delay
                                        && self.route_out(r, flit.packet.dst) == Some(out)
                                }
                                None => false,
                            }
                        })
                    }
                };
                let Some(inp) = chosen else { continue };
                if served_inputs[inp] {
                    continue;
                }
                // Pipeline delay also applies to locked (body) flits.
                let Some(&(flit, entered)) = self.routers[r].inputs[inp].front() else {
                    continue;
                };
                if cycle < entered + self.router_delay {
                    continue;
                }
                // Credit check for non-local outputs.
                if out != LOCAL {
                    let nb = self.neighbour(r, out);
                    let ap = Self::arrival_port(out);
                    if occupancy[nb][ap] >= self.buffer_capacity {
                        continue;
                    }
                    occupancy[nb][ap] += 1;
                }
                // Forward the flit.
                self.routers[r].inputs[inp].pop_front();
                served_inputs[inp] = true;
                if out == LOCAL {
                    local_deliveries.push(flit);
                } else {
                    staged.push((self.neighbour(r, out), Self::arrival_port(out), flit));
                }
                // Maintain the wormhole lock.
                match &mut self.routers[r].out_lock[out] {
                    Some((_, left, _)) => {
                        *left -= 1;
                        if *left == 0 {
                            self.routers[r].out_lock[out] = None;
                        }
                    }
                    None => {
                        self.routers[r].rr[out] = (inp + 1) % PORTS;
                        if flit.packet.flits > 1 {
                            self.routers[r].out_lock[out] =
                                Some((inp, flit.packet.flits - 1, flit.packet.id));
                        }
                    }
                }
            }
        }

        for &flit in &local_deliveries {
            self.deliver(flit, cycle);
        }
        for &(router, port, flit) in &staged {
            self.routers[router].inputs[port].push_back((flit, cycle + 1));
        }
        staged.clear();
        local_deliveries.clear();
        self.staged = staged;
        self.local_deliveries = local_deliveries;
        self.occupancy = occupancy;

        // Injection: one flit per node per cycle into the local input, if
        // there is buffer space.
        for node in 0..self.grid.len() {
            if let Some(fs) = self.faults.as_deref_mut() {
                if !fs.stalls.is_empty() && fs.is_stalled(node, cycle) {
                    continue;
                }
                // Queued packets whose route died (or that were condemned
                // mid-injection) never enter the fabric.
                while let Some(&p) = self.queues[node].front() {
                    if fs.condemned.contains(&p.id) {
                        self.queues[node].pop_front();
                        self.inject_progress[node] = 0;
                    } else if self.inject_progress[node] == 0
                        && fs.any_dead
                        && Self::masked_port(self.grid, &fs.dead_out, p.src, p.dst).is_none()
                    {
                        self.queues[node].pop_front();
                        fs.condemn(&mut self.assembly, &mut self.in_flight_packets, p.id);
                    } else {
                        break;
                    }
                }
            }
            let Some(&packet) = self.queues[node].front() else {
                continue;
            };
            if self.routers[node].inputs[LOCAL].len() >= self.buffer_capacity {
                continue;
            }
            let idx = self.inject_progress[node];
            self.routers[node].inputs[LOCAL].push_back((Flit { packet, index: idx }, cycle + 1));
            if idx + 1 == packet.flits {
                self.queues[node].pop_front();
                self.inject_progress[node] = 0;
            } else {
                self.inject_progress[node] = idx + 1;
            }
        }
    }

    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    fn in_flight(&self) -> usize {
        self.in_flight_packets
    }

    fn telemetry_sample(&self, rec: &mut rlnoc_telemetry::Recorder) {
        rec.incr("sim.dropped_by_fault_packets", self.dropped_by_fault());
        rec.incr("sim.dropped_by_fault_flits", self.dropped_fault_flits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::packet::PacketKind;
    use crate::runner::run_synthetic;
    use crate::traffic::Pattern;

    fn packet(id: u64, src: NodeId, dst: NodeId, flits: usize) -> Packet {
        Packet {
            id,
            src,
            dst,
            kind: PacketKind::Data,
            flits,
            created: 0,
            measured: true,
        }
    }

    fn run_until_delivered(sim: &mut MeshSim, max: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for cycle in 0..max {
            sim.tick(cycle);
            out.extend(sim.take_deliveries());
            if sim.in_flight() == 0 {
                break;
            }
        }
        out
    }

    #[test]
    fn zero_load_latency_scales_with_router_delay() {
        // 4x4 mesh, corner to corner: 6 hops. Expected zero-load latency
        // fits (hops+1) router traversals plus links plus serialization.
        let g = Grid::square(4).unwrap();
        let mut lat = Vec::new();
        for delay in [0u64, 1, 2] {
            let mut sim = MeshSim::new(g, delay, 8);
            sim.offer(packet(0, 0, 15, 1));
            let d = run_until_delivered(&mut sim, 200);
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].hops, 6);
            lat.push(d[0].delivered);
        }
        assert!(lat[0] < lat[1] && lat[1] < lat[2], "latencies {lat:?}");
        // Mesh-0 pays ~1 cycle/hop.
        assert!(lat[0] >= 6 && lat[0] <= 10, "mesh-0 latency {}", lat[0]);
        // Mesh-2 pays ~3 cycles/hop.
        assert!(lat[2] >= 18 && lat[2] <= 26, "mesh-2 latency {}", lat[2]);
    }

    #[test]
    fn xy_routing_no_deadlock_at_moderate_load() {
        let g = Grid::square(4).unwrap();
        let mut sim = MeshSim::mesh2(g);
        let cfg = SimConfig {
            warmup: 100,
            measure: 1_500,
            drain: 3_000,
            ..SimConfig::mesh()
        };
        let m = run_synthetic(&mut sim, Pattern::UniformRandom, 0.05, &cfg, 2);
        assert!(m.packets > 0);
        assert!(
            m.delivery_ratio() > 0.98,
            "moderate load must deliver: {}",
            m.delivery_ratio()
        );
        assert_eq!(sim.in_flight(), 0, "network must drain (deadlock-free)");
    }

    #[test]
    fn wormhole_keeps_packets_contiguous() {
        // Two multi-flit packets crossing the same router must not deliver
        // interleaved garbage: both arrive complete.
        let g = Grid::square(3).unwrap();
        let mut sim = MeshSim::mesh1(g);
        sim.offer(packet(1, g.node_at(0, 1), g.node_at(2, 1), 4));
        sim.offer(packet(2, g.node_at(1, 0), g.node_at(1, 2), 4));
        let d = run_until_delivered(&mut sim, 300);
        assert_eq!(d.len(), 2, "both packets complete");
    }

    #[test]
    fn hop_count_is_manhattan() {
        let g = Grid::square(5).unwrap();
        let mut sim = MeshSim::mesh1(g);
        sim.offer(packet(0, g.node_at(1, 1), g.node_at(4, 3), 2));
        let d = run_until_delivered(&mut sim, 200);
        assert_eq!(d[0].hops, 5);
    }

    #[test]
    fn backpressure_limits_throughput() {
        // At absurd offered load the mesh saturates: accepted throughput
        // flattens well below offered. 8x8 so the bisection actually binds.
        let g = Grid::square(8).unwrap();
        let cfg = SimConfig {
            warmup: 200,
            measure: 2_000,
            drain: 500,
            ..SimConfig::mesh()
        };
        let m = run_synthetic(&mut MeshSim::mesh2(g), Pattern::UniformRandom, 0.9, &cfg, 4);
        assert!(
            m.accepted_throughput() < 0.5,
            "accepted {} must sit below offered 0.9",
            m.accepted_throughput()
        );
    }

    #[test]
    fn dead_link_reroutes_via_y_first() {
        // 3x3 mesh, 0 → 2 (pure X route through node 1). Kill link 0→1
        // before injection: masked XY must go south first and still
        // deliver (productive moves only).
        let g = Grid::square(3).unwrap();
        let mut plan = FaultPlan::new();
        plan.kill_mesh_link(0, g.node_at(0, 0), g.node_at(1, 0));
        let mut sim = MeshSim::with_faults(g, 1, 8, plan);
        sim.offer(packet(1, g.node_at(0, 0), g.node_at(2, 0), 2));
        let d = run_until_delivered(&mut sim, 200);
        // Pure-X destination with the X link dead and no Y-productive
        // direction (dy == 0): the packet cannot leave and is dropped.
        assert!(d.is_empty());
        assert_eq!(sim.dropped_by_fault(), 1);
        assert_eq!(sim.in_flight(), 0);

        // A diagonal destination has a live Y fallback and must arrive.
        let mut plan = FaultPlan::new();
        plan.kill_mesh_link(0, g.node_at(0, 0), g.node_at(1, 0));
        let mut sim = MeshSim::with_faults(g, 1, 8, plan);
        sim.offer(packet(2, g.node_at(0, 0), g.node_at(2, 2), 2));
        let d = run_until_delivered(&mut sim, 200);
        assert_eq!(d.len(), 1, "Y-first detour must deliver");
        assert_eq!(sim.dropped_by_fault(), 0);
    }

    #[test]
    fn mid_wormhole_link_kill_severs_packet() {
        // A long packet streams 0→2 on a 3x1-ish path; kill the link it is
        // crossing mid-stream. The packet must be condemned exactly once
        // and the fabric must drain (no stuck lock).
        let g = Grid::square(3).unwrap();
        let from = g.node_at(1, 0);
        let to = g.node_at(2, 0);
        let mut plan = FaultPlan::new();
        plan.kill_mesh_link(6, from, to);
        let mut sim = MeshSim::with_faults(g, 1, 8, plan);
        sim.offer(packet(1, g.node_at(0, 0), g.node_at(2, 0), 8));
        for cycle in 0..100 {
            sim.tick(cycle);
            sim.take_deliveries();
        }
        assert_eq!(sim.dropped_by_fault(), 1);
        assert_eq!(sim.in_flight(), 0, "severed wormhole must not wedge");
        assert!(sim.dropped_fault_flits() > 0);
        // The fabric still works for an unaffected pair.
        sim.offer(Packet {
            created: 100,
            ..packet(2, g.node_at(0, 1), g.node_at(2, 2), 2)
        });
        let mut arrived = false;
        for cycle in 100..200 {
            sim.tick(cycle);
            if !sim.take_deliveries().is_empty() {
                arrived = true;
                break;
            }
        }
        assert!(arrived);
    }

    #[test]
    fn mesh_stall_window_delays_injection() {
        let g = Grid::square(3).unwrap();
        let src = g.node_at(0, 0);
        let mut plan = FaultPlan::new();
        plan.stall_injection(src, 0, 10);
        let mut sim = MeshSim::with_faults(g, 1, 8, plan);
        sim.offer(packet(1, src, g.node_at(1, 0), 1));
        let d = run_until_delivered(&mut sim, 100);
        assert_eq!(d.len(), 1);
        assert!(
            d[0].delivered >= 10,
            "stalled source delivered at {}",
            d[0].delivered
        );
        // The same packet without a stall is much earlier.
        let mut free = MeshSim::new(g, 1, 8);
        free.offer(packet(1, src, g.node_at(1, 0), 1));
        let d_free = run_until_delivered(&mut free, 100);
        assert!(d_free[0].delivered < 10);
    }

    #[test]
    fn mesh_fault_conservation_under_load() {
        // Kill two links mid-run under uniform traffic; every offered
        // packet must be delivered, in flight, or dropped_by_fault.
        let g = Grid::square(4).unwrap();
        let mut plan = FaultPlan::new();
        plan.kill_mesh_link(300, g.node_at(1, 1), g.node_at(2, 1));
        plan.kill_mesh_link(450, g.node_at(2, 2), g.node_at(2, 1));
        let mut sim = MeshSim::with_faults(g, 1, 8, plan);
        let cfg = SimConfig::mesh();
        let mut gen = crate::traffic::TrafficGen::new(g, Pattern::UniformRandom, 0.2, 11);
        let mut offered = 0usize;
        let mut delivered = 0usize;
        for cycle in 0..900 {
            for p in crate::runner::PacketSource::generate(&mut gen, cycle, &cfg, false) {
                offered += 1;
                sim.offer(p);
            }
            sim.tick(cycle);
            delivered += sim.take_deliveries().len();
            assert_eq!(
                offered,
                delivered + sim.in_flight() + sim.dropped_by_fault() as usize,
                "conservation at cycle {cycle}"
            );
        }
        assert!(delivered > 0);
    }

    #[test]
    fn local_delivery_same_router_is_fast() {
        // src == dst is not generated by traffic patterns, but a 1-hop
        // neighbour must arrive in a handful of cycles.
        let g = Grid::square(4).unwrap();
        let mut sim = MeshSim::mesh2(g);
        sim.offer(packet(0, 0, 1, 1));
        let d = run_until_delivered(&mut sim, 50);
        assert_eq!(d[0].hops, 1);
        assert!(d[0].delivered <= 8, "one hop took {}", d[0].delivered);
    }
}
