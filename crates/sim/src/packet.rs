use rlnoc_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Packet class: the paper distinguishes 8-byte control packets (1 flit)
/// from 72-byte data packets (3–5 flits depending on link width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Short request/coherence packet.
    Control,
    /// Cache-line-sized payload packet.
    Data,
}

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id, assigned at generation.
    pub id: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Packet class.
    pub kind: PacketKind,
    /// Length in flits.
    pub flits: usize,
    /// Cycle the packet was created (entered the source queue).
    pub created: u64,
    /// Whether the packet was created inside the measurement window.
    pub measured: bool,
}

/// One flit of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning packet.
    pub packet: Packet,
    /// Index within the packet (`0` = head).
    pub index: usize,
}

impl Flit {
    /// Whether this is the head flit.
    pub fn is_head(&self) -> bool {
        self.index == 0
    }

    /// Whether this is the tail flit.
    pub fn is_tail(&self) -> bool {
        self.index + 1 == self.packet.flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(flits: usize) -> Packet {
        Packet {
            id: 1,
            src: 0,
            dst: 3,
            kind: PacketKind::Data,
            flits,
            created: 0,
            measured: true,
        }
    }

    #[test]
    fn head_tail_flags() {
        let p = packet(3);
        assert!(Flit {
            packet: p,
            index: 0
        }
        .is_head());
        assert!(!Flit {
            packet: p,
            index: 0
        }
        .is_tail());
        assert!(Flit {
            packet: p,
            index: 2
        }
        .is_tail());
        // Single-flit packets are both head and tail.
        let c = packet(1);
        let f = Flit {
            packet: c,
            index: 0,
        };
        assert!(f.is_head() && f.is_tail());
    }
}
