//! Seed-revision reference kernels, kept as correctness oracles and as
//! the "before" baseline for the kernel speedup reported in
//! `BENCH_sim.json`.
//!
//! [`ReferenceRouterlessSim`] and [`ReferenceMeshSim`] are verbatim
//! copies of the original tick loops: per-cycle `vec![None; len]` lane
//! rebuilds, per-cycle staging/occupancy allocations, and allocating
//! delivery hand-off. They model *exactly* the same fabric semantics as
//! the optimized [`crate::RouterlessSim`] / [`crate::MeshSim`], so the
//! parity tests below pin the optimized kernels to the seed behaviour:
//! identical [`crate::Metrics`] (including the latency histogram) under
//! identical traffic. The optimized routerless kernel may eject a
//! cycle's flits in a different within-lane order, but every per-cycle
//! ejection/deflection *decision* is identical — nodes appear at most
//! once per lane, so the decisions are order-independent — and metrics
//! are order-insensitive sums.

use crate::packet::{Flit, Packet};
use crate::runner::{Delivery, Network};
use rlnoc_topology::{Grid, NodeId, RoutingTable, Topology};
use std::collections::{HashMap, VecDeque};

/// One loop's wiring in the seed layout: `slots[i]` holds the flit
/// currently *at* node `nodes[i]`; each cycle every flit is moved one
/// position into a freshly allocated slot vector.
#[derive(Debug, Clone)]
struct Lane {
    nodes: Vec<NodeId>,
    /// Position of each node on this lane (`None` if off-lane), indexed by
    /// node id.
    pos: Vec<Option<usize>>,
    slots: Vec<Option<Flit>>,
}

/// An injection in progress: flits of `packet` still being placed onto
/// `lane`.
#[derive(Debug, Clone, Copy)]
struct ActiveInjection {
    packet: Packet,
    lane: usize,
    next_flit: usize,
    hops: u64,
}

/// The seed revision's routerless simulator (allocating tick loop).
#[derive(Debug, Clone)]
pub struct ReferenceRouterlessSim {
    grid: Grid,
    routing: RoutingTable,
    lanes: Vec<Lane>,
    queues: Vec<VecDeque<Packet>>,
    active: Vec<Option<ActiveInjection>>,
    /// Flits received so far per in-flight packet id, with the hop count.
    assembly: HashMap<u64, (usize, u64)>,
    deliveries: Vec<Delivery>,
    in_flight_packets: usize,
    unroutable: u64,
    ejection_limit: Option<usize>,
    deflections: u64,
}

impl ReferenceRouterlessSim {
    /// Builds the reference simulator over `topo`.
    pub fn new(topo: &Topology) -> Self {
        let grid = *topo.grid();
        let routing = RoutingTable::build(topo);
        let lanes = topo
            .loops()
            .iter()
            .map(|l| {
                let nodes = l.perimeter_nodes(&grid);
                let mut pos = vec![None; grid.len()];
                for (i, &n) in nodes.iter().enumerate() {
                    pos[n] = Some(i);
                }
                let len = nodes.len();
                Lane {
                    nodes,
                    pos,
                    slots: vec![None; len],
                }
            })
            .collect();
        ReferenceRouterlessSim {
            grid,
            routing,
            lanes,
            queues: vec![VecDeque::new(); grid.len()],
            active: vec![None; grid.len()],
            assembly: HashMap::new(),
            deliveries: Vec::new(),
            in_flight_packets: 0,
            unroutable: 0,
            ejection_limit: None,
            deflections: 0,
        }
    }

    /// Caps per-node ejections per cycle (see
    /// [`crate::RouterlessSim::set_ejection_limit`]).
    pub fn set_ejection_limit(&mut self, limit: Option<usize>) {
        self.ejection_limit = limit;
    }

    /// Packets dropped because no loop reaches their destination.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Flits that circled past their destination because of the ejection
    /// limit.
    pub fn deflections(&self) -> u64 {
        self.deflections
    }
}

impl Network for ReferenceRouterlessSim {
    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn offer(&mut self, packet: Packet) {
        self.queues[packet.src].push_back(packet);
        self.in_flight_packets += 1;
    }

    fn tick(&mut self, cycle: u64) {
        // Phase 1: advance every lane one hop, ejecting flits that arrive
        // at their destination (subject to the per-node ejection limit).
        let mut ejected_at = vec![0usize; self.grid.len()];
        for lane in &mut self.lanes {
            let len = lane.slots.len();
            let mut next: Vec<Option<Flit>> = vec![None; len];
            for i in 0..len {
                let Some(flit) = lane.slots[i].take() else {
                    continue;
                };
                let j = (i + 1) % len;
                let node = lane.nodes[j];
                if flit.packet.dst == node {
                    if self
                        .ejection_limit
                        .is_some_and(|limit| ejected_at[node] >= limit)
                    {
                        // Ejection port busy: deflect around the loop.
                        self.deflections += 1;
                        next[j] = Some(flit);
                        continue;
                    }
                    ejected_at[node] += 1;
                    // Eject: deliver into the assembly buffer.
                    let entry = self.assembly.entry(flit.packet.id).or_insert((0, 0));
                    entry.0 += 1;
                    if entry.0 == flit.packet.flits {
                        let (_, hops) = self.assembly.remove(&flit.packet.id).expect("present");
                        self.deliveries.push(Delivery {
                            packet: flit.packet,
                            delivered: cycle,
                            hops,
                        });
                        self.in_flight_packets -= 1;
                    }
                } else {
                    next[j] = Some(flit);
                }
            }
            lane.slots = next;
        }

        // Phase 2: injection — one flit per node, only into an empty slot,
        // so passing traffic always has priority.
        for node in 0..self.grid.len() {
            if self.active[node].is_none() {
                // Start the next queued packet, if routable.
                while let Some(p) = self.queues[node].pop_front() {
                    match self.routing.route(p.src, p.dst) {
                        Some(route) => {
                            self.active[node] = Some(ActiveInjection {
                                packet: p,
                                lane: route.loop_index,
                                next_flit: 0,
                                hops: route.hops as u64,
                            });
                            break;
                        }
                        None => {
                            self.unroutable += 1;
                            self.in_flight_packets -= 1;
                        }
                    }
                }
            }
            let Some(mut act) = self.active[node] else {
                continue;
            };
            let lane = &mut self.lanes[act.lane];
            let pos = lane.pos[node].expect("routing table only picks loops through the source");
            if lane.slots[pos].is_none() {
                lane.slots[pos] = Some(Flit {
                    packet: act.packet,
                    index: act.next_flit,
                });
                // Record hops once per packet in the assembly buffer.
                self.assembly
                    .entry(act.packet.id)
                    .or_insert((0, act.hops))
                    .1 = act.hops;
                act.next_flit += 1;
                self.active[node] = if act.next_flit == act.packet.flits {
                    None
                } else {
                    Some(act)
                };
            }
        }
    }

    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    fn in_flight(&self) -> usize {
        self.in_flight_packets
    }
}

/// Router ports, in fixed arbitration order (seed layout).
const NORTH: usize = 0;
const EAST: usize = 1;
const SOUTH: usize = 2;
const WEST: usize = 3;
const LOCAL: usize = 4;
const PORTS: usize = 5;

/// A buffered flit with the cycle it entered this router.
type Buffered = (Flit, u64);

#[derive(Debug, Clone)]
struct Router {
    /// Input FIFO per port.
    inputs: [VecDeque<Buffered>; PORTS],
    /// Wormhole reservation per output port: `(input port, flits left)`.
    out_lock: [Option<(usize, usize)>; PORTS],
    /// Round-robin pointer per output port.
    rr: [usize; PORTS],
}

impl Router {
    fn new() -> Self {
        Router {
            inputs: Default::default(),
            out_lock: [None; PORTS],
            rr: [0; PORTS],
        }
    }
}

/// The seed revision's mesh simulator (allocating tick loop).
#[derive(Debug, Clone)]
pub struct ReferenceMeshSim {
    grid: Grid,
    router_delay: u64,
    buffer_capacity: usize,
    routers: Vec<Router>,
    queues: Vec<VecDeque<Packet>>,
    /// Next flit index to inject for the head packet of each node queue.
    inject_progress: Vec<usize>,
    assembly: HashMap<u64, usize>,
    deliveries: Vec<Delivery>,
    in_flight_packets: usize,
}

impl ReferenceMeshSim {
    /// Creates a reference mesh with the given router pipeline depth and
    /// per-input buffer capacity in flits.
    pub fn new(grid: Grid, router_delay: u64, buffer_capacity: usize) -> Self {
        ReferenceMeshSim {
            grid,
            router_delay,
            buffer_capacity: buffer_capacity.max(1),
            routers: (0..grid.len()).map(|_| Router::new()).collect(),
            queues: vec![VecDeque::new(); grid.len()],
            inject_progress: vec![0; grid.len()],
            assembly: HashMap::new(),
            deliveries: Vec::new(),
            in_flight_packets: 0,
        }
    }

    /// The paper's baseline two-cycle router.
    pub fn mesh2(grid: Grid) -> Self {
        ReferenceMeshSim::new(grid, 2, 8)
    }

    /// XY dimension-order output port at router `at` for destination `dst`.
    fn route_port(&self, at: NodeId, dst: NodeId) -> usize {
        let (x, y) = self.grid.coord_of(at);
        let (dx, dy) = self.grid.coord_of(dst);
        if x < dx {
            EAST
        } else if x > dx {
            WEST
        } else if y < dy {
            SOUTH
        } else if y > dy {
            NORTH
        } else {
            LOCAL
        }
    }

    /// The neighbouring router reached through `port`.
    fn neighbour(&self, at: NodeId, port: usize) -> NodeId {
        let (x, y) = self.grid.coord_of(at);
        match port {
            NORTH => self.grid.node_at(x, y - 1),
            EAST => self.grid.node_at(x + 1, y),
            SOUTH => self.grid.node_at(x, y + 1),
            WEST => self.grid.node_at(x - 1, y),
            _ => at,
        }
    }

    /// The port on the neighbour that a flit sent through `port` arrives on.
    fn arrival_port(port: usize) -> usize {
        match port {
            NORTH => SOUTH,
            SOUTH => NORTH,
            EAST => WEST,
            WEST => EAST,
            other => other,
        }
    }

    fn deliver(&mut self, flit: Flit, cycle: u64) {
        let count = self.assembly.entry(flit.packet.id).or_insert(0);
        *count += 1;
        if *count == flit.packet.flits {
            self.assembly.remove(&flit.packet.id);
            self.deliveries.push(Delivery {
                packet: flit.packet,
                delivered: cycle,
                hops: self.grid.manhattan(flit.packet.src, flit.packet.dst) as u64,
            });
            self.in_flight_packets -= 1;
        }
    }
}

impl Network for ReferenceMeshSim {
    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn offer(&mut self, packet: Packet) {
        self.queues[packet.src].push_back(packet);
        self.in_flight_packets += 1;
    }

    fn tick(&mut self, cycle: u64) {
        // Staged transfers commit after all routers arbitrate, so a flit
        // moves at most one hop per cycle.
        let mut staged: Vec<(NodeId, usize, Flit)> = Vec::new();
        let mut local_deliveries: Vec<Flit> = Vec::new();
        // Occupancy including this cycle's staged arrivals, for credits.
        let mut occupancy: Vec<[usize; PORTS]> = self
            .routers
            .iter()
            .map(|r| {
                let mut o = [0usize; PORTS];
                for (p, q) in r.inputs.iter().enumerate() {
                    o[p] = q.len();
                }
                o
            })
            .collect();

        for r in 0..self.routers.len() {
            let mut served_inputs = [false; PORTS];
            for out in 0..PORTS {
                // Which input may use this output?
                let chosen: Option<usize> = match self.routers[r].out_lock[out] {
                    Some((inp, _)) => Some(inp),
                    None => {
                        let start = self.routers[r].rr[out];
                        (0..PORTS).map(|k| (start + k) % PORTS).find(|&inp| {
                            if served_inputs[inp] {
                                return false;
                            }
                            match self.routers[r].inputs[inp].front() {
                                Some(&(flit, entered)) => {
                                    flit.is_head()
                                        && cycle >= entered + self.router_delay
                                        && self.route_port(r, flit.packet.dst) == out
                                }
                                None => false,
                            }
                        })
                    }
                };
                let Some(inp) = chosen else { continue };
                if served_inputs[inp] {
                    continue;
                }
                // Pipeline delay also applies to locked (body) flits.
                let Some(&(flit, entered)) = self.routers[r].inputs[inp].front() else {
                    continue;
                };
                if cycle < entered + self.router_delay {
                    continue;
                }
                // Credit check for non-local outputs.
                if out != LOCAL {
                    let nb = self.neighbour(r, out);
                    let ap = Self::arrival_port(out);
                    if occupancy[nb][ap] >= self.buffer_capacity {
                        continue;
                    }
                    occupancy[nb][ap] += 1;
                }
                // Forward the flit.
                self.routers[r].inputs[inp].pop_front();
                served_inputs[inp] = true;
                if out == LOCAL {
                    local_deliveries.push(flit);
                } else {
                    staged.push((self.neighbour(r, out), Self::arrival_port(out), flit));
                }
                // Maintain the wormhole lock.
                match &mut self.routers[r].out_lock[out] {
                    Some((_, left)) => {
                        *left -= 1;
                        if *left == 0 {
                            self.routers[r].out_lock[out] = None;
                        }
                    }
                    None => {
                        self.routers[r].rr[out] = (inp + 1) % PORTS;
                        if flit.packet.flits > 1 {
                            self.routers[r].out_lock[out] = Some((inp, flit.packet.flits - 1));
                        }
                    }
                }
            }
        }

        for flit in local_deliveries {
            self.deliver(flit, cycle);
        }
        for (router, port, flit) in staged {
            self.routers[router].inputs[port].push_back((flit, cycle + 1));
        }

        // Injection: one flit per node per cycle into the local input, if
        // there is buffer space.
        for node in 0..self.grid.len() {
            let Some(&packet) = self.queues[node].front() else {
                continue;
            };
            if self.routers[node].inputs[LOCAL].len() >= self.buffer_capacity {
                continue;
            }
            let idx = self.inject_progress[node];
            self.routers[node].inputs[LOCAL].push_back((Flit { packet, index: idx }, cycle + 1));
            if idx + 1 == packet.flits {
                self.queues[node].pop_front();
                self.inject_progress[node] = 0;
            } else {
                self.inject_progress[node] = idx + 1;
            }
        }
    }

    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    fn in_flight(&self) -> usize {
        self.in_flight_packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::runner::run_synthetic;
    use crate::traffic::Pattern;
    use crate::{MeshSim, RouterlessSim};
    use rlnoc_baselines::rec_topology;

    fn cfg(data_flits: usize) -> SimConfig {
        SimConfig {
            warmup: 300,
            measure: 2_000,
            drain: 1_500,
            data_flits,
            ..SimConfig::default()
        }
    }

    #[test]
    fn routerless_matches_reference_metrics() {
        let topo = rec_topology(Grid::square(8).unwrap()).unwrap();
        for (pattern, rate) in [
            (Pattern::UniformRandom, 0.05),
            (Pattern::UniformRandom, 0.40),
            (Pattern::Tornado, 0.20),
            (Pattern::Transpose, 0.30),
        ] {
            let mut fast = RouterlessSim::new(&topo);
            let mut slow = ReferenceRouterlessSim::new(&topo);
            let m_fast = run_synthetic(&mut fast, pattern, rate, &cfg(5), 42);
            let m_slow = run_synthetic(&mut slow, pattern, rate, &cfg(5), 42);
            assert_eq!(
                m_fast, m_slow,
                "optimized routerless diverged from seed at {pattern:?}/{rate}"
            );
        }
    }

    #[test]
    fn routerless_matches_reference_with_ejection_limit() {
        let topo = rec_topology(Grid::square(8).unwrap()).unwrap();
        for limit in [1usize, 2] {
            let mut fast = RouterlessSim::new(&topo);
            fast.set_ejection_limit(Some(limit));
            let mut slow = ReferenceRouterlessSim::new(&topo);
            slow.set_ejection_limit(Some(limit));
            let m_fast = run_synthetic(&mut fast, Pattern::UniformRandom, 0.35, &cfg(5), 9);
            let m_slow = run_synthetic(&mut slow, Pattern::UniformRandom, 0.35, &cfg(5), 9);
            assert_eq!(m_fast, m_slow, "diverged at ejection limit {limit}");
            assert_eq!(fast.deflections(), slow.deflections());
            assert_eq!(fast.unroutable(), slow.unroutable());
        }
    }

    #[test]
    fn mesh_matches_reference_metrics() {
        let g = Grid::square(8).unwrap();
        for (rate, delay) in [(0.05, 2), (0.25, 2), (0.15, 1), (0.15, 0)] {
            let mut fast = MeshSim::new(g, delay, 8);
            let mut slow = ReferenceMeshSim::new(g, delay, 8);
            let m_fast = run_synthetic(&mut fast, Pattern::UniformRandom, rate, &cfg(3), 7);
            let m_slow = run_synthetic(&mut slow, Pattern::UniformRandom, rate, &cfg(3), 7);
            assert_eq!(
                m_fast, m_slow,
                "optimized mesh diverged from seed at rate {rate}, delay {delay}"
            );
        }
    }
}
