//! The routerless fabric: one dedicated ring of wires per loop,
//! single-cycle hops, source routing, priority to passing traffic.
//!
//! The cycle kernel is allocation-free in steady state: each lane keeps a
//! persistent flit array that never moves — advancing the ring is a
//! rotation of the *frame* (one counter increment per lane per cycle),
//! not of the data. A flit injected into a physical slot stays in that
//! slot until ejection; the node a slot currently fronts is derived from
//! the lane's rotation offset. Rings never block, so every flit's arrival
//! rotation is known at injection and recorded in a per-lane calendar —
//! the ejection pass visits only the slots due this cycle (O(ejections),
//! not O(slots)), and a flit passing through costs nothing at all.

use crate::fault::{FaultEvent, FaultPlan};
use crate::hash::PacketIdBuildHasher;
use crate::packet::{Flit, Packet};
use crate::runner::{Delivery, Network};
use rlnoc_topology::{FaultSet, Grid, NodeId, RoutingTable, Topology};
use std::collections::{HashMap, HashSet, VecDeque};

/// Sentinel for an unoccupied slot in [`Lane::dst`].
const EMPTY: u32 = u32::MAX;

/// One loop's wiring: node order and the flit occupying each slot.
///
/// The flit in physical slot `s` is currently *at* node
/// `nodes[(s + rot) % len]`; [`RouterlessSim::tick`] advances every flit
/// one position by incrementing `rot` — no per-cycle allocation, no data
/// movement.
#[derive(Debug, Clone)]
struct Lane {
    nodes: Vec<NodeId>,
    /// Position of each node on this lane (`None` if off-lane), indexed by
    /// node id.
    pos: Vec<Option<usize>>,
    /// Destination node of the flit in each physical slot ([`EMPTY`] when
    /// unoccupied) — the emptiness key for the injection pass.
    dst: Vec<u32>,
    /// Flit payload per physical slot, valid where `dst[s] != EMPTY`.
    slots: Vec<Option<Flit>>,
    /// Frame rotation: how many hops this lane has advanced, modulo its
    /// length.
    rot: usize,
    /// Ejection calendar: `calendar[r]` holds the slots whose flit fronts
    /// its destination when `rot == r`. Rings never block, so arrival
    /// times are known at injection; a deflected entry stays in its
    /// bucket, which recurs exactly one full circle later. Buckets retain
    /// capacity, so steady-state pushes never allocate.
    calendar: Vec<Vec<usize>>,
}

impl Lane {
    /// Physical slot currently fronting node position `p`.
    fn slot_of(&self, p: usize) -> usize {
        let len = self.nodes.len();
        (p + len - self.rot) % len
    }
}

/// An injection in progress: flits of `packet` still being placed onto
/// `lane`.
#[derive(Debug, Clone, Copy)]
struct ActiveInjection {
    packet: Packet,
    lane: usize,
    next_flit: usize,
    hops: u64,
}

/// Live fault-injection state (present only on sims built with
/// [`RouterlessSim::with_faults`]). Every hook it drives is a behavioural
/// no-op until the first structural event fires, preserving the zero-fault
/// bit-identity contract.
#[derive(Debug, Clone)]
struct FaultState {
    /// The topology, retained so the routing table can be re-derived over
    /// the survivors after each structural fault.
    topo: Topology,
    plan: FaultPlan,
    /// Index of the next unapplied event in `plan`.
    next_event: usize,
    /// Faults applied so far, in topology-layer form.
    applied: FaultSet,
    /// Whether each lane has at least one cut link (a deflection on such a
    /// lane would circle through the cut, so it drops instead).
    lane_cut: Vec<bool>,
    /// Injection-stall windows `(node, from, until)`.
    stalls: Vec<(NodeId, u64, u64)>,
    /// Packets that lost at least one flit to a fault; their surviving
    /// flits are discarded at ejection instead of assembled.
    condemned: HashSet<u64, PacketIdBuildHasher>,
    /// Packets condemned by faults (each counted once).
    dropped_packets: u64,
    /// Individual flits destroyed or discarded because of faults.
    dropped_flits: u64,
}

impl FaultState {
    fn is_stalled(&self, node: NodeId, cycle: u64) -> bool {
        self.stalls
            .iter()
            .any(|&(n, from, until)| n == node && from <= cycle && cycle < until)
    }
}

/// Marks `id` as lost to a fault, unwinding its assembly progress and the
/// in-flight count exactly once. Returns whether the packet was newly
/// condemned (callers then abort any matching active injection).
fn condemn(
    fs: &mut FaultState,
    assembly: &mut HashMap<u64, (usize, u64), PacketIdBuildHasher>,
    in_flight_packets: &mut usize,
    id: u64,
) -> bool {
    if fs.condemned.insert(id) {
        assembly.remove(&id);
        *in_flight_packets -= 1;
        fs.dropped_packets += 1;
        true
    } else {
        false
    }
}

/// Cycle-accurate simulator for a routerless NoC [`Topology`].
///
/// Model (paper §2.1/§5): every loop is an independent ring of links; a
/// flit advances one hop per cycle and is never blocked (passing traffic
/// has priority over injection, so rings never back-pressure); each node
/// injects at most one flit per cycle and only into an empty slot of the
/// loop its routing table selects; ejection happens concurrently on every
/// loop passing a node. Packets destined for unreachable nodes are counted
/// in [`RouterlessSim::unroutable`] and dropped.
#[derive(Debug, Clone)]
pub struct RouterlessSim {
    grid: Grid,
    routing: RoutingTable,
    lanes: Vec<Lane>,
    queues: Vec<VecDeque<Packet>>,
    active: Vec<Option<ActiveInjection>>,
    /// Flits received so far per in-flight packet id, with the hop count.
    assembly: HashMap<u64, (usize, u64), PacketIdBuildHasher>,
    deliveries: Vec<Delivery>,
    in_flight_packets: usize,
    unroutable: u64,
    /// Max flits a node may eject per cycle across all loops; `None`
    /// models REC's per-loop ejection links (unlimited).
    ejection_limit: Option<usize>,
    /// Flits that circled past their destination because the ejection
    /// ports were busy (only possible with an ejection limit).
    deflections: u64,
    /// Per-node ejections this cycle (persistent scratch, zeroed each
    /// tick only while an ejection limit is set).
    ejected_at: Vec<usize>,
    /// Fault-injection state; `None` for sims without a fault plan.
    faults: Option<Box<FaultState>>,
}

impl RouterlessSim {
    /// Builds a simulator over `topo` (which should be fully connected for
    /// meaningful workloads).
    pub fn new(topo: &Topology) -> Self {
        RouterlessSim::with_routing(topo, RoutingTable::build(topo))
    }

    /// Builds a simulator with a custom routing table (e.g. a
    /// [`rlnoc_topology::RoutingPolicy::Balanced`] table), for routing
    /// ablations.
    ///
    /// # Panics
    ///
    /// Panics if the table was built for a different node count.
    pub fn with_routing(topo: &Topology, routing: RoutingTable) -> Self {
        let grid = *topo.grid();
        assert_eq!(
            routing.num_nodes(),
            grid.len(),
            "routing table size mismatch"
        );
        let lanes = topo
            .loops()
            .iter()
            .map(|l| {
                let nodes = l.perimeter_nodes(&grid);
                let mut pos = vec![None; grid.len()];
                for (i, &n) in nodes.iter().enumerate() {
                    pos[n] = Some(i);
                }
                let len = nodes.len();
                Lane {
                    nodes,
                    pos,
                    dst: vec![EMPTY; len],
                    slots: vec![None; len],
                    rot: 0,
                    // A lane holds at most one pending arrival per slot,
                    // so `len` bounds any single bucket — pre-reserving it
                    // makes steady-state pushes allocation-free by
                    // construction, not just after warm-up. (Built with a
                    // map: `vec![v; n]` clones drop capacity.)
                    calendar: (0..len).map(|_| Vec::with_capacity(len)).collect(),
                }
            })
            .collect();
        RouterlessSim {
            grid,
            routing,
            lanes,
            queues: vec![VecDeque::new(); grid.len()],
            active: vec![None; grid.len()],
            assembly: HashMap::default(),
            deliveries: Vec::new(),
            in_flight_packets: 0,
            unroutable: 0,
            ejection_limit: None,
            deflections: 0,
            ejected_at: vec![0; grid.len()],
            faults: None,
        }
    }

    /// Builds a simulator that replays `plan` as it runs: structural
    /// events (loop/link kills) drop the affected in-flight flits, account
    /// the lost packets in [`RouterlessSim::dropped_by_fault`], and
    /// re-derive the routing table over the surviving loops
    /// ([`RoutingTable::rebuild_excluding`]); stall windows pause a node's
    /// injection. An empty plan behaves bit-identically to
    /// [`RouterlessSim::new`].
    pub fn with_faults(topo: &Topology, plan: FaultPlan) -> Self {
        let mut sim = RouterlessSim::new(topo);
        let stalls = plan
            .events()
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::StallInjection { node, from, until } => Some((node, from, until)),
                _ => None,
            })
            .collect();
        sim.faults = Some(Box::new(FaultState {
            topo: topo.clone(),
            plan,
            next_event: 0,
            applied: FaultSet::new(),
            lane_cut: vec![false; sim.lanes.len()],
            stalls,
            condemned: HashSet::default(),
            dropped_packets: 0,
            dropped_flits: 0,
        }));
        sim
    }

    /// Applies every scheduled fault whose activation cycle has arrived,
    /// then rebuilds the routing table if the wiring changed. No-op (one
    /// branch) without a plan or between events.
    fn apply_due_faults(&mut self, cycle: u64) {
        let due = match &self.faults {
            Some(f) => {
                f.next_event < f.plan.events().len()
                    && f.plan.events()[f.next_event].activation_cycle() <= cycle
            }
            None => return,
        };
        if !due {
            return;
        }
        let mut fs = self.faults.take().expect("checked above");
        let mut structural = false;
        while fs.next_event < fs.plan.events().len()
            && fs.plan.events()[fs.next_event].activation_cycle() <= cycle
        {
            let event = fs.plan.events()[fs.next_event];
            fs.next_event += 1;
            match event {
                FaultEvent::KillLoop { loop_index, .. } => {
                    if loop_index >= self.lanes.len() || fs.applied.loop_failed(loop_index) {
                        continue;
                    }
                    fs.applied.fail_loop(loop_index);
                    structural = true;
                    // Drain the lane: every on-board flit is destroyed and
                    // its packet condemned.
                    let lane = &mut self.lanes[loop_index];
                    for s in 0..lane.slots.len() {
                        if lane.dst[s] == EMPTY {
                            continue;
                        }
                        lane.dst[s] = EMPTY;
                        let flit = lane.slots[s].take().expect("slot occupied per dst key");
                        fs.dropped_flits += 1;
                        condemn(
                            &mut fs,
                            &mut self.assembly,
                            &mut self.in_flight_packets,
                            flit.packet.id,
                        );
                    }
                    for bucket in &mut lane.calendar {
                        bucket.clear();
                    }
                    // Abort injections mid-flight onto the dead lane.
                    for node in 0..self.active.len() {
                        if let Some(act) = self.active[node] {
                            if act.lane == loop_index {
                                condemn(
                                    &mut fs,
                                    &mut self.assembly,
                                    &mut self.in_flight_packets,
                                    act.packet.id,
                                );
                                self.active[node] = None;
                            }
                        }
                    }
                }
                FaultEvent::KillLink {
                    loop_index, from, ..
                } => {
                    if loop_index >= self.lanes.len()
                        || fs.applied.loop_failed(loop_index)
                        || fs.applied.link_failed(loop_index, from)
                    {
                        continue;
                    }
                    let lane = &mut self.lanes[loop_index];
                    let Some(pf) = lane.pos.get(from).copied().flatten() else {
                        continue; // node not on this loop: nothing to cut
                    };
                    fs.applied.fail_link(loop_index, from);
                    fs.lane_cut[loop_index] = true;
                    structural = true;
                    let len = lane.nodes.len();
                    // Destroy flits whose remaining arc crosses the cut; a
                    // deflected flit (remaining hops 0) needs a full circle
                    // and always crosses.
                    for s in 0..len {
                        if lane.dst[s] == EMPTY {
                            continue;
                        }
                        let p = (s + lane.rot) % len;
                        let flit = lane.slots[s].expect("slot occupied per dst key");
                        let pd = lane.pos[flit.packet.dst].expect("dst on lane");
                        let mut rem = (pd + len - p) % len;
                        if rem == 0 {
                            rem = len;
                        }
                        if (pf + len - p) % len < rem {
                            lane.dst[s] = EMPTY;
                            lane.slots[s] = None;
                            fs.dropped_flits += 1;
                            condemn(
                                &mut fs,
                                &mut self.assembly,
                                &mut self.in_flight_packets,
                                flit.packet.id,
                            );
                        }
                    }
                    // Rebuild the calendar from the survivors (their
                    // arrival rotations are unchanged; dropped entries
                    // simply vanish).
                    for bucket in &mut lane.calendar {
                        bucket.clear();
                    }
                    for s in 0..len {
                        if lane.dst[s] == EMPTY {
                            continue;
                        }
                        let p = (s + lane.rot) % len;
                        let flit = lane.slots[s].as_ref().expect("slot occupied per dst key");
                        let pd = lane.pos[flit.packet.dst].expect("dst on lane");
                        let mut rem = (pd + len - p) % len;
                        if rem == 0 {
                            rem = len;
                        }
                        let bucket = (lane.rot + rem) % len;
                        lane.calendar[bucket].push(s);
                    }
                    // Abort active injections whose source→destination arc
                    // spans the cut: their remaining flits could never get
                    // through. (Arcs that avoid the cut keep injecting.)
                    for node in 0..self.active.len() {
                        if let Some(act) = self.active[node] {
                            if act.lane != loop_index {
                                continue;
                            }
                            let ps = lane.pos[node].expect("source on lane");
                            let pd = lane.pos[act.packet.dst].expect("dst on lane");
                            let arc = (pd + len - ps) % len;
                            if (pf + len - ps) % len < arc {
                                condemn(
                                    &mut fs,
                                    &mut self.assembly,
                                    &mut self.in_flight_packets,
                                    act.packet.id,
                                );
                                self.active[node] = None;
                            }
                        }
                    }
                }
                // Mesh-only and pre-extracted events: nothing structural.
                FaultEvent::KillMeshLink { .. } | FaultEvent::StallInjection { .. } => {}
            }
        }
        if structural {
            self.routing = RoutingTable::rebuild_excluding(&fs.topo, &fs.applied).0;
        }
        self.faults = Some(fs);
    }

    /// Packets condemned by injected faults (each counted once, in the
    /// cycle the fault destroyed their first flit).
    pub fn dropped_by_fault(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.dropped_packets)
    }

    /// Individual flits destroyed or discarded because of injected faults.
    pub fn dropped_fault_flits(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.dropped_flits)
    }

    /// The faults applied so far (empty without a plan).
    pub fn applied_faults(&self) -> FaultSet {
        self.faults
            .as_ref()
            .map(|f| f.applied.clone())
            .unwrap_or_default()
    }

    /// Caps how many flits each node may eject per cycle across all its
    /// loops. The paper's REC interface provides one ejection link per
    /// loop (effectively unlimited, the default); a shared-port interface
    /// (limit 1-2) deflects arriving flits around their loop when the port
    /// is busy — this models that cheaper interface for ablation studies.
    pub fn set_ejection_limit(&mut self, limit: Option<usize>) {
        self.ejection_limit = limit;
    }

    /// Packets dropped because no loop reaches their destination.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Flits that circled past their destination because of the ejection
    /// limit.
    pub fn deflections(&self) -> u64 {
        self.deflections
    }

    /// Ejection-calendar occupancy: `(scheduled, capacity)` where
    /// `scheduled` is the number of slot indices currently booked across
    /// every lane's calendar and `capacity` is the total slot count of all
    /// lanes. The ratio is the fraction of in-loop wiring carrying flits
    /// that still owe an ejection.
    pub fn calendar_occupancy(&self) -> (usize, usize) {
        let mut scheduled = 0;
        let mut capacity = 0;
        for lane in &self.lanes {
            scheduled += lane.calendar.iter().map(Vec::len).sum::<usize>();
            capacity += lane.slots.len();
        }
        (scheduled, capacity)
    }
}

impl Network for RouterlessSim {
    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn offer(&mut self, packet: Packet) {
        self.queues[packet.src].push_back(packet);
        self.in_flight_packets += 1;
    }

    fn tick(&mut self, cycle: u64) {
        // Phase 0: activate any faults scheduled for this cycle (no-op
        // without a plan).
        self.apply_due_faults(cycle);

        // Phase 1: advance every lane one hop (a frame rotation — flits
        // stay in their physical slots), ejecting flits that arrive at
        // their destination (subject to the per-node ejection limit).
        let limit = self.ejection_limit;
        if limit.is_some() {
            self.ejected_at.fill(0);
        }
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            let len = lane.nodes.len();
            if len == 0 {
                continue;
            }
            lane.rot += 1;
            if lane.rot == len {
                lane.rot = 0;
            }
            // Only the calendar bucket for this rotation can eject: it
            // holds exactly the slots whose flit now fronts its
            // destination, so the pass is O(ejections), not O(slots).
            let rot = lane.rot;
            let mut i = 0;
            while i < lane.calendar[rot].len() {
                let s = lane.calendar[rot][i];
                let mut p = s + rot;
                if p >= len {
                    p -= len;
                }
                let node = lane.nodes[p];
                debug_assert_eq!(lane.dst[s], node as u32, "calendar out of sync");
                if let Some(lim) = limit {
                    if self.ejected_at[node] >= lim {
                        // Ejection port busy: deflect around the loop. The
                        // kept entry recurs when this bucket next comes
                        // up — one full circle later... unless the loop
                        // has a cut link, in which case the full circle
                        // crosses it and the flit is lost to the fault.
                        if let Some(fs) = self.faults.as_deref_mut() {
                            if fs.lane_cut[li] {
                                lane.calendar[rot].swap_remove(i);
                                lane.dst[s] = EMPTY;
                                let flit = lane.slots[s].take().expect("slot occupied per dst key");
                                fs.dropped_flits += 1;
                                if condemn(
                                    fs,
                                    &mut self.assembly,
                                    &mut self.in_flight_packets,
                                    flit.packet.id,
                                ) && self.active[flit.packet.src]
                                    .is_some_and(|a| a.packet.id == flit.packet.id)
                                {
                                    self.active[flit.packet.src] = None;
                                }
                                continue;
                            }
                        }
                        self.deflections += 1;
                        i += 1;
                        continue;
                    }
                    self.ejected_at[node] += 1;
                }
                lane.calendar[rot].swap_remove(i);
                // Eject: deliver into the assembly buffer.
                lane.dst[s] = EMPTY;
                let flit = lane.slots[s].take().expect("slot occupied per dst key");
                if let Some(fs) = self.faults.as_deref_mut() {
                    // Surviving flits of a packet that already lost one to
                    // a fault are discarded, not assembled.
                    if !fs.condemned.is_empty() && fs.condemned.contains(&flit.packet.id) {
                        fs.dropped_flits += 1;
                        continue;
                    }
                }
                let entry = self.assembly.entry(flit.packet.id).or_insert((0, 0));
                entry.0 += 1;
                if entry.0 == flit.packet.flits {
                    let (_, hops) = self.assembly.remove(&flit.packet.id).expect("present");
                    self.deliveries.push(Delivery {
                        packet: flit.packet,
                        delivered: cycle,
                        hops,
                    });
                    self.in_flight_packets -= 1;
                }
            }
        }

        // Phase 2: injection — one flit per node, only into an empty slot,
        // so passing traffic always has priority.
        for node in 0..self.grid.len() {
            if self
                .faults
                .as_deref()
                .is_some_and(|fs| !fs.stalls.is_empty() && fs.is_stalled(node, cycle))
            {
                continue;
            }
            if self.active[node].is_none() {
                // Start the next queued packet, if routable.
                while let Some(p) = self.queues[node].pop_front() {
                    match self.routing.route(p.src, p.dst) {
                        Some(route) => {
                            self.active[node] = Some(ActiveInjection {
                                packet: p,
                                lane: route.loop_index,
                                next_flit: 0,
                                hops: route.hops as u64,
                            });
                            break;
                        }
                        None => {
                            self.unroutable += 1;
                            self.in_flight_packets -= 1;
                        }
                    }
                }
            }
            let Some(mut act) = self.active[node] else {
                continue;
            };
            let lane = &mut self.lanes[act.lane];
            let pos = lane.pos[node].expect("routing table only picks loops through the source");
            let s = lane.slot_of(pos);
            if lane.dst[s] == EMPTY {
                let len = lane.nodes.len();
                lane.dst[s] = act.packet.dst as u32;
                lane.slots[s] = Some(Flit {
                    packet: act.packet,
                    index: act.next_flit,
                });
                // Schedule the ejection: the flit fronts its destination
                // after `hops` advances (`hops == 0`, a self-addressed
                // packet, means one full circle — bucket `rot` recurs in
                // exactly `len` cycles).
                let hops = lane.pos[act.packet.dst]
                    .map(|d| (d + len - pos) % len)
                    .expect("routing table only picks loops through the destination");
                let bucket = (lane.rot + hops) % len;
                lane.calendar[bucket].push(s);
                // Record hops once per packet in the assembly buffer.
                self.assembly
                    .entry(act.packet.id)
                    .or_insert((0, act.hops))
                    .1 = act.hops;
                act.next_flit += 1;
                self.active[node] = if act.next_flit == act.packet.flits {
                    None
                } else {
                    Some(act)
                };
            }
        }
    }

    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    fn in_flight(&self) -> usize {
        self.in_flight_packets
    }

    fn telemetry_sample(&self, rec: &mut rlnoc_telemetry::Recorder) {
        rec.incr("sim.unroutable_packets", self.unroutable());
        rec.incr("sim.dropped_by_fault_packets", self.dropped_by_fault());
        rec.incr("sim.dropped_by_fault_flits", self.dropped_fault_flits());
        rec.incr("sim.deflected_flits", self.deflections());
        let (scheduled, capacity) = self.calendar_occupancy();
        if capacity > 0 {
            rec.gauge("sim.calendar_occupancy", scheduled as f64 / capacity as f64);
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::packet::PacketKind;
    use crate::runner::run_synthetic;
    use crate::traffic::Pattern;
    use rlnoc_baselines::rec_topology;
    use rlnoc_topology::{Direction, RectLoop};

    fn single_packet(src: NodeId, dst: NodeId, flits: usize) -> Packet {
        Packet {
            id: 0,
            src,
            dst,
            kind: PacketKind::Data,
            flits,
            created: 0,
            measured: true,
        }
    }

    fn ring_2x2() -> Topology {
        Topology::from_loops(
            Grid::square(2).unwrap(),
            [RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn zero_load_latency_is_hops_plus_serialization() {
        // 2x2 CW ring: node 0 → node 3 is 2 hops. A 1-flit packet injected
        // at cycle 0 must arrive at cycle 2; a 3-flit packet at cycle 4.
        for (flits, expect) in [(1usize, 2u64), (3, 4)] {
            let mut sim = RouterlessSim::new(&ring_2x2());
            sim.offer(single_packet(0, 3, flits));
            let mut delivered = None;
            for cycle in 0..20 {
                sim.tick(cycle);
                if let Some(d) = sim.take_deliveries().pop() {
                    delivered = Some(d);
                    break;
                }
            }
            let d = delivered.expect("packet must arrive");
            assert_eq!(d.delivered, expect, "{flits}-flit packet");
            assert_eq!(d.hops, 2);
            assert_eq!(sim.in_flight(), 0);
        }
    }

    #[test]
    fn passing_traffic_has_priority_over_injection() {
        // Saturate the ring from node 0, then ask node 1 to inject: node 1
        // must wait for a gap.
        let topo = ring_2x2();
        let mut sim = RouterlessSim::new(&topo);
        // Node 0 → node 2 (3 hops CW), long packet occupies slots.
        sim.offer(Packet {
            id: 9,
            ..single_packet(0, 2, 4)
        });
        sim.tick(0); // head flit placed at node 0's slot
        sim.tick(1);
        // Now node 1 wants to inject; the slot at node 1 is occupied by the
        // passing flit each cycle until the first packet fully passes.
        sim.offer(Packet {
            id: 10,
            ..single_packet(1, 0, 1)
        });
        let mut arrivals = Vec::new();
        for cycle in 2..30 {
            sim.tick(cycle);
            arrivals.extend(sim.take_deliveries());
        }
        assert_eq!(arrivals.len(), 2);
        let first = arrivals.iter().find(|d| d.packet.id == 9).unwrap();
        let second = arrivals.iter().find(|d| d.packet.id == 10).unwrap();
        assert!(second.delivered > first.delivered - 4, "injection waited");
    }

    #[test]
    fn unroutable_packets_are_counted() {
        // One loop on a 4x4 leaves inner nodes unreachable.
        let topo = Topology::from_loops(
            Grid::square(4).unwrap(),
            [RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap()],
        )
        .unwrap();
        let mut sim = RouterlessSim::new(&topo);
        let inner = topo.grid().node_at(1, 1);
        sim.offer(single_packet(0, inner, 1));
        sim.tick(0);
        assert_eq!(sim.unroutable(), 1);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn conservation_at_low_load() {
        let topo = rec_topology(Grid::square(4).unwrap()).unwrap();
        let mut sim = RouterlessSim::new(&topo);
        let cfg = SimConfig {
            warmup: 100,
            measure: 1_000,
            drain: 1_000,
            ..SimConfig::routerless()
        };
        let m = run_synthetic(&mut sim, Pattern::UniformRandom, 0.02, &cfg, 3);
        assert!(m.packets > 0);
        assert!(
            m.delivery_ratio() > 0.99,
            "low load must deliver ~everything: {}",
            m.delivery_ratio()
        );
        assert_eq!(sim.in_flight(), 0, "network must drain");
        assert_eq!(sim.unroutable(), 0);
    }

    #[test]
    fn latency_rises_with_load() {
        let topo = rec_topology(Grid::square(4).unwrap()).unwrap();
        let cfg = SimConfig {
            warmup: 200,
            measure: 2_000,
            drain: 2_000,
            ..SimConfig::routerless()
        };
        let low = run_synthetic(
            &mut RouterlessSim::new(&topo),
            Pattern::UniformRandom,
            0.02,
            &cfg,
            1,
        );
        let high = run_synthetic(
            &mut RouterlessSim::new(&topo),
            Pattern::UniformRandom,
            0.25,
            &cfg,
            1,
        );
        assert!(
            high.avg_packet_latency() > low.avg_packet_latency(),
            "latency must rise with load: {} vs {}",
            low.avg_packet_latency(),
            high.avg_packet_latency()
        );
    }

    #[test]
    fn ejection_limit_deflects_but_still_delivers() {
        // Two single-flit packets from different loops arrive at the same
        // node on the same cycle; with limit 1 one of them must circle.
        let g = Grid::square(2).unwrap();
        let topo = Topology::from_loops(
            g,
            [
                RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap(),
                RectLoop::new(0, 0, 1, 1, Direction::Counterclockwise).unwrap(),
            ],
        )
        .unwrap();
        let mut sim = RouterlessSim::new(&topo);
        sim.set_ejection_limit(Some(1));
        // CW: node 1 → node 0 is 3 hops. CCW: node 2 → node 0 is ... CCW
        // order 0,2,3,1: node 2 → 0 is 3 hops too. Wait — pick pairs that
        // arrive together: src 1 via CW (3 hops), src 2 via CCW (3 hops).
        sim.offer(Packet {
            id: 1,
            ..single_packet(1, 0, 1)
        });
        sim.offer(Packet {
            id: 2,
            ..single_packet(2, 0, 1)
        });
        let mut delivered = Vec::new();
        for cycle in 0..40 {
            sim.tick(cycle);
            delivered.extend(sim.take_deliveries());
            if delivered.len() == 2 {
                break;
            }
        }
        assert_eq!(delivered.len(), 2, "deflection must not drop packets");
        if sim.deflections() > 0 {
            // The deflected flit circled a full 4-node loop extra.
            let times: Vec<u64> = delivered.iter().map(|d| d.delivered).collect();
            assert_ne!(times[0], times[1]);
        }
        // Unlimited ejection never deflects.
        let mut free = RouterlessSim::new(&topo);
        free.offer(Packet {
            id: 1,
            ..single_packet(1, 0, 1)
        });
        free.offer(Packet {
            id: 2,
            ..single_packet(2, 0, 1)
        });
        for cycle in 0..40 {
            free.tick(cycle);
            free.take_deliveries();
        }
        assert_eq!(free.deflections(), 0);
    }

    #[test]
    fn balanced_routing_table_works_in_sim() {
        use rlnoc_topology::RoutingPolicy;
        let topo = rec_topology(Grid::square(4).unwrap()).unwrap();
        let table = RoutingTable::build_with(&topo, RoutingPolicy::Balanced { slack: 0 });
        let mut sim = RouterlessSim::with_routing(&topo, table);
        let cfg = SimConfig {
            warmup: 100,
            measure: 1_000,
            drain: 1_000,
            ..SimConfig::routerless()
        };
        let m = run_synthetic(&mut sim, Pattern::UniformRandom, 0.05, &cfg, 5);
        assert!(m.delivery_ratio() > 0.99);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn kill_loop_drops_in_flight_and_reroutes_survivors() {
        // Two opposite rings on 2x2: kill the CW ring while a packet rides
        // it; the packet is dropped and accounted, and later traffic takes
        // the CCW ring.
        let g = Grid::square(2).unwrap();
        let topo = Topology::from_loops(
            g,
            [
                RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap(),
                RectLoop::new(0, 0, 1, 1, Direction::Counterclockwise).unwrap(),
            ],
        )
        .unwrap();
        let mut plan = FaultPlan::new();
        plan.kill_loop(2, 0);
        let mut sim = RouterlessSim::with_faults(&topo, plan);
        // 0 → 3 is 2 hops CW (loop 0) vs 2 hops CCW... CW order 0,1,3,2:
        // 0→3 is 2 hops; CCW order 0,2,3,1: 0→3 is 2 hops. Tie breaks to
        // loop 0, which dies at cycle 2 — mid-journey for a cycle-0 inject.
        sim.offer(single_packet(0, 3, 1));
        for cycle in 0..10 {
            sim.tick(cycle);
        }
        assert!(sim.take_deliveries().is_empty(), "rider must be dropped");
        assert_eq!(sim.dropped_by_fault(), 1);
        assert_eq!(sim.in_flight(), 0);
        // A fresh packet after the kill must still arrive, via loop 1.
        sim.offer(Packet {
            id: 7,
            created: 10,
            ..single_packet(0, 3, 1)
        });
        let mut arrived = false;
        for cycle in 10..30 {
            sim.tick(cycle);
            if sim.take_deliveries().pop().is_some() {
                arrived = true;
                break;
            }
        }
        assert!(arrived, "survivor loop must carry post-fault traffic");
        assert!(sim.applied_faults().loop_failed(0));
    }

    #[test]
    fn kill_link_drops_only_crossing_flits() {
        // Single CW ring on 2x2, order 0,1,3,2. Packet A: 0→1 (1 hop).
        // Packet B: 0→2 (3 hops, crosses the link leaving node 1). Cut
        // that link at cycle 1: A (already at node 1's slot... actually
        // ejected at cycle 1) survives; B is dropped when the cut lands.
        let topo = ring_2x2();
        let mut plan = FaultPlan::new();
        plan.kill_link(2, 0, 1);
        let mut sim = RouterlessSim::with_faults(&topo, plan);
        sim.offer(Packet {
            id: 1,
            ..single_packet(0, 1, 1)
        });
        sim.offer(Packet {
            id: 2,
            ..single_packet(2, 0, 1) // 0 is 2 hops from 2 (order 0,1,3,2): 2→0 crosses? positions: 2 is at 3, 0 at 0 → 1 hop.
        });
        let mut delivered = Vec::new();
        for cycle in 0..12 {
            sim.tick(cycle);
            delivered.extend(sim.take_deliveries());
        }
        // Packet 1 (0→1, 1 hop, ejected cycle 1 before the cut applies at
        // cycle 2) and packet 2 (2→0, 1 hop, never crossing node 1's link)
        // both arrive.
        assert_eq!(delivered.len(), 2);
        assert_eq!(sim.dropped_by_fault(), 0);
        // After the cut, 0→2 (whose arc spans node 1's outgoing link) is
        // unroutable — counted, not hung.
        sim.offer(Packet {
            id: 3,
            created: 12,
            ..single_packet(0, 2, 1)
        });
        sim.tick(12);
        assert_eq!(sim.unroutable(), 1);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn kill_link_severs_in_flight_crossers() {
        // Packet 0→2 (3 hops on the CW 2x2 ring, passing node 1) injected
        // at cycle 0; the link leaving node 1 dies at cycle 1, while the
        // flit still has the cut ahead of it.
        let topo = ring_2x2();
        let mut plan = FaultPlan::new();
        plan.kill_link(1, 0, 1);
        let mut sim = RouterlessSim::with_faults(&topo, plan);
        sim.offer(single_packet(0, 2, 1));
        for cycle in 0..10 {
            sim.tick(cycle);
        }
        assert!(sim.take_deliveries().is_empty());
        assert_eq!(sim.dropped_by_fault(), 1);
        assert_eq!(sim.dropped_fault_flits(), 1);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn stall_window_pauses_injection_then_resumes() {
        let topo = ring_2x2();
        let mut plan = FaultPlan::new();
        plan.stall_injection(0, 0, 5);
        let mut sim = RouterlessSim::with_faults(&topo, plan);
        sim.offer(single_packet(0, 3, 1)); // 2 hops once injected
        let mut delivered = None;
        for cycle in 0..20 {
            sim.tick(cycle);
            if let Some(d) = sim.take_deliveries().pop() {
                delivered = Some(d);
                break;
            }
        }
        let d = delivered.expect("stall is transient; packet must arrive");
        // Without the stall it lands at cycle 2; stalled through cycle 4,
        // it injects at 5 and lands at 7.
        assert_eq!(d.delivered, 7);
        assert_eq!(sim.dropped_by_fault(), 0);
    }

    #[test]
    fn multi_flit_packet_condemned_once() {
        // A 4-flit packet 0→2 mid-injection when its loop dies: exactly
        // one packet drop, conservation intact.
        let topo = ring_2x2();
        let mut plan = FaultPlan::new();
        plan.kill_loop(2, 0);
        let mut sim = RouterlessSim::with_faults(&topo, plan);
        sim.offer(single_packet(0, 2, 4));
        for cycle in 0..20 {
            sim.tick(cycle);
            let offered = 1usize;
            assert_eq!(
                offered,
                sim.take_deliveries().len()
                    + sim.in_flight()
                    + sim.unroutable() as usize
                    + sim.dropped_by_fault() as usize,
                "conservation at cycle {cycle}"
            );
        }
        assert_eq!(sim.dropped_by_fault(), 1);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn hop_counts_match_routing_table() {
        let topo = rec_topology(Grid::square(4).unwrap()).unwrap();
        let table = RoutingTable::build(&topo);
        let mut sim = RouterlessSim::new(&topo);
        let (src, dst) = (0, 15);
        sim.offer(single_packet(src, dst, 1));
        for cycle in 0..50 {
            sim.tick(cycle);
            if let Some(d) = sim.take_deliveries().pop() {
                assert_eq!(d.hops, table.route(src, dst).unwrap().hops as u64);
                return;
            }
        }
        panic!("packet never arrived");
    }
}
