//! The fabric-agnostic simulation driver.
//!
//! The hot-path contracts are *sink-based*: [`Network::drain_deliveries`]
//! and [`PacketSource::generate_into`] write into caller-owned reusable
//! buffers, so [`run_with_source`] performs no heap allocation per cycle
//! once the network and its buffers have reached steady state (see the
//! counting-allocator audit in `tests/alloc_free.rs`). The allocating
//! [`Network::take_deliveries`] / [`PacketSource::generate`] conveniences
//! are provided trait methods kept for tests and one-shot callers.

use crate::config::SimConfig;
use crate::packet::Packet;
use crate::stats::Metrics;
use crate::traffic::{Pattern, TrafficGen};
use rlnoc_topology::Grid;

/// A delivered packet with its delivery cycle and traversed hop count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The packet that completed.
    pub packet: Packet,
    /// Cycle at which the tail flit reached the destination.
    pub delivered: u64,
    /// Hops traversed by the packet.
    pub hops: u64,
}

/// A simulated NoC fabric that the common driver can run traffic through.
pub trait Network {
    /// The grid the fabric serves.
    fn grid(&self) -> &Grid;

    /// Enqueues a freshly generated packet at its source node.
    fn offer(&mut self, packet: Packet);

    /// Advances the fabric by one cycle.
    fn tick(&mut self, cycle: u64);

    /// Appends packets delivered since the last drain to `out`, leaving
    /// the internal delivery buffer empty (capacity retained). This is
    /// the allocation-free primitive the driver uses every cycle.
    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>);

    /// Removes and returns packets delivered since the last call.
    ///
    /// Allocating convenience over [`Network::drain_deliveries`].
    fn take_deliveries(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.drain_deliveries(&mut out);
        out
    }

    /// Packets currently queued or in flight (for drain accounting).
    fn in_flight(&self) -> usize;

    /// Records fabric-specific end-of-run telemetry (cumulative drop
    /// counters, occupancy gauges, ...) into `rec`. Counters published
    /// here are lifetime totals, so call it once per run — the traced
    /// drivers ([`run_with_source_traced`]) do. The default records
    /// nothing.
    fn telemetry_sample(&self, rec: &mut rlnoc_telemetry::Recorder) {
        let _ = rec;
    }
}

impl<N: Network + ?Sized> Network for Box<N> {
    fn grid(&self) -> &Grid {
        (**self).grid()
    }
    fn offer(&mut self, packet: Packet) {
        (**self).offer(packet)
    }
    fn tick(&mut self, cycle: u64) {
        (**self).tick(cycle)
    }
    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        (**self).drain_deliveries(out)
    }
    fn take_deliveries(&mut self) -> Vec<Delivery> {
        (**self).take_deliveries()
    }
    fn in_flight(&self) -> usize {
        (**self).in_flight()
    }
    fn telemetry_sample(&self, rec: &mut rlnoc_telemetry::Recorder) {
        (**self).telemetry_sample(rec)
    }
}

/// A source of packets driving a simulation — synthetic patterns
/// ([`TrafficGen`]) or application models (the `rlnoc-workloads` crate).
pub trait PacketSource {
    /// Appends this cycle's new packets to `out` (marked `measured`
    /// inside the measurement window). The caller owns and reuses `out`;
    /// implementations must only append.
    fn generate_into(&mut self, cycle: u64, cfg: &SimConfig, measured: bool, out: &mut Vec<Packet>);

    /// This cycle's new packets, as a fresh vector.
    ///
    /// Allocating convenience over [`PacketSource::generate_into`].
    fn generate(&mut self, cycle: u64, cfg: &SimConfig, measured: bool) -> Vec<Packet> {
        let mut out = Vec::new();
        self.generate_into(cycle, cfg, measured, &mut out);
        out
    }
}

impl PacketSource for TrafficGen {
    fn generate_into(
        &mut self,
        cycle: u64,
        cfg: &SimConfig,
        measured: bool,
        out: &mut Vec<Packet>,
    ) {
        TrafficGen::generate_into(self, cycle, cfg, measured, out);
    }
}

/// Runs a traffic experiment from any [`PacketSource`]: warm-up,
/// measurement, and drain phases, returning aggregated [`Metrics`].
///
/// The per-cycle loop reuses two caller-local buffers (new packets and
/// drained deliveries) and the sink-based trait methods, so it allocates
/// nothing per cycle in steady state.
pub fn run_with_source<N: Network>(
    net: &mut N,
    source: &mut impl PacketSource,
    cfg: &SimConfig,
) -> Metrics {
    let grid = *net.grid();
    let mut metrics = Metrics::new(grid.len(), cfg.measure);
    let total = cfg.warmup + cfg.measure + cfg.drain;
    let mut fresh: Vec<Packet> = Vec::new();
    let mut delivered: Vec<Delivery> = Vec::new();
    for cycle in 0..total {
        // Generation stops after the measurement window so the drain phase
        // can empty the network.
        if cycle < cfg.warmup + cfg.measure {
            let measured = cycle >= cfg.warmup;
            fresh.clear();
            source.generate_into(cycle, cfg, measured, &mut fresh);
            for &p in &fresh {
                if measured {
                    metrics.record_offered(p.flits);
                }
                net.offer(p);
            }
        }
        net.tick(cycle);
        delivered.clear();
        net.drain_deliveries(&mut delivered);
        for d in &delivered {
            if d.packet.measured {
                metrics.record_delivery(d.delivered - d.packet.created, d.hops, d.packet.flits);
            }
        }
    }
    metrics
}

/// [`run_with_source`] plus telemetry: counts *every* injected and
/// delivered packet/flit (warm-up and drain included, unlike `Metrics`'
/// measurement-window accounting), records the latency distribution and
/// end-of-run in-flight backlog, and samples fabric-specific counters via
/// [`Network::telemetry_sample`].
///
/// Telemetry is observation-only: the returned [`Metrics`] are bit-identical
/// to [`run_with_source`] on the same inputs (asserted by the golden-trace
/// tests), whether `rec` is live or disabled. The emitted counters satisfy
/// the conservation identity: `sim.packets_injected` equals the sum of
/// `sim.packets_delivered`, `sim.packets_in_flight_end`,
/// `sim.unroutable_packets`, and `sim.dropped_by_fault_packets` (the last
/// two from the routerless fabric's sample; faultless meshes drop nothing).
pub fn run_with_source_traced<N: Network>(
    net: &mut N,
    source: &mut impl PacketSource,
    cfg: &SimConfig,
    rec: &mut rlnoc_telemetry::Recorder,
) -> Metrics {
    let timer = rec.timer();
    let grid = *net.grid();
    let mut metrics = Metrics::new(grid.len(), cfg.measure);
    let total = cfg.warmup + cfg.measure + cfg.drain;
    let mut fresh: Vec<Packet> = Vec::new();
    let mut delivered: Vec<Delivery> = Vec::new();
    let mut injected_packets = 0u64;
    let mut injected_flits = 0u64;
    let mut delivered_packets = 0u64;
    let mut delivered_flits = 0u64;
    for cycle in 0..total {
        if cycle < cfg.warmup + cfg.measure {
            let measured = cycle >= cfg.warmup;
            fresh.clear();
            source.generate_into(cycle, cfg, measured, &mut fresh);
            for &p in &fresh {
                injected_packets += 1;
                injected_flits += p.flits as u64;
                if measured {
                    metrics.record_offered(p.flits);
                }
                net.offer(p);
            }
        }
        net.tick(cycle);
        delivered.clear();
        net.drain_deliveries(&mut delivered);
        for d in &delivered {
            delivered_packets += 1;
            delivered_flits += d.packet.flits as u64;
            if d.packet.measured {
                metrics.record_delivery(d.delivered - d.packet.created, d.hops, d.packet.flits);
            }
        }
    }
    if rec.is_enabled() {
        rec.incr("sim.cycles", total);
        rec.incr("sim.packets_injected", injected_packets);
        rec.incr("sim.flits_injected", injected_flits);
        rec.incr("sim.packets_delivered", delivered_packets);
        rec.incr("sim.flits_delivered", delivered_flits);
        rec.incr("sim.packets_in_flight_end", net.in_flight() as u64);
        // Mirror the measurement-window latency histogram (exact per-cycle
        // counts; the overflow bucket is reported at the observed max).
        let hist = &metrics.latency_hist;
        if let Some((&overflow, exact)) = hist.split_last() {
            let mut h = rlnoc_telemetry::Histogram::from_linear_counts(exact);
            h.record_n(metrics.max_latency, overflow);
            rec.merge_hist("sim.packet_latency", &h);
        }
        net.telemetry_sample(rec);
        rec.observe_timer("sim.run_us", timer);
        rec.flush();
    }
    metrics
}

/// Runs a synthetic-traffic experiment at `rate` flits/node/cycle (the
/// paper's x-axes), returning aggregated [`Metrics`].
pub fn run_synthetic<N: Network>(
    net: &mut N,
    pattern: Pattern,
    rate: f64,
    cfg: &SimConfig,
    seed: u64,
) -> Metrics {
    let mut gen = TrafficGen::new(*net.grid(), pattern, rate, seed);
    run_with_source(net, &mut gen, cfg)
}

/// [`run_synthetic`] with telemetry, via [`run_with_source_traced`].
pub fn run_synthetic_traced<N: Network>(
    net: &mut N,
    pattern: Pattern,
    rate: f64,
    cfg: &SimConfig,
    seed: u64,
    rec: &mut rlnoc_telemetry::Recorder,
) -> Metrics {
    let mut gen = TrafficGen::new(*net.grid(), pattern, rate, seed);
    run_with_source_traced(net, &mut gen, cfg, rec)
}

/// [`run_synthetic`] with inputs validated at the boundary: the rate must
/// lie in `(0, 1]` and `cfg` must pass [`SimConfig::validate`], returning
/// a typed [`SimError`](crate::SimError) instead of misbehaving deep in
/// the tick loop.
pub fn run_synthetic_checked<N: Network>(
    net: &mut N,
    pattern: Pattern,
    rate: f64,
    cfg: &SimConfig,
    seed: u64,
) -> Result<Metrics, crate::SimError> {
    crate::error::validate_rate(rate)?;
    cfg.validate()?;
    Ok(run_synthetic(net, pattern, rate, cfg, seed))
}
