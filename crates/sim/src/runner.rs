//! The fabric-agnostic simulation driver.

use crate::config::SimConfig;
use crate::packet::Packet;
use crate::stats::Metrics;
use crate::traffic::{Pattern, TrafficGen};
use rlnoc_topology::Grid;

/// A delivered packet with its delivery cycle and traversed hop count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The packet that completed.
    pub packet: Packet,
    /// Cycle at which the tail flit reached the destination.
    pub delivered: u64,
    /// Hops traversed by the packet.
    pub hops: u64,
}

/// A simulated NoC fabric that the common driver can run traffic through.
pub trait Network {
    /// The grid the fabric serves.
    fn grid(&self) -> &Grid;

    /// Enqueues a freshly generated packet at its source node.
    fn offer(&mut self, packet: Packet);

    /// Advances the fabric by one cycle.
    fn tick(&mut self, cycle: u64);

    /// Removes and returns packets delivered since the last call.
    fn take_deliveries(&mut self) -> Vec<Delivery>;

    /// Packets currently queued or in flight (for drain accounting).
    fn in_flight(&self) -> usize;
}

/// A source of packets driving a simulation — synthetic patterns
/// ([`TrafficGen`]) or application models (the `rlnoc-workloads` crate).
pub trait PacketSource {
    /// This cycle's new packets (marked `measured` inside the measurement
    /// window).
    fn generate(&mut self, cycle: u64, cfg: &SimConfig, measured: bool) -> Vec<Packet>;
}

impl PacketSource for TrafficGen {
    fn generate(&mut self, cycle: u64, cfg: &SimConfig, measured: bool) -> Vec<Packet> {
        TrafficGen::generate(self, cycle, cfg, measured)
    }
}

/// Runs a traffic experiment from any [`PacketSource`]: warm-up,
/// measurement, and drain phases, returning aggregated [`Metrics`].
pub fn run_with_source<N: Network>(
    net: &mut N,
    source: &mut impl PacketSource,
    cfg: &SimConfig,
) -> Metrics {
    let grid = *net.grid();
    let mut metrics = Metrics {
        nodes: grid.len(),
        cycles: cfg.measure,
        ..Metrics::default()
    };
    let total = cfg.warmup + cfg.measure + cfg.drain;
    for cycle in 0..total {
        // Generation stops after the measurement window so the drain phase
        // can empty the network.
        if cycle < cfg.warmup + cfg.measure {
            let measured = cycle >= cfg.warmup;
            for p in source.generate(cycle, cfg, measured) {
                if measured {
                    metrics.record_offered(p.flits);
                }
                net.offer(p);
            }
        }
        net.tick(cycle);
        for d in net.take_deliveries() {
            if d.packet.measured {
                metrics.record_delivery(d.delivered - d.packet.created, d.hops, d.packet.flits);
            }
        }
    }
    metrics
}

/// Runs a synthetic-traffic experiment at `rate` flits/node/cycle (the
/// paper's x-axes), returning aggregated [`Metrics`].
pub fn run_synthetic<N: Network>(
    net: &mut N,
    pattern: Pattern,
    rate: f64,
    cfg: &SimConfig,
    seed: u64,
) -> Metrics {
    let mut gen = TrafficGen::new(*net.grid(), pattern, rate, seed);
    run_with_source(net, &mut gen, cfg)
}
