//! Measurement collection: latency, hop count, and throughput.

use serde::{Deserialize, Serialize};

/// Aggregated measurements from one simulation run.
///
/// Only packets created inside the measurement window contribute to
/// latency/hop statistics; accepted throughput counts measured flits
/// delivered divided by (nodes × measured cycles).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of measured packets delivered.
    pub packets: u64,
    /// Sum of packet latencies (creation → tail delivery), cycles.
    pub latency_sum: u64,
    /// Sum of per-packet hop counts.
    pub hop_sum: u64,
    /// Measured flits delivered.
    pub flits_delivered: u64,
    /// Sum of flit-hops (per packet: hops × flits) — the activity measure
    /// driving dynamic power.
    pub flit_hop_sum: u64,
    /// Total packets generated in the measurement window.
    pub packets_offered: u64,
    /// Flits offered in the measurement window.
    pub flits_offered: u64,
    /// Nodes in the network.
    pub nodes: usize,
    /// Measured cycles.
    pub cycles: u64,
    /// Maximum observed packet latency.
    pub max_latency: u64,
}

impl Metrics {
    /// Records a delivered measured packet.
    pub fn record_delivery(&mut self, latency: u64, hops: u64, flits: usize) {
        self.packets += 1;
        self.latency_sum += latency;
        self.hop_sum += hops;
        self.flits_delivered += flits as u64;
        self.flit_hop_sum += hops * flits as u64;
        self.max_latency = self.max_latency.max(latency);
    }

    /// Records a generated measured packet.
    pub fn record_offered(&mut self, flits: usize) {
        self.packets_offered += 1;
        self.flits_offered += flits as u64;
    }

    /// Average packet latency in cycles (0 when nothing was delivered).
    pub fn avg_packet_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.packets as f64
        }
    }

    /// Average hop count per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.packets as f64
        }
    }

    /// Accepted throughput in flits/node/cycle.
    pub fn accepted_throughput(&self) -> f64 {
        if self.nodes == 0 || self.cycles == 0 {
            0.0
        } else {
            self.flits_delivered as f64 / (self.nodes as f64 * self.cycles as f64)
        }
    }

    /// Average flit-hops per node per cycle — the link/buffer activity
    /// factor that drives dynamic power.
    pub fn flit_hops_per_node_cycle(&self) -> f64 {
        if self.nodes == 0 || self.cycles == 0 {
            0.0
        } else {
            self.flit_hop_sum as f64 / (self.nodes as f64 * self.cycles as f64)
        }
    }

    /// Fraction of offered measured packets that were delivered (≤ 1; low
    /// values indicate saturation).
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_offered == 0 {
            1.0
        } else {
            self.packets as f64 / self.packets_offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut m = Metrics {
            nodes: 4,
            cycles: 100,
            ..Metrics::default()
        };
        m.record_offered(3);
        m.record_offered(1);
        m.record_delivery(10, 4, 3);
        m.record_delivery(20, 2, 1);
        assert_eq!(m.avg_packet_latency(), 15.0);
        assert_eq!(m.avg_hops(), 3.0);
        assert_eq!(m.accepted_throughput(), 4.0 / 400.0);
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.max_latency, 20);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.avg_packet_latency(), 0.0);
        assert_eq!(m.avg_hops(), 0.0);
        assert_eq!(m.accepted_throughput(), 0.0);
        assert_eq!(m.delivery_ratio(), 1.0);
    }
}
