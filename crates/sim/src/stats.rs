//! Measurement collection: latency, hop count, throughput, and tail
//! latency (percentiles over a fixed-bucket latency histogram).

use serde::{Deserialize, Serialize};

/// Latencies up to this many cycles are histogrammed exactly; anything
/// larger lands in one overflow bucket (tail percentiles falling there
/// are reported as [`Metrics::max_latency`]).
pub const LATENCY_HIST_MAX: u64 = 2047;

/// Bucket count: one per cycle `0..=LATENCY_HIST_MAX` plus overflow.
const LATENCY_HIST_BUCKETS: usize = LATENCY_HIST_MAX as usize + 2;

/// Aggregated measurements from one simulation run.
///
/// Only packets created inside the measurement window contribute to
/// latency/hop statistics; accepted throughput counts measured flits
/// delivered divided by (nodes × measured cycles).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of measured packets delivered.
    pub packets: u64,
    /// Sum of packet latencies (creation → tail delivery), cycles.
    pub latency_sum: u64,
    /// Sum of per-packet hop counts.
    pub hop_sum: u64,
    /// Measured flits delivered.
    pub flits_delivered: u64,
    /// Sum of flit-hops (per packet: hops × flits) — the activity measure
    /// driving dynamic power.
    pub flit_hop_sum: u64,
    /// Total packets generated in the measurement window.
    pub packets_offered: u64,
    /// Flits offered in the measurement window.
    pub flits_offered: u64,
    /// Nodes in the network.
    pub nodes: usize,
    /// Measured cycles.
    pub cycles: u64,
    /// Maximum observed packet latency.
    pub max_latency: u64,
    /// Latency histogram: `latency_hist[c]` counts measured packets with
    /// latency exactly `c` cycles (`c ≤` [`LATENCY_HIST_MAX`]); the last
    /// bucket counts everything larger. Preallocated by [`Metrics::new`]
    /// so recording stays allocation-free; empty until the first
    /// recorded delivery otherwise.
    pub latency_hist: Vec<u64>,
}

impl Metrics {
    /// Creates an empty `Metrics` for a run over `nodes` nodes and
    /// `cycles` measured cycles, with the latency histogram preallocated
    /// (so [`Metrics::record_delivery`] never allocates).
    pub fn new(nodes: usize, cycles: u64) -> Self {
        Metrics {
            nodes,
            cycles,
            latency_hist: vec![0; LATENCY_HIST_BUCKETS],
            ..Metrics::default()
        }
    }

    /// Records a delivered measured packet.
    pub fn record_delivery(&mut self, latency: u64, hops: u64, flits: usize) {
        self.packets += 1;
        self.latency_sum += latency;
        self.hop_sum += hops;
        self.flits_delivered += flits as u64;
        self.flit_hop_sum += hops * flits as u64;
        self.max_latency = self.max_latency.max(latency);
        if self.latency_hist.is_empty() {
            // Default-constructed metrics (tests, ad-hoc use): allocate on
            // first use. `Metrics::new` preallocates for the hot path.
            self.latency_hist = vec![0; LATENCY_HIST_BUCKETS];
        }
        let bucket = (latency.min(LATENCY_HIST_MAX + 1)) as usize;
        self.latency_hist[bucket] += 1;
    }

    /// Records a generated measured packet.
    pub fn record_offered(&mut self, flits: usize) {
        self.packets_offered += 1;
        self.flits_offered += flits as u64;
    }

    /// Average packet latency in cycles (0 when nothing was delivered).
    pub fn avg_packet_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.packets as f64
        }
    }

    /// Average hop count per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.packets as f64
        }
    }

    /// Accepted throughput in flits/node/cycle.
    pub fn accepted_throughput(&self) -> f64 {
        if self.nodes == 0 || self.cycles == 0 {
            0.0
        } else {
            self.flits_delivered as f64 / (self.nodes as f64 * self.cycles as f64)
        }
    }

    /// Average flit-hops per node per cycle — the link/buffer activity
    /// factor that drives dynamic power.
    pub fn flit_hops_per_node_cycle(&self) -> f64 {
        if self.nodes == 0 || self.cycles == 0 {
            0.0
        } else {
            self.flit_hop_sum as f64 / (self.nodes as f64 * self.cycles as f64)
        }
    }

    /// Fraction of offered measured packets that were delivered (≤ 1; low
    /// values indicate saturation).
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_offered == 0 {
            1.0
        } else {
            self.packets as f64 / self.packets_offered as f64
        }
    }

    /// The `p`-th latency percentile in cycles (nearest-rank method over
    /// the integer-cycle histogram), for `p` in `(0, 100]`. Returns 0 when
    /// nothing was delivered; percentiles falling in the histogram's
    /// overflow bucket report [`Metrics::max_latency`].
    pub fn latency_percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.packets == 0 {
            return 0;
        }
        // Nearest rank: the smallest latency whose cumulative count
        // reaches ⌈p/100 · N⌉.
        let rank = ((p / 100.0) * self.packets as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (latency, &count) in self.latency_hist.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return if latency as u64 > LATENCY_HIST_MAX {
                    self.max_latency
                } else {
                    latency as u64
                };
            }
        }
        self.max_latency
    }

    /// Median packet latency (cycles).
    pub fn p50_latency(&self) -> u64 {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile packet latency (cycles).
    pub fn p95_latency(&self) -> u64 {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile packet latency (cycles).
    pub fn p99_latency(&self) -> u64 {
        self.latency_percentile(99.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut m = Metrics {
            nodes: 4,
            cycles: 100,
            ..Metrics::default()
        };
        m.record_offered(3);
        m.record_offered(1);
        m.record_delivery(10, 4, 3);
        m.record_delivery(20, 2, 1);
        assert_eq!(m.avg_packet_latency(), 15.0);
        assert_eq!(m.avg_hops(), 3.0);
        assert_eq!(m.accepted_throughput(), 4.0 / 400.0);
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.max_latency, 20);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.avg_packet_latency(), 0.0);
        assert_eq!(m.avg_hops(), 0.0);
        assert_eq!(m.accepted_throughput(), 0.0);
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.p50_latency(), 0);
        assert_eq!(m.p99_latency(), 0);
    }

    #[test]
    fn percentiles_on_uniform_1_to_100() {
        // Latencies 1..=100, one packet each: nearest-rank percentiles are
        // exactly the percentile index.
        let mut m = Metrics::new(1, 1);
        for lat in 1..=100u64 {
            m.record_delivery(lat, 1, 1);
        }
        assert_eq!(m.p50_latency(), 50);
        assert_eq!(m.p95_latency(), 95);
        assert_eq!(m.p99_latency(), 99);
        assert_eq!(m.latency_percentile(100.0), 100);
        assert_eq!(m.latency_percentile(1.0), 1);
    }

    #[test]
    fn percentiles_on_skewed_distribution() {
        // 90 packets at 10 cycles, 9 at 100, 1 at 1000: p50/p90 sit in the
        // bulk, p95 in the second mode, p100 at the straggler.
        let mut m = Metrics::new(1, 1);
        for _ in 0..90 {
            m.record_delivery(10, 1, 1);
        }
        for _ in 0..9 {
            m.record_delivery(100, 1, 1);
        }
        m.record_delivery(1000, 1, 1);
        assert_eq!(m.p50_latency(), 10);
        assert_eq!(m.latency_percentile(90.0), 10);
        assert_eq!(m.p95_latency(), 100);
        assert_eq!(m.p99_latency(), 100);
        assert_eq!(m.latency_percentile(100.0), 1000);
    }

    #[test]
    fn overflow_bucket_reports_max_latency() {
        let mut m = Metrics::new(1, 1);
        m.record_delivery(LATENCY_HIST_MAX + 500, 1, 1);
        m.record_delivery(LATENCY_HIST_MAX + 900, 1, 1);
        assert_eq!(m.p50_latency(), LATENCY_HIST_MAX + 900);
        assert_eq!(m.max_latency, LATENCY_HIST_MAX + 900);
    }

    #[test]
    fn histogram_counts_every_delivery() {
        let mut m = Metrics::new(1, 1);
        for lat in [0u64, 1, 1, 7, LATENCY_HIST_MAX, LATENCY_HIST_MAX + 1] {
            m.record_delivery(lat, 1, 1);
        }
        let total: u64 = m.latency_hist.iter().sum();
        assert_eq!(total, m.packets);
        assert_eq!(m.latency_hist[1], 2);
        assert_eq!(m.latency_hist[LATENCY_HIST_MAX as usize + 1], 1);
    }
}
