//! Injection-rate sweeps and saturation detection (paper Figures 10 & 16).

use crate::config::SimConfig;
use crate::runner::{run_synthetic, Network};
use crate::stats::Metrics;
use crate::traffic::Pattern;
use serde::{Deserialize, Serialize};

/// One point of a latency-vs-injection curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load, flits/node/cycle.
    pub rate: f64,
    /// Average packet latency, cycles.
    pub latency: f64,
    /// Accepted throughput, flits/node/cycle.
    pub accepted: f64,
    /// Delivered / offered packets.
    pub delivery_ratio: f64,
}

/// A full sweep with the detected saturation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Measured points, in increasing rate order.
    pub points: Vec<SweepPoint>,
    /// The saturation throughput: the highest accepted rate before the
    /// saturation criterion fired (flits/node/cycle).
    pub saturation: f64,
    /// Zero-load (lowest-rate) average latency.
    pub zero_load_latency: f64,
}

/// Sweeps injection rate from `start` in steps of `step` (the paper uses
/// 0.005 for both), running a fresh network from `factory` at each rate,
/// until the network saturates or `max_rate` is reached.
///
/// Saturation criterion: average latency exceeding `latency_factor` × the
/// zero-load latency, or the delivery ratio dropping below 0.85 — the
/// conventional "network saturates" cutoff for latency-throughput curves.
#[allow(clippy::too_many_arguments)] // sweep knobs mirror the paper's sweep parameters 1:1
pub fn latency_sweep<N: Network>(
    mut factory: impl FnMut() -> N,
    pattern: Pattern,
    cfg: &SimConfig,
    start: f64,
    step: f64,
    max_rate: f64,
    latency_factor: f64,
    seed: u64,
) -> SweepResult {
    assert!(step > 0.0, "step must be positive");
    let mut points = Vec::new();
    let mut zero_load = None;
    let mut saturation = 0.0f64;
    let mut rate = start;
    while rate <= max_rate + 1e-12 {
        let mut net = factory();
        let m: Metrics = run_synthetic(&mut net, pattern, rate, cfg, seed);
        let point = SweepPoint {
            rate,
            latency: m.avg_packet_latency(),
            accepted: m.accepted_throughput(),
            delivery_ratio: m.delivery_ratio(),
        };
        let zl = *zero_load.get_or_insert(point.latency.max(1.0));
        let saturated = point.latency > latency_factor * zl || point.delivery_ratio < 0.85;
        points.push(point.clone());
        if saturated {
            break;
        }
        saturation = point.accepted;
        rate += step;
    }
    SweepResult {
        zero_load_latency: zero_load.unwrap_or(0.0),
        points,
        saturation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeshSim, RouterlessSim};
    use rlnoc_baselines::rec_topology;
    use rlnoc_topology::Grid;

    fn quick_cfg(data_flits: usize) -> SimConfig {
        SimConfig {
            warmup: 200,
            measure: 1_500,
            drain: 1_000,
            data_flits,
            ..SimConfig::default()
        }
    }

    #[test]
    fn sweep_terminates_and_orders_points() {
        let g = Grid::square(4).unwrap();
        let result = latency_sweep(
            || MeshSim::mesh2(g),
            Pattern::UniformRandom,
            &quick_cfg(3),
            0.02,
            0.04,
            0.5,
            4.0,
            1,
        );
        assert!(!result.points.is_empty());
        assert!(result.zero_load_latency > 0.0);
        for w in result.points.windows(2) {
            assert!(w[1].rate > w[0].rate);
        }
    }

    #[test]
    fn routerless_rec_beats_mesh2_at_8x8() {
        // The headline qualitative result (paper Figures 10/16): at sizes
        // where the mesh bisection binds, routerless saturates later and
        // starts lower. (At 4x4 a mesh's per-node bisection is so high the
        // two fabrics tie on throughput; the paper's gap appears at 8x8+.)
        let g = Grid::square(8).unwrap();
        let topo = rec_topology(g).unwrap();
        let mesh = latency_sweep(
            || MeshSim::mesh2(g),
            Pattern::UniformRandom,
            &quick_cfg(3),
            0.05,
            0.05,
            0.9,
            4.0,
            7,
        );
        let rless = latency_sweep(
            || RouterlessSim::new(&topo),
            Pattern::UniformRandom,
            &quick_cfg(5),
            0.05,
            0.05,
            0.9,
            4.0,
            7,
        );
        assert!(
            rless.saturation > mesh.saturation,
            "routerless {} vs mesh {}",
            rless.saturation,
            mesh.saturation
        );
        assert!(
            rless.zero_load_latency < mesh.zero_load_latency,
            "zero-load: routerless {} vs mesh {}",
            rless.zero_load_latency,
            mesh.zero_load_latency
        );
    }
}
