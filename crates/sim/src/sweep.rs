//! Injection-rate sweeps and saturation detection (paper Figures 10 & 16),
//! with a deterministic parallel execution engine.
//!
//! # Determinism contract
//!
//! Every sweep point is a *pure function* of `(factory, pattern, cfg,
//! rate, seed)`: the per-point RNG seed is derived with [`point_seed`]
//! from `(seed, pattern, rate)` via SplitMix64, never from thread
//! identity, scheduling order, or a shared RNG stream. Saturation is
//! detected by a serial scan ([`scan`]) over the points in rate order,
//! and the criterion for any point depends only on that point plus the
//! zero-load latency of point 0 — so evaluating points concurrently and
//! scanning afterwards yields bit-identical [`SweepResult`]s at any
//! thread count, including one (see the `parallel_matches_serial_*`
//! tests). The shared saturation cutoff the workers maintain is a
//! work-skipping optimisation only: it can never mark an index below the
//! first truly-saturated point, so every point the scan consumes is
//! always evaluated.

use crate::config::SimConfig;
use crate::runner::{run_synthetic, Network};
use crate::traffic::Pattern;
use rlnoc_telemetry::TelemetrySink;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64 mixing step (Steele et al., the `splitmix64` reference
/// finalizer). Used to derive independent per-point RNG seeds.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable small integer identifying a pattern for seed derivation.
fn pattern_id(pattern: Pattern) -> u64 {
    Pattern::ALL
        .iter()
        .position(|&p| p == pattern)
        .expect("Pattern::ALL covers every variant") as u64
}

/// The RNG seed for one sweep point, derived deterministically from the
/// sweep seed, the traffic pattern, and the injection rate. Chained
/// SplitMix64 finalizers decorrelate neighbouring rates and patterns so
/// every point draws from an independent stream regardless of which
/// thread (or how many threads) evaluates it.
pub fn point_seed(seed: u64, pattern: Pattern, rate: f64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed) ^ pattern_id(pattern)) ^ rate.to_bits())
}

/// One point of a latency-vs-injection curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load, flits/node/cycle.
    pub rate: f64,
    /// Average packet latency, cycles.
    pub latency: f64,
    /// Accepted throughput, flits/node/cycle.
    pub accepted: f64,
    /// Delivered / offered packets.
    pub delivery_ratio: f64,
    /// Median packet latency, cycles.
    pub p50: u64,
    /// 95th-percentile packet latency, cycles.
    pub p95: u64,
    /// 99th-percentile packet latency, cycles.
    pub p99: u64,
}

/// A full sweep with the detected saturation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Measured points, in increasing rate order.
    pub points: Vec<SweepPoint>,
    /// The saturation throughput: the highest accepted rate before the
    /// saturation criterion fired (flits/node/cycle).
    pub saturation: f64,
    /// Zero-load (lowest-rate) average latency.
    pub zero_load_latency: f64,
}

/// The knobs of one injection-rate sweep (the paper uses `start = step =
/// 0.005` and a 4× zero-load latency cutoff).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepParams {
    /// First injection rate, flits/node/cycle.
    pub start: f64,
    /// Rate increment between points.
    pub step: f64,
    /// Largest rate to consider.
    pub max_rate: f64,
    /// Saturation fires when latency exceeds this multiple of zero-load.
    pub latency_factor: f64,
    /// Base seed; per-point seeds derive from it via [`point_seed`].
    pub seed: u64,
}

impl SweepParams {
    /// The paper's sweep setup: 0.005 start/step up to 1.0, 4× cutoff.
    pub fn paper(seed: u64) -> Self {
        SweepParams {
            start: 0.005,
            step: 0.005,
            max_rate: 1.0,
            latency_factor: 4.0,
            seed,
        }
    }

    /// The candidate injection rates, in increasing order. Rates are
    /// computed as `start + i·step` (not by accumulation) so serial and
    /// parallel paths agree bit-for-bit on every rate.
    pub fn rates(&self) -> Vec<f64> {
        assert!(self.step > 0.0, "step must be positive");
        let mut rates = Vec::new();
        let mut i = 0u32;
        loop {
            let rate = self.start + f64::from(i) * self.step;
            if rate > self.max_rate + 1e-12 {
                break;
            }
            rates.push(rate);
            i += 1;
        }
        rates
    }
}

/// Runs one sweep point on a fresh network.
fn evaluate_point<N: Network>(
    net: &mut N,
    pattern: Pattern,
    cfg: &SimConfig,
    rate: f64,
    seed: u64,
) -> SweepPoint {
    let m = run_synthetic(net, pattern, rate, cfg, point_seed(seed, pattern, rate));
    SweepPoint {
        rate,
        latency: m.avg_packet_latency(),
        accepted: m.accepted_throughput(),
        delivery_ratio: m.delivery_ratio(),
        p50: m.p50_latency(),
        p95: m.p95_latency(),
        p99: m.p99_latency(),
    }
}

/// The saturation criterion: average latency exceeding `latency_factor` ×
/// the zero-load latency, or delivery ratio dropping below 0.85 — the
/// conventional cutoff for latency-throughput curves.
fn is_saturated(point: &SweepPoint, zero_load: f64, latency_factor: f64) -> bool {
    point.latency > latency_factor * zero_load || point.delivery_ratio < 0.85
}

/// The serial saturation scan shared by every execution path: consumes
/// points in rate order, stops pulling after the first saturated one.
/// Because serial and parallel sweeps funnel through this exact loop,
/// their results can only differ if the points themselves differ — and
/// they cannot (see the module-level determinism contract).
fn scan(points_in_order: impl Iterator<Item = SweepPoint>, latency_factor: f64) -> SweepResult {
    let mut points = Vec::new();
    let mut zero_load = None;
    let mut saturation = 0.0f64;
    for point in points_in_order {
        let zl = *zero_load.get_or_insert(point.latency.max(1.0));
        let saturated = is_saturated(&point, zl, latency_factor);
        points.push(point);
        if saturated {
            break;
        }
        saturation = point.accepted;
    }
    SweepResult {
        zero_load_latency: zero_load.unwrap_or(0.0),
        points,
        saturation,
    }
}

/// Sweeps injection rate from `start` in steps of `step`, running a fresh
/// network from `factory` at each rate, until the network saturates or
/// `max_rate` is reached. This is the serial reference implementation the
/// [`SweepEngine`] determinism tests compare against; it evaluates points
/// lazily so nothing past the saturation point is simulated.
#[allow(clippy::too_many_arguments)] // sweep knobs mirror the paper's sweep parameters 1:1
pub fn latency_sweep<N: Network>(
    mut factory: impl FnMut() -> N,
    pattern: Pattern,
    cfg: &SimConfig,
    start: f64,
    step: f64,
    max_rate: f64,
    latency_factor: f64,
    seed: u64,
) -> SweepResult {
    let params = SweepParams {
        start,
        step,
        max_rate,
        latency_factor,
        seed,
    };
    scan(
        params.rates().into_iter().map(|rate| {
            let mut net = factory();
            evaluate_point(&mut net, pattern, cfg, rate, seed)
        }),
        latency_factor,
    )
}

/// Shared per-sweep saturation tracking for the parallel workers. This is
/// purely a work-skipping optimisation: `cutoff` only ever holds indices
/// of points that genuinely satisfy the saturation criterion, so it is
/// always ≥ the first saturated index and skipping strictly-beyond-cutoff
/// tasks can never drop a point the final [`scan`] will consume.
struct JobState {
    /// Smallest point index observed (so far) to be saturated; starts at
    /// the point count, i.e. "none known".
    cutoff: AtomicUsize,
    /// Bit pattern of the zero-load latency from point 0; `u64::MAX` (a
    /// NaN payload) until point 0 completes. While still NaN the latency
    /// comparison in [`is_saturated`] is false, so only the seed-
    /// independent delivery-ratio criterion can advance the cutoff — a
    /// conservative under-approximation, still exact.
    zero_load_bits: AtomicU64,
}

impl JobState {
    fn new(points: usize) -> Self {
        JobState {
            cutoff: AtomicUsize::new(points),
            zero_load_bits: AtomicU64::new(u64::MAX),
        }
    }

    fn beyond_cutoff(&self, idx: usize) -> bool {
        idx > self.cutoff.load(Ordering::Acquire)
    }

    fn observe(&self, idx: usize, point: &SweepPoint, latency_factor: f64) {
        if idx == 0 {
            self.zero_load_bits
                .store(point.latency.max(1.0).to_bits(), Ordering::Release);
        }
        let zero_load = f64::from_bits(self.zero_load_bits.load(Ordering::Acquire));
        if is_saturated(point, zero_load, latency_factor) {
            self.cutoff.fetch_min(idx, Ordering::AcqRel);
        }
    }
}

/// One sweep in a heterogeneous [`SweepEngine::sweep_many`] batch: a
/// labelled fabric factory with its own pattern, config, and parameters.
pub struct SweepJob<'a> {
    /// Display label (fabric/pattern), carried through to callers.
    pub label: String,
    /// Traffic pattern to sweep.
    pub pattern: Pattern,
    /// Simulation config for this fabric.
    pub cfg: SimConfig,
    /// Sweep knobs (rates, cutoff, seed).
    pub params: SweepParams,
    factory: Box<dyn Fn() -> Box<dyn Network + 'a> + Send + Sync + 'a>,
}

impl std::fmt::Debug for SweepJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJob")
            .field("label", &self.label)
            .field("pattern", &self.pattern)
            .field("cfg", &self.cfg)
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl<'a> SweepJob<'a> {
    /// Wraps a concrete fabric factory into a batch job. Different jobs
    /// in one batch may build different network types.
    pub fn new<N: Network + 'a>(
        label: impl Into<String>,
        pattern: Pattern,
        cfg: SimConfig,
        params: SweepParams,
        factory: impl Fn() -> N + Send + Sync + 'a,
    ) -> Self {
        SweepJob {
            label: label.into(),
            pattern,
            cfg,
            params,
            factory: Box::new(move || Box::new(factory()) as Box<dyn Network + 'a>),
        }
    }
}

/// Deterministic parallel sweep executor over scoped worker threads.
///
/// Work is distributed from a shared atomic queue; results land in
/// per-point slots and are reduced by the same serial [`scan`] the
/// reference implementation uses, so the output is bit-identical at any
/// thread count (see the module-level determinism contract).
///
/// An engine optionally carries a [`TelemetrySink`]
/// ([`SweepEngine::with_telemetry`]); when live, every evaluated sweep
/// point records its rate/latency/throughput gauges and wall time. The
/// telemetry is observation-only — sweep results are unchanged by it.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    threads: usize,
    telemetry: TelemetrySink,
}

impl SweepEngine {
    /// An engine running `threads` workers (≥ 1), without telemetry.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "an engine needs at least one worker");
        SweepEngine {
            threads,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attaches a telemetry sink; per-point samples flow into it from
    /// every sweep this engine runs.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Evaluates one point, recording per-point telemetry when the
    /// engine's sink is live. With a disabled sink this is exactly
    /// [`evaluate_point`].
    fn traced_point<N: Network>(
        &self,
        net: &mut N,
        pattern: Pattern,
        cfg: &SimConfig,
        rate: f64,
        seed: u64,
    ) -> SweepPoint {
        if !self.telemetry.is_enabled() {
            return evaluate_point(net, pattern, cfg, rate, seed);
        }
        let mut rec = self.telemetry.recorder("sweep");
        rec.set_phase("sweep");
        let timer = rec.timer();
        let point = evaluate_point(net, pattern, cfg, rate, seed);
        rec.observe_timer("sweep.point_us", timer);
        rec.incr("sweep.points", 1);
        rec.gauge("sweep.rate", point.rate);
        rec.gauge("sweep.latency", point.latency);
        rec.gauge("sweep.throughput", point.accepted);
        rec.gauge("sweep.delivery_ratio", point.delivery_ratio);
        point
    }

    /// A single-worker engine (parallel code path, serial schedule).
    pub fn serial() -> Self {
        SweepEngine::new(1)
    }

    /// An engine sized to the machine's available parallelism.
    pub fn available() -> Self {
        SweepEngine::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates one rate list concurrently. Returns one slot per rate;
    /// a `None` slot was skipped because it lies strictly beyond an index
    /// already known to be saturated (and therefore past where the scan
    /// stops).
    fn evaluate_rates(
        &self,
        rates: &[f64],
        latency_factor: f64,
        eval: impl Fn(f64) -> SweepPoint + Sync,
    ) -> Vec<Option<SweepPoint>> {
        let n = rates.len();
        let slots: Vec<Mutex<Option<SweepPoint>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let state = JobState::new(n);
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..self.threads.min(n.max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if state.beyond_cutoff(i) {
                        continue;
                    }
                    let point = eval(rates[i]);
                    state.observe(i, &point, latency_factor);
                    *slots[i].lock().unwrap() = Some(point);
                });
            }
        })
        .expect("sweep worker panicked");
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap())
            .collect()
    }

    /// Runs one sweep, bit-identical to [`latency_sweep`] with the same
    /// arguments at any thread count.
    pub fn sweep<N: Network>(
        &self,
        factory: impl Fn() -> N + Sync,
        pattern: Pattern,
        cfg: &SimConfig,
        params: SweepParams,
    ) -> SweepResult {
        let rates = params.rates();
        let slots = self.evaluate_rates(&rates, params.latency_factor, |rate| {
            let mut net = factory();
            self.traced_point(&mut net, pattern, cfg, rate, params.seed)
        });
        scan(slots.into_iter().map_while(|p| p), params.latency_factor)
    }

    /// Runs a batch of heterogeneous sweeps (multi-pattern, multi-fabric)
    /// over one worker pool, returning one result per job in order. Tasks
    /// are interleaved by point index so every job's low-rate points — the
    /// ones that feed its saturation cutoff — are claimed early.
    pub fn sweep_many(&self, jobs: &[SweepJob<'_>]) -> Vec<SweepResult> {
        let rates: Vec<Vec<f64>> = jobs.iter().map(|j| j.params.rates()).collect();
        let max_points = rates.iter().map(Vec::len).max().unwrap_or(0);
        let mut tasks: Vec<(usize, usize)> = Vec::new();
        for point in 0..max_points {
            for (job, job_rates) in rates.iter().enumerate() {
                if point < job_rates.len() {
                    tasks.push((job, point));
                }
            }
        }
        let slots: Vec<Vec<Mutex<Option<SweepPoint>>>> = rates
            .iter()
            .map(|r| (0..r.len()).map(|_| Mutex::new(None)).collect())
            .collect();
        let states: Vec<JobState> = rates.iter().map(|r| JobState::new(r.len())).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..self.threads.min(tasks.len().max(1)) {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks.len() {
                        break;
                    }
                    let (j, i) = tasks[t];
                    if states[j].beyond_cutoff(i) {
                        continue;
                    }
                    let job = &jobs[j];
                    let mut net = (job.factory)();
                    let point = self.traced_point(
                        &mut net,
                        job.pattern,
                        &job.cfg,
                        rates[j][i],
                        job.params.seed,
                    );
                    states[j].observe(i, &point, job.params.latency_factor);
                    *slots[j][i].lock().unwrap() = Some(point);
                });
            }
        })
        .expect("sweep worker panicked");
        slots
            .into_iter()
            .zip(jobs)
            .map(|(row, job)| {
                scan(
                    row.into_iter().map_while(|slot| slot.into_inner().unwrap()),
                    job.params.latency_factor,
                )
            })
            .collect()
    }

    /// Adaptive sweep: a cheap serial *coarse* pass at every
    /// `coarse_stride`-th rate brackets the saturation point, then the
    /// remaining fine points inside the bracket are filled in parallel.
    /// Coarse points are cached and reused, and the final result comes
    /// from the same [`scan`] over the full fine grid — because the first
    /// fine saturated index can never exceed the first coarse saturated
    /// index, the result is bit-identical to [`latency_sweep`].
    pub fn adaptive_sweep<N: Network>(
        &self,
        factory: impl Fn() -> N + Sync,
        pattern: Pattern,
        cfg: &SimConfig,
        params: SweepParams,
        coarse_stride: usize,
    ) -> SweepResult {
        assert!(coarse_stride >= 1, "stride must be at least 1");
        let rates = params.rates();
        let n = rates.len();
        if n == 0 {
            return scan(std::iter::empty(), params.latency_factor);
        }
        let eval = |rate: f64| {
            let mut net = factory();
            self.traced_point(&mut net, pattern, cfg, rate, params.seed)
        };
        let mut cache: Vec<Option<SweepPoint>> = vec![None; n];
        let mut zero_load = f64::NAN;
        let mut bracket_end = n - 1;
        let mut i = 0;
        loop {
            let point = eval(rates[i]);
            if i == 0 {
                zero_load = point.latency.max(1.0);
            }
            let saturated = is_saturated(&point, zero_load, params.latency_factor);
            cache[i] = Some(point);
            if saturated {
                bracket_end = i;
                break;
            }
            if i == n - 1 {
                break;
            }
            i = (i + coarse_stride).min(n - 1);
        }
        let missing: Vec<usize> = (0..=bracket_end).filter(|&i| cache[i].is_none()).collect();
        let refined = self.map(&missing, |_, &i| eval(rates[i]));
        for (&i, point) in missing.iter().zip(refined) {
            cache[i] = Some(point);
        }
        scan(cache.into_iter().map_while(|p| p), params.latency_factor)
    }

    /// Applies `f` to every item on the worker pool, preserving input
    /// order in the output. The general fan-out primitive behind the
    /// benchmark binaries (independent per-benchmark / per-fabric runs).
    pub fn map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
        let n = items.len();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..self.threads.min(n.max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(i, &items[i]);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        })
        .expect("map worker panicked");
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every item is evaluated exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeshSim, RouterlessSim};
    use rlnoc_baselines::rec_topology;
    use rlnoc_topology::Grid;

    fn quick_cfg(data_flits: usize) -> SimConfig {
        SimConfig {
            warmup: 200,
            measure: 1_500,
            drain: 1_000,
            data_flits,
            ..SimConfig::default()
        }
    }

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            warmup: 100,
            measure: 500,
            drain: 400,
            data_flits: 3,
            ..SimConfig::default()
        }
    }

    fn tiny_params(seed: u64) -> SweepParams {
        SweepParams {
            start: 0.05,
            step: 0.1,
            max_rate: 0.65,
            latency_factor: 4.0,
            seed,
        }
    }

    #[test]
    fn splitmix64_matches_reference_vector() {
        // First outputs of the reference splitmix64 generator seeded 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(0x9E37_79B9_7F4A_7C15), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn point_seeds_decorrelate_inputs() {
        let base = point_seed(7, Pattern::UniformRandom, 0.1);
        assert_ne!(base, point_seed(8, Pattern::UniformRandom, 0.1));
        assert_ne!(base, point_seed(7, Pattern::Tornado, 0.1));
        assert_ne!(base, point_seed(7, Pattern::UniformRandom, 0.105));
        // Deterministic: same inputs, same seed.
        assert_eq!(base, point_seed(7, Pattern::UniformRandom, 0.1));
    }

    #[test]
    fn rates_are_index_based_not_accumulated() {
        let params = SweepParams {
            start: 0.005,
            step: 0.005,
            max_rate: 0.1,
            latency_factor: 4.0,
            seed: 0,
        };
        let rates = params.rates();
        assert_eq!(rates.len(), 20);
        for (i, &r) in rates.iter().enumerate() {
            assert_eq!(r, 0.005 + i as f64 * 0.005);
        }
    }

    #[test]
    fn sweep_terminates_and_orders_points() {
        let g = Grid::square(4).unwrap();
        let result = latency_sweep(
            || MeshSim::mesh2(g),
            Pattern::UniformRandom,
            &quick_cfg(3),
            0.02,
            0.04,
            0.5,
            4.0,
            1,
        );
        assert!(!result.points.is_empty());
        assert!(result.zero_load_latency > 0.0);
        for w in result.points.windows(2) {
            assert!(w[1].rate > w[0].rate);
        }
    }

    #[test]
    fn parallel_matches_serial_at_any_thread_count() {
        // Satellite (a): the same sweep must be bit-identical serially and
        // at 1, 2, and 8 worker threads.
        let g = Grid::square(4).unwrap();
        let cfg = tiny_cfg();
        let params = tiny_params(11);
        let serial = latency_sweep(
            || MeshSim::mesh2(g),
            Pattern::UniformRandom,
            &cfg,
            params.start,
            params.step,
            params.max_rate,
            params.latency_factor,
            params.seed,
        );
        for threads in [1, 2, 8] {
            let engine = SweepEngine::new(threads);
            let parallel = engine.sweep(|| MeshSim::mesh2(g), Pattern::UniformRandom, &cfg, params);
            assert_eq!(
                parallel, serial,
                "engine with {threads} threads diverged from the serial reference"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_on_routerless() {
        let g = Grid::square(4).unwrap();
        let topo = rec_topology(g).unwrap();
        let cfg = SimConfig {
            data_flits: 5,
            ..tiny_cfg()
        };
        let params = tiny_params(3);
        let serial = latency_sweep(
            || RouterlessSim::new(&topo),
            Pattern::Transpose,
            &cfg,
            params.start,
            params.step,
            params.max_rate,
            params.latency_factor,
            params.seed,
        );
        let parallel = SweepEngine::new(4).sweep(
            || RouterlessSim::new(&topo),
            Pattern::Transpose,
            &cfg,
            params,
        );
        assert_eq!(parallel, serial);
    }

    #[test]
    fn sweep_many_matches_individual_sweeps() {
        let g = Grid::square(4).unwrap();
        let topo = rec_topology(g).unwrap();
        let mesh_cfg = tiny_cfg();
        let rless_cfg = SimConfig {
            data_flits: 5,
            ..tiny_cfg()
        };
        let params = tiny_params(5);
        let jobs = vec![
            SweepJob::new(
                "mesh2/uniform",
                Pattern::UniformRandom,
                mesh_cfg.clone(),
                params,
                move || MeshSim::mesh2(g),
            ),
            SweepJob::new(
                "rless/tornado",
                Pattern::Tornado,
                rless_cfg.clone(),
                params,
                {
                    let topo = topo.clone();
                    move || RouterlessSim::new(&topo)
                },
            ),
        ];
        let batch = SweepEngine::new(2).sweep_many(&jobs);
        assert_eq!(batch.len(), 2);
        let mesh_alone = latency_sweep(
            || MeshSim::mesh2(g),
            Pattern::UniformRandom,
            &mesh_cfg,
            params.start,
            params.step,
            params.max_rate,
            params.latency_factor,
            params.seed,
        );
        let rless_alone = latency_sweep(
            || RouterlessSim::new(&topo),
            Pattern::Tornado,
            &rless_cfg,
            params.start,
            params.step,
            params.max_rate,
            params.latency_factor,
            params.seed,
        );
        assert_eq!(batch[0], mesh_alone);
        assert_eq!(batch[1], rless_alone);
    }

    #[test]
    fn adaptive_matches_plain_sweep() {
        let g = Grid::square(4).unwrap();
        let cfg = tiny_cfg();
        let params = tiny_params(9);
        let plain = latency_sweep(
            || MeshSim::mesh2(g),
            Pattern::UniformRandom,
            &cfg,
            params.start,
            params.step,
            params.max_rate,
            params.latency_factor,
            params.seed,
        );
        for stride in [1, 2, 3] {
            let adaptive = SweepEngine::new(2).adaptive_sweep(
                || MeshSim::mesh2(g),
                Pattern::UniformRandom,
                &cfg,
                params,
                stride,
            );
            assert_eq!(adaptive, plain, "stride {stride} diverged");
        }
    }

    #[test]
    fn map_preserves_order() {
        let engine = SweepEngine::new(4);
        let items: Vec<u64> = (0..23).collect();
        let out = engine.map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn routerless_rec_beats_mesh2_at_8x8() {
        // The headline qualitative result (paper Figures 10/16): at sizes
        // where the mesh bisection binds, routerless saturates later and
        // starts lower. (At 4x4 a mesh's per-node bisection is so high the
        // two fabrics tie on throughput; the paper's gap appears at 8x8+.)
        let g = Grid::square(8).unwrap();
        let topo = rec_topology(g).unwrap();
        let mesh = latency_sweep(
            || MeshSim::mesh2(g),
            Pattern::UniformRandom,
            &quick_cfg(3),
            0.05,
            0.05,
            0.9,
            4.0,
            7,
        );
        let rless = latency_sweep(
            || RouterlessSim::new(&topo),
            Pattern::UniformRandom,
            &quick_cfg(5),
            0.05,
            0.05,
            0.9,
            4.0,
            7,
        );
        assert!(
            rless.saturation > mesh.saturation,
            "routerless {} vs mesh {}",
            rless.saturation,
            mesh.saturation
        );
        assert!(
            rless.zero_load_latency < mesh.zero_load_latency,
            "zero-load: routerless {} vs mesh {}",
            rless.zero_load_latency,
            mesh.zero_load_latency
        );
    }
}
