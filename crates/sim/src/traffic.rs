//! Synthetic traffic patterns (paper §5): destination maps and a Bernoulli
//! packet generator at a configurable flit injection rate.

use crate::config::SimConfig;
use crate::packet::{Packet, PacketKind};
use rand::prelude::*;
use rand::rngs::StdRng;
use rlnoc_topology::{Grid, NodeId};
use serde::{Deserialize, Serialize};

/// The six synthetic patterns evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Every destination equally likely (excluding the source).
    UniformRandom,
    /// `(x, y) → (x + ⌈W/2⌉ mod W, y + ⌈H/2⌉ mod H)`.
    Tornado,
    /// Bit complement on the node index within a power-of-two-like space:
    /// `(x, y) → (W−1−x, H−1−y)`.
    BitComplement,
    /// Rotate the node-index bits right by one.
    BitRotation,
    /// Shuffle: rotate the node-index bits left by one.
    Shuffle,
    /// `(x, y) → (y, x)` (square grids; identity destinations re-draw
    /// uniformly).
    Transpose,
}

impl Pattern {
    /// All six patterns, in the paper's order.
    pub const ALL: [Pattern; 6] = [
        Pattern::UniformRandom,
        Pattern::Tornado,
        Pattern::BitComplement,
        Pattern::BitRotation,
        Pattern::Shuffle,
        Pattern::Transpose,
    ];

    /// The destination for a packet sourced at `src`, drawing from `rng`
    /// when the pattern is stochastic. Deterministic patterns that would
    /// map a node to itself fall back to a uniform draw so every node
    /// participates.
    pub fn dest(self, grid: &Grid, src: NodeId, rng: &mut StdRng) -> NodeId {
        let n = grid.len();
        let (w, h) = (grid.width(), grid.height());
        let (x, y) = grid.coord_of(src);
        let dst = match self {
            Pattern::UniformRandom => {
                let mut d = rng.gen_range(0..n);
                while d == src {
                    d = rng.gen_range(0..n);
                }
                return d;
            }
            Pattern::Tornado => grid.node_at((x + w.div_ceil(2)) % w, (y + h.div_ceil(2)) % h),
            Pattern::BitComplement => grid.node_at(w - 1 - x, h - 1 - y),
            Pattern::BitRotation => rotate_right(src, n),
            Pattern::Shuffle => rotate_left(src, n),
            Pattern::Transpose => {
                if grid.is_square() {
                    grid.node_at(y, x)
                } else {
                    src // fall through to the redraw below
                }
            }
        };
        if dst == src {
            let mut d = rng.gen_range(0..n);
            while d == src {
                d = rng.gen_range(0..n);
            }
            d
        } else {
            dst
        }
    }
}

/// Number of bits needed to index `n` nodes (`⌈log2 n⌉`).
fn index_bits(n: usize) -> u32 {
    usize::BITS - (n - 1).leading_zeros()
}

fn rotate_right(src: NodeId, n: usize) -> NodeId {
    let b = index_bits(n);
    let low = src & 1;
    let rotated = (src >> 1) | (low << (b - 1));
    rotated % n
}

fn rotate_left(src: NodeId, n: usize) -> NodeId {
    let b = index_bits(n);
    let high = (src >> (b - 1)) & 1;
    let rotated = ((src << 1) | high) & ((1 << b) - 1);
    rotated % n
}

/// Bernoulli packet generator: each cycle each node independently starts a
/// packet with probability `rate / mean_packet_flits`, so the offered load
/// in *flits*/node/cycle matches the paper's x-axes.
#[derive(Debug)]
pub struct TrafficGen {
    grid: Grid,
    pattern: Pattern,
    /// Offered load in flits/node/cycle.
    rate: f64,
    rng: StdRng,
    next_id: u64,
}

impl TrafficGen {
    /// Creates a generator for `grid` at `rate` flits/node/cycle.
    pub fn new(grid: Grid, pattern: Pattern, rate: f64, seed: u64) -> Self {
        TrafficGen {
            grid,
            pattern,
            rate,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// The offered load in flits/node/cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Generates this cycle's new packets (at most one per node),
    /// appending them to the caller-owned `out` buffer so steady-state
    /// generation allocates nothing. `measured` marks packets created
    /// inside the measurement window.
    pub fn generate_into(
        &mut self,
        cycle: u64,
        cfg: &SimConfig,
        measured: bool,
        out: &mut Vec<Packet>,
    ) {
        let p_packet = (self.rate / cfg.mean_packet_flits()).min(1.0);
        for src in self.grid.nodes() {
            if !self.rng.gen_bool(p_packet) {
                continue;
            }
            let dst = self.pattern.dest(&self.grid, src, &mut self.rng);
            let kind = if self.rng.gen_bool(cfg.control_fraction) {
                PacketKind::Control
            } else {
                PacketKind::Data
            };
            let flits = match kind {
                PacketKind::Control => cfg.control_flits,
                PacketKind::Data => cfg.data_flits,
            };
            out.push(Packet {
                id: self.next_id,
                src,
                dst,
                kind,
                flits,
                created: cycle,
                measured,
            });
            self.next_id += 1;
        }
    }

    /// This cycle's new packets as a fresh vector (allocating convenience
    /// over [`TrafficGen::generate_into`]).
    pub fn generate(&mut self, cycle: u64, cfg: &SimConfig, measured: bool) -> Vec<Packet> {
        let mut out = Vec::new();
        self.generate_into(cycle, cfg, measured, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid8() -> Grid {
        Grid::square(8).unwrap()
    }

    #[test]
    fn destinations_never_self() {
        let g = grid8();
        let mut rng = StdRng::seed_from_u64(0);
        for pattern in Pattern::ALL {
            for src in g.nodes() {
                for _ in 0..4 {
                    let d = pattern.dest(&g, src, &mut rng);
                    assert_ne!(d, src, "{pattern:?} mapped {src} to itself");
                    assert!(d < g.len());
                }
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let g = grid8();
        let mut rng = StdRng::seed_from_u64(0);
        let src = g.node_at(2, 5);
        assert_eq!(Pattern::Transpose.dest(&g, src, &mut rng), g.node_at(5, 2));
    }

    #[test]
    fn bit_complement_mirrors() {
        let g = grid8();
        let mut rng = StdRng::seed_from_u64(0);
        let src = g.node_at(1, 2);
        assert_eq!(
            Pattern::BitComplement.dest(&g, src, &mut rng),
            g.node_at(6, 5)
        );
    }

    #[test]
    fn tornado_shifts_half_way() {
        let g = grid8();
        let mut rng = StdRng::seed_from_u64(0);
        let src = g.node_at(0, 0);
        assert_eq!(Pattern::Tornado.dest(&g, src, &mut rng), g.node_at(4, 4));
    }

    #[test]
    fn rotation_patterns_permute() {
        // On a 64-node grid, bit rotation must be a permutation of 0..64.
        let g = grid8();
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = vec![false; g.len()];
        for src in g.nodes() {
            let d = Pattern::BitRotation.dest(&g, src, &mut rng);
            seen[d] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(
            covered > g.len() / 2,
            "rotation covers most nodes: {covered}"
        );
    }

    #[test]
    fn generator_rate_approximates_offered_load() {
        let g = grid8();
        let cfg = SimConfig::default();
        let mut gen = TrafficGen::new(g, Pattern::UniformRandom, 0.1, 42);
        let mut flits = 0usize;
        let cycles = 4_000u64;
        for c in 0..cycles {
            for p in gen.generate(c, &cfg, true) {
                flits += p.flits;
            }
        }
        let measured = flits as f64 / (cycles as f64 * g.len() as f64);
        assert!(
            (measured - 0.1).abs() < 0.01,
            "offered {measured} flits/node/cycle vs requested 0.1"
        );
    }

    #[test]
    fn generator_deterministic_per_seed() {
        let g = grid8();
        let cfg = SimConfig::default();
        let mut a = TrafficGen::new(g, Pattern::UniformRandom, 0.05, 7);
        let mut b = TrafficGen::new(g, Pattern::UniformRandom, 0.05, 7);
        for c in 0..50 {
            assert_eq!(a.generate(c, &cfg, false), b.generate(c, &cfg, false));
        }
    }
}
