//! Counting-allocator audit: once a simulation reaches steady state, the
//! per-cycle loop — packet generation, injection, fabric tick, delivery
//! drain, and metrics recording — must perform **zero** heap allocations
//! on either fabric. This pins the allocation-free kernel contract
//! (`Network::drain_deliveries` / `PacketSource::generate_into` plus the
//! persistent lane/scratch buffers) against regressions.
//!
//! The counter is thread-local, so the harness and any sibling threads
//! cannot pollute the measurement; the whole run is seeded and therefore
//! deterministic.

use rlnoc_baselines::rec_topology;
use rlnoc_sim::traffic::{Pattern, TrafficGen};
use rlnoc_sim::{Delivery, MeshSim, Metrics, Network, Packet, RouterlessSim, SimConfig};
use rlnoc_topology::Grid;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocations made by *this* thread.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations made by the current thread while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_COUNT.with(|c| c.get());
    let result = f();
    let after = ALLOC_COUNT.with(|c| c.get());
    (after - before, result)
}

/// Drives `net` exactly like `run_with_source`'s per-cycle loop. Warm-up
/// runs at `condition_rate` — *above* the measured rate — so every
/// internal buffer (node queues, assembly map, delivery vectors, the
/// driver's scratch buffers) reaches a capacity high-water mark that
/// dominates anything the measured phase can demand. Then the allocations
/// over `measured` cycles at `rate` are returned.
#[allow(clippy::too_many_arguments)]
fn steady_state_allocs<N: Network>(
    net: &mut N,
    pattern: Pattern,
    cfg: &SimConfig,
    condition_rate: f64,
    rate: f64,
    warmup: u64,
    measured: u64,
    seed: u64,
) -> u64 {
    assert!(condition_rate > rate, "warm-up must dominate measurement");
    let grid = *net.grid();
    let mut metrics = Metrics::new(grid.len(), measured);
    let mut fresh: Vec<Packet> = Vec::new();
    let mut delivered: Vec<Delivery> = Vec::new();
    let mut run = |cycles: std::ops::Range<u64>,
                   net: &mut N,
                   source: &mut TrafficGen,
                   metrics: &mut Metrics| {
        for cycle in cycles {
            fresh.clear();
            source.generate_into(cycle, cfg, true, &mut fresh);
            for &p in &fresh {
                metrics.record_offered(p.flits);
                net.offer(p);
            }
            net.tick(cycle);
            delivered.clear();
            net.drain_deliveries(&mut delivered);
            for d in &delivered {
                metrics.record_delivery(d.delivered - d.packet.created, d.hops, d.packet.flits);
            }
        }
    };
    let mut conditioner = TrafficGen::new(grid, pattern, condition_rate, seed);
    run(0..warmup, net, &mut conditioner, &mut metrics);
    // Drain the conditioning backlog so the measured phase starts from a
    // calm network: its per-cycle delivery bursts then sit far below the
    // high-water marks the saturated conditioning phase established.
    let mut cycle = warmup;
    let mut sink: Vec<Delivery> = Vec::new();
    while net.in_flight() > 0 && cycle < warmup + 50_000 {
        net.tick(cycle);
        sink.clear();
        net.drain_deliveries(&mut sink);
        cycle += 1;
    }
    assert_eq!(net.in_flight(), 0, "network failed to drain");
    let mut source = TrafficGen::new(grid, pattern, rate, seed + 1);
    let (allocs, ()) =
        allocations_during(|| run(cycle..cycle + measured, net, &mut source, &mut metrics));
    assert!(
        metrics.packets > 0,
        "audit must actually move traffic to be meaningful"
    );
    allocs
}

/// One test function on purpose: it is the only test in this binary, so
/// no sibling test thread runs concurrently and timings stay sequential.
#[test]
fn steady_state_cycles_allocate_nothing() {
    // Force thread-local slot initialisation outside the counted windows.
    ALLOC_COUNT.with(|c| c.get());

    let grid = Grid::square(8).unwrap();

    let rless_cfg = SimConfig::routerless();
    let topo = rec_topology(grid).unwrap();
    let mut rless = RouterlessSim::new(&topo);
    let allocs = steady_state_allocs(
        &mut rless,
        Pattern::UniformRandom,
        &rless_cfg,
        0.55,
        0.30,
        4_000,
        1_000,
        11,
    );
    assert_eq!(
        allocs, 0,
        "routerless steady-state cycles must not allocate"
    );

    let mesh_cfg = SimConfig::mesh();
    let mut mesh = MeshSim::mesh2(grid);
    let allocs = steady_state_allocs(
        &mut mesh,
        Pattern::UniformRandom,
        &mesh_cfg,
        0.45,
        0.20,
        4_000,
        1_000,
        13,
    );
    assert_eq!(allocs, 0, "mesh steady-state cycles must not allocate");
}
