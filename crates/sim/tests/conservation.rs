//! Property-based packet-conservation invariants: at every cycle, every
//! packet ever offered to a fabric is delivered, still in flight, or
//! (routerless only) counted unroutable — nothing is duplicated or lost.

use proptest::prelude::*;
use rlnoc_baselines::rec_topology;
use rlnoc_sim::traffic::{Pattern, TrafficGen};
use rlnoc_sim::{Delivery, FaultPlan, MeshSim, Network, Packet, RouterlessSim, SimConfig};
use rlnoc_topology::Grid;

fn pattern(idx: usize) -> Pattern {
    Pattern::ALL[idx % Pattern::ALL.len()]
}

/// Offers traffic for `cycles` cycles and checks the conservation
/// equation after every tick; returns (offered, delivered) for the final
/// sanity assertions. `unroutable` reads the fabric's drop counter.
/// (The vendored proptest reports failures as `String`s.)
fn check_conservation<N: Network>(
    net: &mut N,
    gen: &mut TrafficGen,
    cfg: &SimConfig,
    cycles: u64,
    unroutable: impl Fn(&N) -> u64,
) -> Result<(usize, usize), String> {
    let mut offered = 0usize;
    let mut delivered = 0usize;
    let mut fresh: Vec<Packet> = Vec::new();
    let mut drained: Vec<Delivery> = Vec::new();
    for cycle in 0..cycles {
        fresh.clear();
        gen.generate_into(cycle, cfg, false, &mut fresh);
        for &p in &fresh {
            offered += 1;
            net.offer(p);
        }
        net.tick(cycle);
        drained.clear();
        net.drain_deliveries(&mut drained);
        delivered += drained.len();
        prop_assert_eq!(
            offered,
            delivered + net.in_flight() + unroutable(net) as usize,
            "conservation broken at cycle {}",
            cycle
        );
    }
    Ok((offered, delivered))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Routerless: offered = delivered + in-flight + unroutable, every cycle.
    #[test]
    fn routerless_conserves_packets(
        pattern_idx in 0usize..6,
        rate in 0.02f64..0.6,
        seed in 0u64..1_000,
    ) {
        let grid = Grid::square(4).unwrap();
        let topo = rec_topology(grid).unwrap();
        let mut net = RouterlessSim::new(&topo);
        let cfg = SimConfig::routerless();
        let mut gen = TrafficGen::new(grid, pattern(pattern_idx), rate, seed);
        let (offered, delivered) =
            check_conservation(&mut net, &mut gen, &cfg, 400, |n| n.unroutable())?;
        prop_assert!(offered >= delivered);
    }

    /// Routerless under a tight ejection limit (deflections active): the
    /// same equation must hold — deflected flits stay in flight.
    #[test]
    fn routerless_conserves_packets_with_ejection_limit(
        rate in 0.05f64..0.6,
        seed in 0u64..1_000,
    ) {
        let grid = Grid::square(4).unwrap();
        let topo = rec_topology(grid).unwrap();
        let mut net = RouterlessSim::new(&topo);
        net.set_ejection_limit(Some(1));
        let cfg = SimConfig::routerless();
        let mut gen = TrafficGen::new(grid, Pattern::UniformRandom, rate, seed);
        check_conservation(&mut net, &mut gen, &cfg, 400, |n| n.unroutable())?;
    }

    /// Mesh: offered = delivered + in-flight, every cycle (XY routing on a
    /// full mesh reaches every destination, so nothing is unroutable).
    #[test]
    fn mesh_conserves_packets(
        pattern_idx in 0usize..6,
        rate in 0.02f64..0.6,
        seed in 0u64..1_000,
        delay in 0u64..3,
    ) {
        let grid = Grid::square(4).unwrap();
        let mut net = MeshSim::new(grid, delay, 8);
        let cfg = SimConfig::mesh();
        let mut gen = TrafficGen::new(grid, pattern(pattern_idx), rate, seed);
        let (offered, delivered) =
            check_conservation(&mut net, &mut gen, &cfg, 400, |_| 0)?;
        prop_assert!(offered >= delivered);
    }

    /// Routerless under mid-run loop kills: every offered packet is
    /// delivered, in flight, unroutable, or condemned by a fault — the
    /// accounting extends, it never leaks.
    #[test]
    fn routerless_conserves_packets_under_faults(
        pattern_idx in 0usize..6,
        rate in 0.05f64..0.6,
        seed in 0u64..1_000,
        kills in 1usize..3,
        kill_at in 20u64..200,
        fault_seed in 0u64..1_000,
    ) {
        let grid = Grid::square(4).unwrap();
        let topo = rec_topology(grid).unwrap();
        let num_loops = topo.loops().len();
        let mut plan = FaultPlan::random_loop_kills(kill_at, kills, num_loops, fault_seed);
        plan.stall_injection(0, kill_at + 10, kill_at + 60);
        let mut net = RouterlessSim::with_faults(&topo, plan);
        let cfg = SimConfig::routerless();
        let mut gen = TrafficGen::new(grid, pattern(pattern_idx), rate, seed);
        let (offered, _) = check_conservation(&mut net, &mut gen, &cfg, 400, |n| {
            n.unroutable() + n.dropped_by_fault()
        })?;
        prop_assert!(offered > 0);
    }

    /// Mesh under mid-run link kills: offered = delivered + in-flight +
    /// dropped_by_fault, every cycle, including mid-wormhole severing.
    #[test]
    fn mesh_conserves_packets_under_faults(
        pattern_idx in 0usize..6,
        rate in 0.05f64..0.6,
        seed in 0u64..1_000,
        delay in 0u64..3,
        kill_at in 20u64..200,
        link_idx in 0usize..4,
    ) {
        let grid = Grid::square(4).unwrap();
        let mut plan = FaultPlan::new();
        // Kill one interior link (both directions) picked by link_idx, so
        // some pairs reroute and some packets sever mid-wormhole.
        let (ax, ay, bx, by) = [(1, 1, 2, 1), (1, 1, 1, 2), (2, 2, 2, 1), (0, 1, 1, 1)][link_idx];
        let a = grid.node_at(ax, ay);
        let b = grid.node_at(bx, by);
        plan.kill_mesh_link(kill_at, a, b);
        plan.kill_mesh_link(kill_at, b, a);
        let mut net = MeshSim::with_faults(grid, delay, 8, plan);
        let cfg = SimConfig::mesh();
        let mut gen = TrafficGen::new(grid, pattern(pattern_idx), rate, seed);
        check_conservation(&mut net, &mut gen, &cfg, 400, |n| n.dropped_by_fault())?;
    }
}
