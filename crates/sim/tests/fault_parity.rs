//! The two headline fault-injection contracts:
//!
//! 1. **Zero-fault bit-identity** — a sim built `with_faults` on an empty
//!    [`FaultPlan`] must produce `Metrics` bit-identical to the plain
//!    construction on both fabrics (the fault hooks are behavioural
//!    no-ops until an event fires).
//! 2. **Faulted sweep determinism** — a sweep whose factory builds
//!    faulted sims is bit-identical between the serial reference and the
//!    parallel engine at 1, 2, and 8 threads.

use rlnoc_baselines::rec_topology;
use rlnoc_sim::sweep::{latency_sweep, SweepEngine, SweepParams};
use rlnoc_sim::traffic::Pattern;
use rlnoc_sim::{run_synthetic, FaultPlan, MeshSim, RouterlessSim, SimConfig};
use rlnoc_topology::Grid;

fn quick_cfg(data_flits: usize) -> SimConfig {
    SimConfig {
        warmup: 150,
        measure: 900,
        drain: 700,
        data_flits,
        ..SimConfig::default()
    }
}

#[test]
fn zero_fault_plan_is_bit_identical_on_routerless() {
    let topo = rec_topology(Grid::square(4).unwrap()).unwrap();
    let cfg = quick_cfg(5);
    for (pattern, rate, seed) in [
        (Pattern::UniformRandom, 0.05, 3u64),
        (Pattern::Tornado, 0.15, 9),
        (Pattern::Transpose, 0.30, 42),
    ] {
        let plain = run_synthetic(&mut RouterlessSim::new(&topo), pattern, rate, &cfg, seed);
        let faulted = run_synthetic(
            &mut RouterlessSim::with_faults(&topo, FaultPlan::new()),
            pattern,
            rate,
            &cfg,
            seed,
        );
        assert_eq!(
            plain, faulted,
            "empty fault plan diverged ({pattern:?} @ {rate})"
        );
    }
}

#[test]
fn zero_fault_plan_is_bit_identical_on_mesh() {
    let g = Grid::square(4).unwrap();
    let cfg = quick_cfg(3);
    for (delay, rate, seed) in [(0u64, 0.05, 1u64), (1, 0.20, 7), (2, 0.35, 13)] {
        let plain = run_synthetic(
            &mut MeshSim::new(g, delay, 8),
            Pattern::UniformRandom,
            rate,
            &cfg,
            seed,
        );
        let faulted = run_synthetic(
            &mut MeshSim::with_faults(g, delay, 8, FaultPlan::new()),
            Pattern::UniformRandom,
            rate,
            &cfg,
            seed,
        );
        assert_eq!(plain, faulted, "empty fault plan diverged (delay {delay})");
    }
}

/// The CI `fault-smoke` determinism check: a *faulted* routerless sweep
/// (two loops killed mid-warm-up) is bit-identical between the serial
/// reference and the parallel engine at 1, 2, and 8 worker threads.
#[test]
fn faulted_sweep_is_deterministic_across_thread_counts() {
    let topo = rec_topology(Grid::square(4).unwrap()).unwrap();
    let num_loops = topo.loops().len();
    let plan = FaultPlan::random_loop_kills(50, 2, num_loops, 77);
    let cfg = SimConfig {
        warmup: 100,
        measure: 500,
        drain: 400,
        data_flits: 5,
        ..SimConfig::default()
    };
    let params = SweepParams {
        start: 0.05,
        step: 0.1,
        max_rate: 0.65,
        latency_factor: 4.0,
        seed: 21,
    };
    let factory = || RouterlessSim::with_faults(&topo, plan.clone());
    let serial = latency_sweep(
        factory,
        Pattern::UniformRandom,
        &cfg,
        params.start,
        params.step,
        params.max_rate,
        params.latency_factor,
        params.seed,
    );
    assert!(!serial.points.is_empty());
    for threads in [1, 2, 8] {
        let parallel =
            SweepEngine::new(threads).sweep(factory, Pattern::UniformRandom, &cfg, params);
        assert_eq!(
            parallel, serial,
            "faulted sweep diverged at {threads} threads"
        );
    }
}

#[test]
fn faulted_mesh_sweep_is_deterministic_across_thread_counts() {
    let g = Grid::square(4).unwrap();
    let mut plan = FaultPlan::new();
    plan.kill_mesh_link(60, g.node_at(1, 1), g.node_at(2, 1));
    plan.stall_injection(g.node_at(0, 0), 100, 160);
    let cfg = SimConfig {
        warmup: 100,
        measure: 500,
        drain: 400,
        data_flits: 3,
        ..SimConfig::default()
    };
    let params = SweepParams {
        start: 0.05,
        step: 0.15,
        max_rate: 0.5,
        latency_factor: 4.0,
        seed: 5,
    };
    let factory = || MeshSim::with_faults(g, 1, 8, plan.clone());
    let serial = latency_sweep(
        factory,
        Pattern::UniformRandom,
        &cfg,
        params.start,
        params.step,
        params.max_rate,
        params.latency_factor,
        params.seed,
    );
    for threads in [1, 2, 8] {
        let parallel =
            SweepEngine::new(threads).sweep(factory, Pattern::UniformRandom, &cfg, params);
        assert_eq!(
            parallel, serial,
            "faulted mesh sweep diverged at {threads} threads"
        );
    }
}
