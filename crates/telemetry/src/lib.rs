//! Run telemetry for the rlnoc workspace: typed counters, gauges, and
//! histograms recorded by per-thread [`Recorder`]s and published into a
//! shared [`TelemetrySink`] for JSONL/CSV export.
//!
//! # Design contract
//!
//! - **Zero overhead when disabled.** A disabled [`Recorder`] is a `None`
//!   behind one pointer-sized `Option`; every instrumentation call is a
//!   single branch, performs no allocation, and never reads the clock
//!   (verified by the counting-allocator test in `tests/disabled_alloc.rs`).
//! - **Observation only.** Instrumentation never feeds back into the code
//!   it observes: enabled and disabled runs of the simulator and explorer
//!   produce bit-identical results (asserted by the workspace-level
//!   golden-trace tests).
//! - **Lock-free hot path.** Each thread accumulates into its own
//!   [`Recorder`]; the shared sink mutex is only taken at explicit
//!   [`Recorder::flush`] points (phase and run boundaries), never per
//!   sample.
//! - **Commutative merges.** Counter, gauge, and histogram state merges
//!   are order-independent (counters and histogram buckets add; min/max
//!   compose), so concurrent recorders can flush in any interleaving and
//!   the sink totals equal the serial reduction (property-tested in
//!   `tests/merge_props.rs`).
//!
//! # JSONL schema
//!
//! Each exported line is one object with fixed field names and types:
//!
//! ```json
//! {"ts_us":12,"source":"worker0","phase":"explore","kind":"counter","name":"explore.cycles","value":8}
//! {"ts_us":13,"source":"sim","phase":"sim","kind":"gauge","name":"sim.calendar_occupancy","count":1,"sum":0.25,"min":0.25,"max":0.25}
//! {"ts_us":14,"source":"sim","phase":"sim","kind":"hist","name":"sim.packet_latency","count":90,"sum":2700,"min":12,"max":61,"p50":28,"p95":55,"p99":60}
//! ```
//!
//! `ts_us` values are strictly increasing across the whole sink (flush
//! time, microseconds since sink creation, tie-broken by `+1`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod metrics;
mod recorder;
pub mod report;
mod sink;

pub use metrics::{GaugeStat, Histogram, RecorderState, HIST_BUCKETS};
pub use recorder::{Recorder, Span, Timer};
pub use sink::{Event, EventValue, TelemetryConfig, TelemetrySink};
