//! Mergeable metric primitives: power-of-two histograms, gauge summaries,
//! and the per-recorder state map that holds them.
//!
//! Everything here merges *commutatively*: counters and histogram buckets
//! add, gauge/histogram `min`/`max` compose, and the state map keeps its
//! entries sorted by metric name, so any merge order over a set of states
//! produces the same result as applying every sample to a single state.

/// Number of histogram buckets: one for zero plus one per bit length.
pub const HIST_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram over `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i >= 1` holds values with bit
/// length `i` (i.e. `2^(i-1) ..= 2^i - 1`). Exact `count`/`sum`/`min`/`max`
/// are tracked alongside, so means are exact and percentiles are accurate
/// to a power-of-two bucket (clamped into `[min, max]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64; HIST_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; HIST_BUCKETS]),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += n;
    }

    /// Builds a histogram from a linear count array where `counts[v]` is
    /// the number of samples with value exactly `v` (the layout used by
    /// the simulator's latency histogram).
    pub fn from_linear_counts(counts: &[u64]) -> Self {
        let mut h = Histogram::new();
        for (value, &n) in counts.iter().enumerate() {
            h.record_n(value as u64, n);
        }
        h
    }

    /// Adds all of `other`'s samples into `self` (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile, resolved to the upper bound of the bucket
    /// holding the ranked sample and clamped into `[min, max]`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Running summary of a gauge (a sampled `f64` level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Default for GaugeStat {
    fn default() -> Self {
        GaugeStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl GaugeStat {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds all of `other`'s observations into `self`.
    pub fn merge(&mut self, other: &GaugeStat) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The metric state accumulated by one recorder between flushes: named
/// counters, gauges, and histograms, each kept sorted by name so that the
/// representation (and therefore equality) is canonical regardless of the
/// order in which metrics were first touched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecorderState {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, GaugeStat)>,
    hists: Vec<(&'static str, Histogram)>,
}

fn slot<'a, T: Default>(entries: &'a mut Vec<(&'static str, T)>, name: &'static str) -> &'a mut T {
    let idx = match entries.binary_search_by(|(n, _)| n.cmp(&name)) {
        Ok(i) => i,
        Err(i) => {
            entries.insert(i, (name, T::default()));
            i
        }
    };
    &mut entries[idx].1
}

fn lookup<'a, T>(entries: &'a [(&'static str, T)], name: &str) -> Option<&'a T> {
    entries
        .binary_search_by(|(n, _)| (*n).cmp(name))
        .ok()
        .map(|i| &entries[i].1)
}

impl RecorderState {
    /// Creates an empty state.
    pub fn new() -> Self {
        RecorderState::default()
    }

    /// Adds `by` to the named counter.
    pub fn incr(&mut self, name: &'static str, by: u64) {
        *slot(&mut self.counters, name) += by;
    }

    /// Observes a gauge sample.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        slot(&mut self.gauges, name).observe(value);
    }

    /// Records one histogram sample.
    pub fn record(&mut self, name: &'static str, value: u64) {
        slot(&mut self.hists, name).record(value);
    }

    /// Records `n` identical histogram samples.
    pub fn record_n(&mut self, name: &'static str, value: u64, n: u64) {
        slot(&mut self.hists, name).record_n(value, n);
    }

    /// Merges a whole pre-built histogram into the named histogram.
    pub fn merge_hist(&mut self, name: &'static str, hist: &Histogram) {
        slot(&mut self.hists, name).merge(hist);
    }

    /// Merges all of `other` into `self` (commutative and associative for
    /// counters and histograms; gauge float sums are commutative but, as
    /// with any float accumulation, only approximately associative).
    pub fn merge(&mut self, other: &RecorderState) {
        for &(name, v) in &other.counters {
            self.incr(name, v);
        }
        for (name, g) in &other.gauges {
            slot(&mut self.gauges, name).merge(g);
        }
        for (name, h) in &other.hists {
            slot(&mut self.hists, name).merge(h);
        }
    }

    /// Current value of the named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        lookup(&self.counters, name).copied().unwrap_or(0)
    }

    /// Summary of the named gauge, if observed.
    pub fn gauge_stat(&self, name: &str) -> Option<&GaugeStat> {
        lookup(&self.gauges, name)
    }

    /// The named histogram, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        lookup(&self.hists, name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &[(&'static str, GaugeStat)] {
        &self.gauges
    }

    /// All histograms, sorted by name.
    pub fn hists(&self) -> &[(&'static str, Histogram)] {
        &self.hists
    }

    /// True when no metric has been touched since the last clear.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Drops all accumulated state (capacity retained).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        // p50 rank is 50, which lands in the 32..=63 bucket -> upper 63.
        assert_eq!(h.percentile(50.0), 63);
        // p99 rank is 99, in the 64..=127 bucket, clamped to max 100.
        assert_eq!(h.percentile(99.0), 100);
        assert_eq!(h.percentile(0.0), 1);
    }

    #[test]
    fn histogram_from_linear_counts_matches_manual() {
        let counts = [0u64, 3, 0, 2, 1];
        let h = Histogram::from_linear_counts(&counts);
        let mut m = Histogram::new();
        for _ in 0..3 {
            m.record(1);
        }
        for _ in 0..2 {
            m.record(3);
        }
        m.record(4);
        assert_eq!(h, m);
    }

    #[test]
    fn state_merge_is_order_independent() {
        let mut a = RecorderState::new();
        a.incr("x", 2);
        a.record("h", 7);
        let mut b = RecorderState::new();
        b.incr("y", 1);
        b.incr("x", 3);
        b.record("h", 9);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 5);
        assert_eq!(ab.hist("h").unwrap().count(), 2);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
