//! Per-thread metric recorders and scoped timers.
//!
//! A [`Recorder`] is either *live* (owns a private [`RecorderState`] plus a
//! handle to the shared sink) or *disabled* (`None`; every call is one
//! branch, no allocation, no clock read). Live recorders accumulate
//! lock-free and only take the sink mutex at [`Recorder::flush`].

use crate::metrics::{Histogram, RecorderState};
use crate::sink::SinkShared;
use std::sync::Arc;
use std::time::Instant;

/// Default phase label for recorders that never call [`Recorder::set_phase`].
const DEFAULT_PHASE: &str = "run";

#[derive(Debug)]
struct Inner {
    sink: Arc<SinkShared>,
    source: String,
    phase: &'static str,
    state: RecorderState,
}

/// A per-thread metric recorder.
///
/// Obtain one from [`TelemetrySink::recorder`](crate::TelemetrySink::recorder);
/// the sink decides whether it is live or a no-op. Dropping a live recorder
/// flushes any unpublished state.
#[derive(Debug)]
pub struct Recorder {
    inner: Option<Box<Inner>>,
}

impl Recorder {
    /// A recorder whose every operation is a no-op.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    pub(crate) fn live(sink: Arc<SinkShared>, source: String) -> Self {
        Recorder {
            inner: Some(Box::new(Inner {
                sink,
                source,
                phase: DEFAULT_PHASE,
                state: RecorderState::new(),
            })),
        }
    }

    /// True when samples are actually collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the phase label for subsequently recorded metrics. Flushes any
    /// pending state first so earlier samples keep their phase.
    pub fn set_phase(&mut self, phase: &'static str) {
        if self.inner.is_some() {
            self.flush();
            if let Some(inner) = &mut self.inner {
                inner.phase = phase;
            }
        }
    }

    /// The current phase label (`"run"` by default; `""` when disabled).
    pub fn phase(&self) -> &'static str {
        match &self.inner {
            Some(inner) => inner.phase,
            None => "",
        }
    }

    /// Adds `by` to the named counter.
    pub fn incr(&mut self, name: &'static str, by: u64) {
        if let Some(inner) = &mut self.inner {
            inner.state.incr(name, by);
        }
    }

    /// Observes a gauge sample.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.state.gauge(name, value);
        }
    }

    /// Records one histogram sample.
    pub fn record(&mut self, name: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner.state.record(name, value);
        }
    }

    /// Records `n` identical histogram samples.
    pub fn record_n(&mut self, name: &'static str, value: u64, n: u64) {
        if let Some(inner) = &mut self.inner {
            inner.state.record_n(name, value, n);
        }
    }

    /// Merges a pre-built histogram into the named histogram.
    pub fn merge_hist(&mut self, name: &'static str, hist: &Histogram) {
        if let Some(inner) = &mut self.inner {
            inner.state.merge_hist(name, hist);
        }
    }

    /// Starts a timer. On a disabled recorder the clock is never read and
    /// the returned timer is inert.
    pub fn timer(&self) -> Timer {
        if self.inner.is_some() {
            Timer {
                start: Some(Instant::now()),
            }
        } else {
            Timer::inert()
        }
    }

    /// Records the elapsed microseconds of a started [`Timer`] into the
    /// named histogram. Inert timers (from disabled recorders) are ignored.
    pub fn observe_timer(&mut self, name: &'static str, timer: Timer) {
        if let (Some(inner), Some(start)) = (&mut self.inner, timer.start) {
            inner.state.record(name, start.elapsed().as_micros() as u64);
        }
    }

    /// Scoped timer: records elapsed microseconds into `name` when the
    /// returned guard drops. The recorder is mutably borrowed for the
    /// span's lifetime; use [`Recorder::timer`]/[`Recorder::observe_timer`]
    /// when other metrics must be recorded inside the timed region.
    pub fn span(&mut self, name: &'static str) -> Span<'_> {
        let timer = self.timer();
        Span {
            recorder: self,
            name,
            timer,
        }
    }

    /// A read-only view of the unflushed state (None when disabled).
    pub fn state(&self) -> Option<&RecorderState> {
        self.inner.as_ref().map(|inner| &inner.state)
    }

    /// Publishes accumulated state to the sink as timestamped events and
    /// clears it. No-op when disabled or when nothing was recorded.
    pub fn flush(&mut self) {
        if let Some(inner) = &mut self.inner {
            if !inner.state.is_empty() {
                inner
                    .sink
                    .publish(&inner.source, inner.phase, &mut inner.state);
            }
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A started (or inert) stopwatch; see [`Recorder::timer`].
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Option<Instant>,
}

impl Timer {
    /// A timer that never records anything.
    pub fn inert() -> Self {
        Timer { start: None }
    }

    /// True when this timer actually read the clock at creation.
    pub fn is_started(&self) -> bool {
        self.start.is_some()
    }
}

/// Guard returned by [`Recorder::span`]; records on drop.
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a mut Recorder,
    name: &'static str,
    timer: Timer,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.recorder.observe_timer(self.name, self.timer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    #[test]
    fn disabled_recorder_is_inert() {
        let mut rec = Recorder::disabled();
        rec.incr("c", 1);
        rec.gauge("g", 1.0);
        rec.record("h", 1);
        let t = rec.timer();
        assert!(!t.is_started());
        rec.observe_timer("t", t);
        assert!(rec.state().is_none());
        rec.flush();
    }

    #[test]
    fn span_records_on_drop() {
        let sink = TelemetrySink::enabled();
        let mut rec = sink.recorder("t");
        {
            let _span = rec.span("op_us");
        }
        rec.flush();
        assert_eq!(sink.hist_total("op_us").unwrap().count(), 1);
    }

    #[test]
    fn set_phase_splits_flushes() {
        let sink = TelemetrySink::enabled();
        let mut rec = sink.recorder("t");
        rec.incr("c", 1);
        rec.set_phase("late");
        rec.incr("c", 2);
        drop(rec);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, "run");
        assert_eq!(events[1].phase, "late");
        assert_eq!(sink.counter_total("c"), 3);
    }
}
