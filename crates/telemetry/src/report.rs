//! Offline rendering of a telemetry JSONL export into per-phase summary
//! tables (the `telemetry_report` bench binary is a thin wrapper over
//! this module).

use crate::metrics::GaugeStat;
use crate::sink::{Event, EventValue};

/// Summary of one phase's metrics, in first-appearance order.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// The phase label events were recorded under.
    pub phase: String,
    /// One aggregated row per metric name.
    pub rows: Vec<SummaryRow>,
}

/// One metric aggregated across all events and sources within a phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Metric name.
    pub name: String,
    /// Schema kind (`counter`, `gauge`, or `hist`).
    pub kind: String,
    /// Number of events folded into this row.
    pub events: u64,
    /// Pooled sample/observation count (counters: summed value).
    pub count: u64,
    /// Pooled mean (gauges and histograms; counters repeat the total).
    pub mean: f64,
    /// Pooled minimum.
    pub min: f64,
    /// Pooled maximum.
    pub max: f64,
    /// Count-weighted p50 across histogram events (0 otherwise).
    pub p50: f64,
    /// Count-weighted p95 across histogram events (0 otherwise).
    pub p95: f64,
    /// Count-weighted p99 across histogram events (0 otherwise).
    pub p99: f64,
}

/// Parses a JSONL export (skipping blank lines) with strict per-line
/// schema validation; the error names the offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

#[derive(Default)]
struct RowAcc {
    kind: String,
    events: u64,
    counter_total: u64,
    gauge: GaugeStat,
    hist_count: u64,
    hist_sum: u64,
    hist_min: u64,
    hist_max: u64,
    // Count-weighted percentile sums; exact per-event percentiles are not
    // recoverable from summaries, so pooled percentiles are approximate.
    p50_w: f64,
    p95_w: f64,
    p99_w: f64,
}

/// Groups events by phase (first-appearance order) and aggregates each
/// metric name within the phase across sources and flushes.
pub fn summarize(events: &[Event]) -> Vec<PhaseSummary> {
    let mut phases: Vec<(String, Vec<(String, RowAcc)>)> = Vec::new();
    for event in events {
        let phase_rows = match phases.iter_mut().find(|(p, _)| *p == event.phase) {
            Some((_, rows)) => rows,
            None => {
                phases.push((event.phase.clone(), Vec::new()));
                &mut phases.last_mut().expect("just pushed").1
            }
        };
        let acc = match phase_rows.iter_mut().find(|(n, _)| *n == event.name) {
            Some((_, acc)) => acc,
            None => {
                phase_rows.push((event.name.clone(), RowAcc::default()));
                &mut phase_rows.last_mut().expect("just pushed").1
            }
        };
        acc.kind = event.value.kind().to_string();
        acc.events += 1;
        match &event.value {
            EventValue::Counter { value } => acc.counter_total += value,
            EventValue::Gauge {
                count,
                sum,
                min,
                max,
            } => acc.gauge.merge(&GaugeStat {
                count: *count,
                sum: *sum,
                min: *min,
                max: *max,
            }),
            EventValue::Hist {
                count,
                sum,
                min,
                max,
                p50,
                p95,
                p99,
            } => {
                if *count > 0 {
                    if acc.hist_count == 0 {
                        acc.hist_min = *min;
                        acc.hist_max = *max;
                    } else {
                        acc.hist_min = acc.hist_min.min(*min);
                        acc.hist_max = acc.hist_max.max(*max);
                    }
                    acc.hist_count += count;
                    acc.hist_sum += sum;
                    acc.p50_w += *p50 as f64 * *count as f64;
                    acc.p95_w += *p95 as f64 * *count as f64;
                    acc.p99_w += *p99 as f64 * *count as f64;
                }
            }
        }
    }
    phases
        .into_iter()
        .map(|(phase, rows)| PhaseSummary {
            phase,
            rows: rows
                .into_iter()
                .map(|(name, acc)| finish_row(name, acc))
                .collect(),
        })
        .collect()
}

fn finish_row(name: String, acc: RowAcc) -> SummaryRow {
    match acc.kind.as_str() {
        "counter" => SummaryRow {
            name,
            kind: acc.kind,
            events: acc.events,
            count: acc.counter_total,
            mean: acc.counter_total as f64,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        },
        "gauge" => SummaryRow {
            name,
            kind: acc.kind,
            events: acc.events,
            count: acc.gauge.count,
            mean: acc.gauge.mean(),
            min: if acc.gauge.count == 0 {
                0.0
            } else {
                acc.gauge.min
            },
            max: if acc.gauge.count == 0 {
                0.0
            } else {
                acc.gauge.max
            },
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        },
        _ => {
            let n = acc.hist_count as f64;
            let w = |x: f64| if acc.hist_count == 0 { 0.0 } else { x / n };
            SummaryRow {
                name,
                kind: acc.kind,
                events: acc.events,
                count: acc.hist_count,
                mean: w(acc.hist_sum as f64),
                min: acc.hist_min as f64,
                max: acc.hist_max as f64,
                p50: w(acc.p50_w),
                p95: w(acc.p95_w),
                p99: w(acc.p99_w),
            }
        }
    }
}

/// Totals of the resilience layer's counters across every phase and
/// source — the health summary an unattended run is judged by (rendered by
/// the `exp_chaos` experiment and checked by the CI chaos-smoke job).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceSummary {
    /// `anomaly.total`: numerical anomalies detected and handled.
    pub anomalies: u64,
    /// `anomaly.rollbacks`: anomalies that required a parameter rollback.
    pub rollbacks: u64,
    /// `worker.panics`: worker panics caught.
    pub panics: u64,
    /// `worker.respawns`: panicked workers respawned in place.
    pub respawns: u64,
    /// `worker.quarantined`: workers retired after persistent anomalies.
    pub quarantined: u64,
    /// `worker.lost`: workers lost past the respawn budget.
    pub workers_lost: u64,
    /// `watchdog.stalls_detected`: deadline overruns flagged.
    pub stalls_detected: u64,
    /// `watchdog.stalls_recovered`: stalls cancelled cooperatively.
    pub stalls_recovered: u64,
    /// `checkpoint.recovered_prev`: resumes served from `.prev` after a
    /// torn or corrupt primary.
    pub checkpoint_recoveries: u64,
}

impl ResilienceSummary {
    /// Whether the run saw no faults at all (every counter zero) — the
    /// case the bit-identity contract guarantees matched pre-resilience
    /// behavior exactly.
    pub fn clean(&self) -> bool {
        *self == ResilienceSummary::default()
    }
}

/// Folds the resilience layer's counters out of an event stream (any
/// phase, any source). Unrelated events are ignored.
pub fn resilience_summary(events: &[Event]) -> ResilienceSummary {
    let mut out = ResilienceSummary::default();
    for event in events {
        let EventValue::Counter { value } = event.value else {
            continue;
        };
        match event.name.as_str() {
            "anomaly.total" => out.anomalies += value,
            "anomaly.rollbacks" => out.rollbacks += value,
            "worker.panics" => out.panics += value,
            "worker.respawns" => out.respawns += value,
            "worker.quarantined" => out.quarantined += value,
            "worker.lost" => out.workers_lost += value,
            "watchdog.stalls_detected" => out.stalls_detected += value,
            "watchdog.stalls_recovered" => out.stalls_recovered += value,
            "checkpoint.recovered_prev" => out.checkpoint_recoveries += value,
            _ => {}
        }
    }
    out
}

fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Renders summaries as aligned per-phase text tables.
pub fn render(summaries: &[PhaseSummary]) -> String {
    let headers = [
        "name", "kind", "events", "count", "mean", "min", "max", "p50", "p95", "p99",
    ];
    let mut out = String::new();
    for summary in summaries {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for r in &summary.rows {
            rows.push(vec![
                r.name.clone(),
                r.kind.clone(),
                r.events.to_string(),
                r.count.to_string(),
                fmt_num(r.mean),
                fmt_num(r.min),
                fmt_num(r.max),
                fmt_num(r.p50),
                fmt_num(r.p95),
                fmt_num(r.p99),
            ]);
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        out.push_str(&format!("phase: {}\n", summary.phase));
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
        out.push_str(&format!("  {}\n", line(&header_cells)));
        for row in &rows {
            out.push_str(&format!("  {}\n", line(row)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    #[test]
    fn parse_summarize_render_round_trip() {
        let sink = TelemetrySink::enabled();
        let mut a = sink.recorder("a");
        a.set_phase("explore");
        a.incr("cycles", 3);
        a.record("steps", 5);
        a.record("steps", 7);
        drop(a);
        let mut b = sink.recorder("b");
        b.set_phase("explore");
        b.incr("cycles", 2);
        drop(b);

        let events = parse_jsonl(&sink.to_jsonl()).expect("parses");
        assert_eq!(events.len(), 3);
        let summaries = summarize(&events);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].phase, "explore");
        let cycles = summaries[0]
            .rows
            .iter()
            .find(|r| r.name == "cycles")
            .expect("cycles row");
        assert_eq!(cycles.count, 5);
        assert_eq!(cycles.events, 2);
        let rendered = render(&summaries);
        assert!(rendered.contains("phase: explore"));
        assert!(rendered.contains("cycles"));
        assert!(rendered.contains("steps"));
    }

    #[test]
    fn resilience_summary_folds_counters_and_ignores_noise() {
        let sink = TelemetrySink::enabled();
        let mut a = sink.recorder("supervisor");
        a.incr("anomaly.total", 3);
        a.incr("anomaly.rollbacks", 1);
        a.incr("worker.panics", 2);
        a.incr("worker.respawns", 2);
        a.incr("watchdog.stalls_detected", 1);
        a.incr("explore.cycles", 50); // unrelated counter
        a.record("explore.steps", 5); // unrelated histogram
        drop(a);
        let mut b = sink.recorder("checkpoint");
        b.incr("checkpoint.recovered_prev", 1);
        drop(b);

        let events = parse_jsonl(&sink.to_jsonl()).expect("parses");
        let summary = resilience_summary(&events);
        assert_eq!(summary.anomalies, 3);
        assert_eq!(summary.rollbacks, 1);
        assert_eq!(summary.panics, 2);
        assert_eq!(summary.respawns, 2);
        assert_eq!(summary.stalls_detected, 1);
        assert_eq!(summary.stalls_recovered, 0);
        assert_eq!(summary.quarantined, 0);
        assert_eq!(summary.workers_lost, 0);
        assert_eq!(summary.checkpoint_recoveries, 1);
        assert!(!summary.clean());
        assert!(resilience_summary(&[]).clean());
    }

    #[test]
    fn parse_rejects_bad_lines_with_line_numbers() {
        let err = parse_jsonl("\n{\"nope\":1}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
