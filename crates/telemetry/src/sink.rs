//! The shared telemetry sink: collects flushed recorder state as timestamped
//! [`Event`]s, keeps commutative run totals, and exports JSONL/CSV.

use crate::metrics::{GaugeStat, Histogram, RecorderState};
use crate::recorder::Recorder;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Whether instrumentation is active for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// True to collect telemetry; false compiles every instrumentation
    /// call down to a single branch.
    pub enabled: bool,
}

impl TelemetryConfig {
    /// Telemetry off: recorders are no-ops (the default).
    pub fn disabled() -> Self {
        TelemetryConfig { enabled: false }
    }

    /// Telemetry on: recorders accumulate and flush into the sink.
    pub fn enabled() -> Self {
        TelemetryConfig { enabled: true }
    }
}

/// One flushed metric snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since sink creation, strictly increasing across the
    /// whole sink (ties broken by `+1`).
    pub ts_us: u64,
    /// The recorder that produced the event (e.g. `worker0`, `sim`).
    pub source: String,
    /// Run phase the recorder was in when the metric accumulated.
    pub phase: String,
    /// Metric name (e.g. `explore.cycles`).
    pub name: String,
    /// Metric payload.
    pub value: EventValue,
}

/// The typed payload of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// A monotonic count accumulated since the recorder's last flush.
    Counter {
        /// The counter delta.
        value: u64,
    },
    /// A sampled level, summarized.
    Gauge {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Smallest observation.
        min: f64,
        /// Largest observation.
        max: f64,
    },
    /// A distribution of `u64` samples, summarized.
    Hist {
        /// Number of samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Smallest sample.
        min: u64,
        /// Largest sample.
        max: u64,
        /// Median (nearest rank, bucket-resolved).
        p50: u64,
        /// 95th percentile.
        p95: u64,
        /// 99th percentile.
        p99: u64,
    },
}

impl EventValue {
    /// The schema `kind` tag: `counter`, `gauge`, or `hist`.
    pub fn kind(&self) -> &'static str {
        match self {
            EventValue::Counter { .. } => "counter",
            EventValue::Gauge { .. } => "gauge",
            EventValue::Hist { .. } => "hist",
        }
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl Serialize for Event {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("ts_us", Value::UInt(self.ts_us)),
            ("source", Value::Str(self.source.clone())),
            ("phase", Value::Str(self.phase.clone())),
            ("kind", Value::Str(self.value.kind().to_string())),
            ("name", Value::Str(self.name.clone())),
        ];
        match &self.value {
            EventValue::Counter { value } => fields.push(("value", Value::UInt(*value))),
            EventValue::Gauge {
                count,
                sum,
                min,
                max,
            } => {
                fields.push(("count", Value::UInt(*count)));
                fields.push(("sum", Value::Float(*sum)));
                fields.push(("min", Value::Float(*min)));
                fields.push(("max", Value::Float(*max)));
            }
            EventValue::Hist {
                count,
                sum,
                min,
                max,
                p50,
                p95,
                p99,
            } => {
                fields.push(("count", Value::UInt(*count)));
                fields.push(("sum", Value::UInt(*sum)));
                fields.push(("min", Value::UInt(*min)));
                fields.push(("max", Value::UInt(*max)));
                fields.push(("p50", Value::UInt(*p50)));
                fields.push(("p95", Value::UInt(*p95)));
                fields.push(("p99", Value::UInt(*p99)));
            }
        }
        obj(fields)
    }
}

fn need_str(value: &Value, key: &str) -> Result<String, serde::Error> {
    value
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| serde::Error::custom(format!("missing or non-string field `{key}`")))
}

fn need_u64(value: &Value, key: &str) -> Result<u64, serde::Error> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| serde::Error::custom(format!("missing or non-integer field `{key}`")))
}

fn need_f64(value: &Value, key: &str) -> Result<f64, serde::Error> {
    value
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| serde::Error::custom(format!("missing or non-number field `{key}`")))
}

impl Deserialize for Event {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", value))?;
        let kind = need_str(value, "kind")?;
        let (payload, extra): (EventValue, &[&str]) = match kind.as_str() {
            "counter" => (
                EventValue::Counter {
                    value: need_u64(value, "value")?,
                },
                &["value"],
            ),
            "gauge" => (
                EventValue::Gauge {
                    count: need_u64(value, "count")?,
                    sum: need_f64(value, "sum")?,
                    min: need_f64(value, "min")?,
                    max: need_f64(value, "max")?,
                },
                &["count", "sum", "min", "max"],
            ),
            "hist" => (
                EventValue::Hist {
                    count: need_u64(value, "count")?,
                    sum: need_u64(value, "sum")?,
                    min: need_u64(value, "min")?,
                    max: need_u64(value, "max")?,
                    p50: need_u64(value, "p50")?,
                    p95: need_u64(value, "p95")?,
                    p99: need_u64(value, "p99")?,
                },
                &["count", "sum", "min", "max", "p50", "p95", "p99"],
            ),
            other => {
                return Err(serde::Error::custom(format!(
                    "unknown event kind `{other}`"
                )))
            }
        };
        for (key, _) in fields {
            let known = matches!(key.as_str(), "ts_us" | "source" | "phase" | "kind" | "name")
                || extra.contains(&key.as_str());
            if !known {
                return Err(serde::Error::custom(format!(
                    "unexpected field `{key}` for kind `{kind}`"
                )));
            }
        }
        Ok(Event {
            ts_us: need_u64(value, "ts_us")?,
            source: need_str(value, "source")?,
            phase: need_str(value, "phase")?,
            name: need_str(value, "name")?,
            value: payload,
        })
    }
}

impl Event {
    /// Renders the event as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("event serialization is infallible")
    }

    /// Parses one JSONL line, strictly validating the schema (exact field
    /// set and types for the event's `kind`).
    pub fn from_json_line(line: &str) -> Result<Event, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }

    /// Renders the event as one CSV row matching [`TelemetrySink::write_csv`]'s
    /// header (`ts_us,source,phase,kind,name,value,count,sum,min,max,p50,p95,p99`).
    pub fn to_csv_row(&self) -> String {
        let mut cols: Vec<String> = vec![
            self.ts_us.to_string(),
            self.source.clone(),
            self.phase.clone(),
            self.value.kind().to_string(),
            self.name.clone(),
        ];
        match &self.value {
            EventValue::Counter { value } => {
                cols.push(value.to_string());
                cols.resize(13, String::new());
            }
            EventValue::Gauge {
                count,
                sum,
                min,
                max,
            } => {
                cols.push(String::new());
                cols.push(count.to_string());
                cols.push(format!("{sum}"));
                cols.push(format!("{min}"));
                cols.push(format!("{max}"));
                cols.resize(13, String::new());
            }
            EventValue::Hist {
                count,
                sum,
                min,
                max,
                p50,
                p95,
                p99,
            } => {
                cols.push(String::new());
                cols.push(count.to_string());
                cols.push(sum.to_string());
                cols.push(min.to_string());
                cols.push(max.to_string());
                cols.push(p50.to_string());
                cols.push(p95.to_string());
                cols.push(p99.to_string());
            }
        }
        cols.join(",")
    }
}

pub(crate) struct SinkShared {
    start: Instant,
    state: Mutex<SinkState>,
}

impl fmt::Debug for SinkShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkShared").finish_non_exhaustive()
    }
}

#[derive(Default)]
struct SinkState {
    last_ts: u64,
    events: Vec<Event>,
    totals: RecorderState,
}

impl SinkShared {
    /// Converts a recorder's accumulated state into timestamped events and
    /// folds it into the run totals; clears `state` afterwards.
    pub(crate) fn publish(&self, source: &str, phase: &'static str, state: &mut RecorderState) {
        let raw = self.start.elapsed().as_micros() as u64;
        let mut st = self.state.lock().expect("telemetry sink poisoned");
        let push = |st: &mut SinkState, name: &'static str, value: EventValue| {
            let ts = raw.max(st.last_ts + 1);
            st.last_ts = ts;
            st.events.push(Event {
                ts_us: ts,
                source: source.to_string(),
                phase: phase.to_string(),
                name: name.to_string(),
                value,
            });
        };
        for &(name, value) in state.counters() {
            push(&mut st, name, EventValue::Counter { value });
        }
        for &(name, g) in state.gauges() {
            push(
                &mut st,
                name,
                EventValue::Gauge {
                    count: g.count,
                    sum: g.sum,
                    min: g.min,
                    max: g.max,
                },
            );
        }
        for (name, h) in state.hists() {
            push(
                &mut st,
                name,
                EventValue::Hist {
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.percentile(50.0),
                    p95: h.percentile(95.0),
                    p99: h.percentile(99.0),
                },
            );
        }
        st.totals.merge(state);
        state.clear();
    }
}

/// Handle to a run's telemetry collection point. Cheap to clone (an `Arc`
/// when enabled, a `None` when disabled); every component of a run shares
/// one sink and draws per-thread [`Recorder`]s from it.
#[derive(Clone, Default)]
pub struct TelemetrySink {
    shared: Option<Arc<SinkShared>>,
}

impl fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetrySink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TelemetrySink {
    /// A sink that collects nothing; its recorders are no-ops.
    pub fn disabled() -> Self {
        TelemetrySink { shared: None }
    }

    /// A live sink collecting events from its recorders.
    pub fn enabled() -> Self {
        TelemetrySink::new(TelemetryConfig::enabled())
    }

    /// Builds a sink from a [`TelemetryConfig`].
    pub fn new(config: TelemetryConfig) -> Self {
        if config.enabled {
            TelemetrySink {
                shared: Some(Arc::new(SinkShared {
                    start: Instant::now(),
                    state: Mutex::new(SinkState::default()),
                })),
            }
        } else {
            TelemetrySink::disabled()
        }
    }

    /// True when this sink collects telemetry.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Creates a recorder publishing into this sink under `source`. On a
    /// disabled sink this allocates nothing and returns a no-op recorder.
    pub fn recorder(&self, source: &str) -> Recorder {
        match &self.shared {
            Some(shared) => Recorder::live(Arc::clone(shared), source.to_string()),
            None => Recorder::disabled(),
        }
    }

    /// Snapshot of all flushed events, in timestamp order.
    pub fn events(&self) -> Vec<Event> {
        match &self.shared {
            Some(shared) => shared
                .state
                .lock()
                .expect("telemetry sink poisoned")
                .events
                .clone(),
            None => Vec::new(),
        }
    }

    /// Commutative totals over every flushed recorder state.
    pub fn totals(&self) -> RecorderState {
        match &self.shared {
            Some(shared) => shared
                .state
                .lock()
                .expect("telemetry sink poisoned")
                .totals
                .clone(),
            None => RecorderState::new(),
        }
    }

    /// Total of the named counter across all sources (0 when absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.totals().counter(name)
    }

    /// Summary of the named gauge across all sources.
    pub fn gauge_total(&self, name: &str) -> Option<GaugeStat> {
        self.totals().gauge_stat(name).copied()
    }

    /// Merged histogram for the named metric across all sources.
    pub fn hist_total(&self, name: &str) -> Option<Histogram> {
        self.totals().hist(name).cloned()
    }

    /// Renders all flushed events as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL export to `path`, creating parent directories.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_file(path.as_ref(), self.to_jsonl().as_bytes())
    }

    /// Writes a CSV export (fixed 13-column header; counter rows fill
    /// `value`, gauge/hist rows fill the summary columns) to `path`.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut out =
            String::from("ts_us,source,phase,kind,name,value,count,sum,min,max,p50,p95,p99\n");
        for event in self.events() {
            out.push_str(&event.to_csv_row());
            out.push('\n');
        }
        write_file(path.as_ref(), out.as_bytes())
    }
}

fn write_file(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_jsonl() {
        let sink = TelemetrySink::enabled();
        let mut rec = sink.recorder("t");
        rec.set_phase("phase1");
        rec.incr("c", 3);
        rec.gauge("g", 1.5);
        rec.record("h", 10);
        rec.flush();
        let text = sink.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let parsed = Event::from_json_line(line).expect("line parses");
            assert_eq!(parsed.to_json_line(), *line);
        }
    }

    #[test]
    fn timestamps_strictly_increase() {
        let sink = TelemetrySink::enabled();
        for i in 0..4 {
            let mut rec = sink.recorder("t");
            rec.incr("c", i + 1);
            rec.flush();
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        for pair in events.windows(2) {
            assert!(pair[0].ts_us < pair[1].ts_us);
        }
        assert_eq!(sink.counter_total("c"), 1 + 2 + 3 + 4);
    }

    #[test]
    fn strict_schema_rejects_malformed_lines() {
        assert!(Event::from_json_line("{}").is_err());
        assert!(Event::from_json_line(
            r#"{"ts_us":1,"source":"s","phase":"p","kind":"counter","name":"n","value":-3}"#
        )
        .is_err());
        assert!(Event::from_json_line(
            r#"{"ts_us":1,"source":"s","phase":"p","kind":"counter","name":"n","value":3,"bogus":1}"#
        )
        .is_err());
        assert!(Event::from_json_line(
            r#"{"ts_us":1,"source":"s","phase":"p","kind":"counter","name":"n","value":3}"#
        )
        .is_ok());
    }

    #[test]
    fn disabled_sink_produces_nothing() {
        let sink = TelemetrySink::disabled();
        let mut rec = sink.recorder("t");
        rec.incr("c", 1);
        rec.flush();
        assert!(sink.events().is_empty());
        assert!(sink.to_jsonl().is_empty());
        assert_eq!(sink.counter_total("c"), 0);
    }
}
