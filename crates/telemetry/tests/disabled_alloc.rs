//! Counting-allocator audit of the disabled-mode contract: every
//! instrumentation call on a disabled sink/recorder must perform **zero**
//! heap allocations (and never read the clock — inert timers are how we
//! observe that here: a disabled recorder's timer is not started).
//!
//! One test function on purpose (mirroring `rlnoc-sim`'s audit): it is the
//! only test in this binary, so no sibling test thread pollutes the
//! thread-local counter.

use rlnoc_telemetry::{Recorder, TelemetryConfig, TelemetrySink};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocations made by *this* thread.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations made by the current thread while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_COUNT.with(|c| c.get());
    let result = f();
    let after = ALLOC_COUNT.with(|c| c.get());
    (after - before, result)
}

#[test]
fn disabled_telemetry_allocates_nothing() {
    // Force thread-local slot initialisation outside the counted windows.
    ALLOC_COUNT.with(|c| c.get());

    let (allocs, sink) = allocations_during(|| TelemetrySink::new(TelemetryConfig::disabled()));
    assert_eq!(allocs, 0, "building a disabled sink must not allocate");
    assert!(!sink.is_enabled());

    let (allocs, mut rec) = allocations_during(|| sink.recorder("hot-path-source"));
    assert_eq!(allocs, 0, "drawing a disabled recorder must not allocate");
    assert!(!rec.is_enabled());

    let (allocs, ()) = allocations_during(|| {
        for i in 0..10_000u64 {
            rec.incr("sim.packets_injected", 1);
            rec.gauge("sim.calendar_occupancy", i as f64);
            rec.record("sim.packet_latency", i);
            rec.record_n("sim.flits", i, 3);
            let t = rec.timer();
            assert!(!t.is_started(), "disabled timer must never read the clock");
            rec.observe_timer("sim.cycle_us", t);
            {
                let _span = rec.span("sim.tick_us");
            }
            rec.set_phase("drain");
            rec.flush();
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled instrumentation calls must be allocation-free no-ops"
    );

    let (allocs, ()) = allocations_during(|| {
        let standalone = Recorder::disabled();
        assert!(!standalone.is_enabled());
        drop(standalone);
        drop(rec);
    });
    assert_eq!(allocs, 0, "dropping disabled recorders must not allocate");
}
