//! Property tests for the commutative-merge contract: partition an
//! arbitrary event sequence across simulated threads, merge the per-thread
//! states in an arbitrary order, and the merged counter/histogram state
//! must equal the serial reduction of the whole sequence.

use proptest::prelude::*;
use rlnoc_telemetry::{RecorderState, TelemetrySink};

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One recorded sample: which metric, which kind, and the value.
#[derive(Debug, Clone, Copy)]
struct Op {
    name: &'static str,
    kind: u8,
    value: u64,
}

fn apply(state: &mut RecorderState, op: Op) {
    match op.kind {
        0 => state.incr(op.name, op.value),
        1 => state.record(op.name, op.value),
        _ => state.gauge(op.name, op.value as f64),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..NAMES.len(), 0..3u8, 0..1_000_000u64).prop_map(|(n, kind, value)| Op {
        name: NAMES[n],
        kind,
        value,
    })
}

/// Deterministic permutation of `0..n` driven by a seed (splitmix64-based
/// Fisher-Yates), standing in for an arbitrary merge order.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interleaved_merges_equal_serial_reduction(
        ops in prop::collection::vec(op_strategy(), 0..200),
        threads in prop::collection::vec(0..4usize, 0..200),
        perm_seed in any::<u64>(),
    ) {
        // Serial reduction: every op applied to one state in order.
        let mut serial = RecorderState::new();
        for &op in &ops {
            apply(&mut serial, op);
        }

        // Interleaved: each op goes to its assigned thread's local state
        // (ops beyond the assignment vector round-robin), then the thread
        // states merge in an arbitrary order.
        let mut locals = [
            RecorderState::new(),
            RecorderState::new(),
            RecorderState::new(),
            RecorderState::new(),
        ];
        for (i, &op) in ops.iter().enumerate() {
            let t = threads.get(i).copied().unwrap_or(i % locals.len());
            apply(&mut locals[t], op);
        }
        let mut merged = RecorderState::new();
        for t in permutation(locals.len(), perm_seed) {
            merged.merge(&locals[t]);
        }

        // Counters and histograms are exactly order-independent.
        prop_assert_eq!(merged.counters(), serial.counters());
        prop_assert_eq!(merged.hists(), serial.hists());
        // Gauges: counts and extrema are exact; float sums are commutative
        // but only approximately associative, so compare with tolerance.
        prop_assert_eq!(merged.gauges().len(), serial.gauges().len());
        for ((mn, mg), (sn, sg)) in merged.gauges().iter().zip(serial.gauges()) {
            prop_assert_eq!(mn, sn);
            prop_assert_eq!(mg.count, sg.count);
            prop_assert_eq!(mg.min, sg.min);
            prop_assert_eq!(mg.max, sg.max);
            let tol = 1e-9 * sg.sum.abs().max(1.0);
            prop_assert!((mg.sum - sg.sum).abs() <= tol);
        }
    }
}

/// Real threads, real sink: concurrent recorders flushing in whatever
/// order the scheduler produces must leave sink totals equal to the
/// serial reduction.
#[test]
fn concurrent_recorder_flushes_match_serial_totals() {
    let sink = TelemetrySink::enabled();
    let threads = 8usize;
    let per_thread = 500u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let sink = sink.clone();
            scope.spawn(move || {
                let mut rec = sink.recorder(&format!("worker{t}"));
                for i in 0..per_thread {
                    rec.incr("cycles", 1);
                    rec.record("latency", (t as u64) * per_thread + i);
                    if i % 97 == 0 {
                        rec.flush();
                    }
                }
            });
        }
    });

    let mut serial = RecorderState::new();
    for t in 0..threads as u64 {
        for i in 0..per_thread {
            serial.incr("cycles", 1);
            serial.record("latency", t * per_thread + i);
        }
    }
    let totals = sink.totals();
    assert_eq!(totals.counters(), serial.counters());
    assert_eq!(totals.hists(), serial.hists());
}
