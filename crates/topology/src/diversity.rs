//! Path-diversity and reliability metrics for routerless topologies.
//!
//! Routerless NoCs restrict each packet to a single loop, so reliability
//! hinges on how many *distinct* loops serve each source/destination pair
//! (paper §6.7: REC averages 2.77 paths per pair on 8x8, DRL 3.79, letting
//! DRL tolerate more link failures).

use crate::Topology;

/// Average number of distinct loops serving each ordered pair of distinct
/// nodes (counting pairs with zero paths), the paper's §6.7 metric.
///
/// Returns `0.0` for single-node grids.
pub fn average_path_diversity(topo: &Topology) -> f64 {
    let grid = topo.grid();
    let n = grid.len();
    if n <= 1 {
        return 0.0;
    }
    let mut total = 0usize;
    for ring in topo.loops() {
        let k = ring.num_nodes();
        // A loop of k nodes serves k*(k-1) ordered pairs.
        total += k * (k - 1);
    }
    total as f64 / (n * (n - 1)) as f64
}

/// Number of distinct loops serving the ordered pair `(src, dst)`.
pub fn pair_diversity(topo: &Topology, src: usize, dst: usize) -> usize {
    topo.routes(src, dst).len()
}

/// Minimum pair diversity over all ordered pairs of distinct nodes.
///
/// A value of `0` means the topology is not fully connected; `k >= 2` means
/// every pair survives any single loop failure.
pub fn min_path_diversity(topo: &Topology) -> usize {
    let grid = topo.grid();
    let mut min = usize::MAX;
    for s in grid.nodes() {
        for d in grid.nodes() {
            if s != d {
                min = min.min(pair_diversity(topo, s, d));
            }
        }
    }
    if min == usize::MAX {
        0
    } else {
        min
    }
}

/// Whether the topology remains fully connected if loop `loop_index` fails
/// entirely (a link failure on a loop's dedicated wiring disables the whole
/// loop, since packets cannot leave it).
///
/// # Panics
///
/// Panics if `loop_index` is out of range.
pub fn survives_loop_failure(topo: &Topology, loop_index: usize) -> bool {
    assert!(loop_index < topo.loops().len(), "loop index out of range");
    let grid = *topo.grid();
    let remaining = topo
        .loops()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != loop_index)
        .map(|(_, l)| *l);
    match Topology::from_loops(grid, remaining) {
        Ok(t) => t.is_fully_connected(),
        Err(_) => false,
    }
}

/// Number of loops whose individual failure the topology tolerates while
/// staying fully connected.
pub fn tolerable_single_failures(topo: &Topology) -> usize {
    (0..topo.loops().len())
        .filter(|&i| survives_loop_failure(topo, i))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, Grid, RectLoop};

    fn two_ring_topo() -> Topology {
        let g = Grid::square(4).unwrap();
        Topology::from_loops(
            g,
            [
                RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap(),
                RectLoop::new(0, 0, 3, 3, Direction::Counterclockwise).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn average_diversity_counts_loops() {
        let t = two_ring_topo();
        // Each ring serves 12*11 ordered pairs; 16*15 pairs total.
        let expect = (2 * 12 * 11) as f64 / (16 * 15) as f64;
        assert!((average_path_diversity(&t) - expect).abs() < 1e-12);
    }

    #[test]
    fn average_diversity_matches_pairwise_sum() {
        let t = two_ring_topo();
        let g = t.grid();
        let mut total = 0usize;
        for s in g.nodes() {
            for d in g.nodes() {
                if s != d {
                    total += pair_diversity(&t, s, d);
                }
            }
        }
        let brute = total as f64 / (g.len() * (g.len() - 1)) as f64;
        assert!((brute - average_path_diversity(&t)).abs() < 1e-12);
    }

    #[test]
    fn pair_diversity_on_and_off_loop() {
        let t = two_ring_topo();
        let g = t.grid();
        assert_eq!(pair_diversity(&t, g.node_at(0, 0), g.node_at(3, 3)), 2);
        assert_eq!(pair_diversity(&t, g.node_at(0, 0), g.node_at(1, 1)), 0);
    }

    #[test]
    fn loop_failure_on_redundant_pair_of_rings() {
        // 2x2 grid, two opposite rings: either one alone still connects all.
        let g = Grid::square(2).unwrap();
        let t = Topology::from_loops(
            g,
            [
                RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap(),
                RectLoop::new(0, 0, 1, 1, Direction::Counterclockwise).unwrap(),
            ],
        )
        .unwrap();
        assert!(survives_loop_failure(&t, 0));
        assert!(survives_loop_failure(&t, 1));
        assert_eq!(tolerable_single_failures(&t), 2);
        assert_eq!(min_path_diversity(&t), 2);
    }

    #[test]
    fn single_ring_has_no_redundancy() {
        let g = Grid::square(2).unwrap();
        let t = Topology::from_loops(
            g,
            [RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap()],
        )
        .unwrap();
        assert!(!survives_loop_failure(&t, 0));
        assert_eq!(tolerable_single_failures(&t), 0);
        assert_eq!(min_path_diversity(&t), 1);
    }
}
