use std::error::Error;
use std::fmt;

/// Errors produced by topology construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A grid dimension was zero or otherwise unusable.
    InvalidGrid {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// A loop was degenerate: its two diagonal corners share a row or a
    /// column, so it does not describe a rectangle (paper §4.2 requires
    /// `x1 != x2` and `y1 != y2`).
    DegenerateLoop {
        /// First corner, `(x1, y1)`.
        corner_a: (usize, usize),
        /// Second corner, `(x2, y2)`.
        corner_b: (usize, usize),
    },
    /// A loop's corners fall outside the grid it is being placed on.
    LoopOutOfBounds {
        /// The offending loop's bounding corners `(x1, y1, x2, y2)`.
        corners: (usize, usize, usize, usize),
        /// Grid width.
        width: usize,
        /// Grid height.
        height: usize,
    },
    /// The loop being added is already present in the topology (a
    /// *repetitive* action in the paper's reward taxonomy, §4.3).
    DuplicateLoop,
    /// Adding the loop would push some node past the node-overlapping cap
    /// (an *illegal* action in the paper's reward taxonomy, §4.3).
    OverlapExceeded {
        /// The first node that would exceed the cap.
        node: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A node index was out of range for the grid.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the grid.
        len: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidGrid { width, height } => {
                write!(f, "invalid grid dimensions {width}x{height}")
            }
            TopologyError::DegenerateLoop { corner_a, corner_b } => write!(
                f,
                "degenerate loop: corners {corner_a:?} and {corner_b:?} do not span a rectangle"
            ),
            TopologyError::LoopOutOfBounds {
                corners,
                width,
                height,
            } => write!(
                f,
                "loop corners {corners:?} fall outside the {width}x{height} grid"
            ),
            TopologyError::DuplicateLoop => write!(f, "loop is already present in the topology"),
            TopologyError::OverlapExceeded { node, cap } => write!(
                f,
                "adding loop would exceed node-overlapping cap {cap} at node {node}"
            ),
            TopologyError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for grid with {len} nodes")
            }
        }
    }
}

impl Error for TopologyError {}
