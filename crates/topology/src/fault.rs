//! Fault modelling for routerless topologies: which loops and directed
//! links have failed, and what connectivity survives them.
//!
//! The paper's §6.7 argues DRL designs tolerate failures better than REC
//! because more distinct loops serve each pair (3.79 vs 2.77 on 8x8). A
//! [`FaultSet`] makes that claim executable: it names failed loops and
//! failed directed links, and
//! [`RoutingTable::rebuild_excluding`](crate::RoutingTable::rebuild_excluding)
//! re-derives per-destination routes over the surviving wiring only,
//! summarising what remains in a [`ReachabilityReport`] so callers can
//! degrade gracefully instead of panicking on partial connectivity.

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A set of failed loops and failed directed links.
///
/// Two failure granularities, matching how routerless wiring actually
/// breaks:
///
/// - a **loop failure** disables a whole loop (e.g. a defect in the
///   shared loop control logic) — no flit may use any part of it;
/// - a **link failure** cuts one directed link of one loop, identified by
///   the node the link *leaves*. The rest of the loop keeps carrying
///   traffic whose source→destination arc does not cross the cut.
///
/// Sets are kept sorted and deduplicated, so equality and serialization
/// are canonical.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    /// Failed loop indices (into [`Topology::loops`](crate::Topology::loops)),
    /// sorted, deduplicated.
    failed_loops: Vec<usize>,
    /// Failed directed links as `(loop_index, from_node)`, sorted,
    /// deduplicated.
    failed_links: Vec<(usize, NodeId)>,
}

impl FaultSet {
    /// An empty fault set (everything healthy).
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// Whether no fault is recorded.
    pub fn is_empty(&self) -> bool {
        self.failed_loops.is_empty() && self.failed_links.is_empty()
    }

    /// Marks a whole loop as failed. Idempotent.
    pub fn fail_loop(&mut self, loop_index: usize) -> &mut Self {
        if let Err(at) = self.failed_loops.binary_search(&loop_index) {
            self.failed_loops.insert(at, loop_index);
        }
        self
    }

    /// Marks the directed link of loop `loop_index` leaving `from` as
    /// failed. Idempotent.
    pub fn fail_link(&mut self, loop_index: usize, from: NodeId) -> &mut Self {
        let key = (loop_index, from);
        if let Err(at) = self.failed_links.binary_search(&key) {
            self.failed_links.insert(at, key);
        }
        self
    }

    /// Whether the whole loop has failed.
    pub fn loop_failed(&self, loop_index: usize) -> bool {
        self.failed_loops.binary_search(&loop_index).is_ok()
    }

    /// Whether the directed link of `loop_index` leaving `from` has
    /// failed (false for links of loops that failed wholesale — query
    /// [`FaultSet::loop_failed`] for those).
    pub fn link_failed(&self, loop_index: usize, from: NodeId) -> bool {
        self.failed_links.binary_search(&(loop_index, from)).is_ok()
    }

    /// Whether any individual link of `loop_index` has failed.
    pub fn loop_has_link_faults(&self, loop_index: usize) -> bool {
        self.failed_links
            .binary_search_by(|&(l, _)| l.cmp(&loop_index).then(std::cmp::Ordering::Greater))
            .err()
            .map(|at| {
                self.failed_links
                    .get(at)
                    .is_some_and(|&(l, _)| l == loop_index)
            })
            .unwrap_or(false)
    }

    /// Failed loop indices, ascending.
    pub fn failed_loops(&self) -> &[usize] {
        &self.failed_loops
    }

    /// Failed `(loop_index, from_node)` links, ascending.
    pub fn failed_links(&self) -> &[(usize, NodeId)] {
        &self.failed_links
    }

    /// Total number of recorded faults.
    pub fn len(&self) -> usize {
        self.failed_loops.len() + self.failed_links.len()
    }

    /// Selects `k` distinct loops out of `num_loops` to fail, chosen
    /// deterministically from `seed` (a SplitMix64-driven partial
    /// Fisher-Yates). The workhorse of fault-tolerance sweeps: the same
    /// `(k, num_loops, seed)` always kills the same loops, regardless of
    /// platform or thread count.
    pub fn random_loop_failures(k: usize, num_loops: usize, seed: u64) -> FaultSet {
        let mut indices: Vec<usize> = (0..num_loops).collect();
        let mut state = seed;
        let mut faults = FaultSet::new();
        for step in 0..k.min(num_loops) {
            // SplitMix64 finalizer: decorrelates consecutive draws.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let remaining = num_loops - step;
            let pick = step + (z % remaining as u64) as usize;
            indices.swap(step, pick);
            faults.fail_loop(indices[step]);
        }
        faults
    }
}

/// What connectivity survives a fault set, as reported by
/// [`RoutingTable::rebuild_excluding`](crate::RoutingTable::rebuild_excluding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReachabilityReport {
    /// Ordered pairs of distinct nodes in the grid.
    pub total_pairs: usize,
    /// Pairs the degraded routing table still serves.
    pub reachable_pairs: usize,
    /// Average hop count over the reachable pairs, or `None` when nothing
    /// is reachable.
    pub average_hops: Option<f64>,
    /// The pairs left without any route, in `(src, dst)` order.
    pub disconnected: Vec<(NodeId, NodeId)>,
}

impl ReachabilityReport {
    /// Fraction of pairs still reachable (1.0 for an empty grid).
    pub fn reachability(&self) -> f64 {
        if self.total_pairs == 0 {
            1.0
        } else {
            self.reachable_pairs as f64 / self.total_pairs as f64
        }
    }

    /// Number of pairs left without a route.
    pub fn disconnected_pairs(&self) -> usize {
        self.disconnected.len()
    }

    /// Whether every ordered pair of distinct nodes still has a route.
    pub fn is_fully_connected(&self) -> bool {
        self.reachable_pairs == self.total_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_set_is_canonical_and_idempotent() {
        let mut a = FaultSet::new();
        a.fail_loop(3).fail_loop(1).fail_loop(3);
        a.fail_link(2, 7).fail_link(0, 4).fail_link(2, 7);
        let mut b = FaultSet::new();
        b.fail_link(0, 4).fail_link(2, 7);
        b.fail_loop(1).fail_loop(3);
        assert_eq!(a, b);
        assert_eq!(a.failed_loops(), &[1, 3]);
        assert_eq!(a.failed_links(), &[(0, 4), (2, 7)]);
        assert_eq!(a.len(), 4);
        assert!(a.loop_failed(1) && a.loop_failed(3) && !a.loop_failed(2));
        assert!(a.link_failed(2, 7) && !a.link_failed(2, 6));
        assert!(a.loop_has_link_faults(0) && a.loop_has_link_faults(2));
        assert!(!a.loop_has_link_faults(1));
    }

    #[test]
    fn empty_set_reports_empty() {
        let f = FaultSet::new();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!(!f.loop_failed(0));
        assert!(!f.link_failed(0, 0));
    }

    #[test]
    fn random_loop_failures_are_deterministic_and_distinct() {
        let a = FaultSet::random_loop_failures(3, 14, 42);
        let b = FaultSet::random_loop_failures(3, 14, 42);
        assert_eq!(a, b);
        assert_eq!(a.failed_loops().len(), 3);
        assert!(a.failed_loops().iter().all(|&l| l < 14));
        let c = FaultSet::random_loop_failures(3, 14, 43);
        // Different seeds *can* collide, but not for these constants.
        assert_ne!(a, c);
        // k past the loop count saturates instead of spinning.
        let all = FaultSet::random_loop_failures(20, 5, 7);
        assert_eq!(all.failed_loops(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn reachability_report_ratios() {
        let r = ReachabilityReport {
            total_pairs: 12,
            reachable_pairs: 9,
            average_hops: Some(2.5),
            disconnected: vec![(0, 3), (3, 0), (1, 2)],
        };
        assert!((r.reachability() - 0.75).abs() < 1e-12);
        assert_eq!(r.disconnected_pairs(), 3);
        assert!(!r.is_fully_connected());
        let empty = ReachabilityReport {
            total_pairs: 0,
            reachable_pairs: 0,
            average_hops: None,
            disconnected: Vec::new(),
        };
        assert_eq!(empty.reachability(), 1.0);
        assert!(empty.is_fully_connected());
    }
}
