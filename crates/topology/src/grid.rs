use crate::TopologyError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (core) on a [`Grid`], in row-major order:
/// node `(x, y)` has id `y * width + x`.
pub type NodeId = usize;

/// An `(x, y)` coordinate on a grid. `x` is the column (0 at the left),
/// `y` is the row (0 at the top).
pub type Coord = (usize, usize);

/// A rectangular arrangement of NoC nodes.
///
/// Grids are cheap to copy and carry only their dimensions; all per-node
/// state lives in higher-level structures such as [`crate::Topology`].
///
/// # Example
///
/// ```
/// use rlnoc_topology::Grid;
/// # fn main() -> Result<(), rlnoc_topology::TopologyError> {
/// let grid = Grid::new(4, 4)?;
/// assert_eq!(grid.len(), 16);
/// assert_eq!(grid.node_at(1, 2), 9);
/// assert_eq!(grid.coord_of(9), (1, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Grid {
    width: usize,
    height: usize,
}

impl Grid {
    /// Creates a `width x height` grid.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidGrid`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, TopologyError> {
        if width == 0 || height == 0 {
            return Err(TopologyError::InvalidGrid { width, height });
        }
        Ok(Grid { width, height })
    }

    /// Creates a square `n x n` grid.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidGrid`] if `n` is zero.
    pub fn square(n: usize) -> Result<Self, TopologyError> {
        Grid::new(n, n)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Always `false`: grids have at least one node by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the grid is square (`width == height`).
    pub fn is_square(&self) -> bool {
        self.width == self.height
    }

    /// The node id at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the grid.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(
            x < self.width && y < self.height,
            "coordinate ({x}, {y}) outside {}x{} grid",
            self.width,
            self.height
        );
        y * self.width + x
    }

    /// The node id at `(x, y)`, or `None` if outside the grid.
    pub fn try_node_at(&self, x: usize, y: usize) -> Option<NodeId> {
        (x < self.width && y < self.height).then(|| y * self.width + x)
    }

    /// The `(x, y)` coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord_of(&self, node: NodeId) -> Coord {
        assert!(
            node < self.len(),
            "node {node} out of range for grid with {} nodes",
            self.len()
        );
        (node % self.width, node / self.width)
    }

    /// Validates that `node` is within range.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] when `node >= self.len()`.
    pub fn check_node(&self, node: NodeId) -> Result<(), TopologyError> {
        if node < self.len() {
            Ok(())
        } else {
            Err(TopologyError::NodeOutOfRange {
                node,
                len: self.len(),
            })
        }
    }

    /// Iterates over all node ids in row-major order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> {
        0..self.len()
    }

    /// Iterates over all coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        (0..self.len()).map(move |i| (i % w, i / w))
    }

    /// Manhattan distance between two nodes (the mesh routing distance).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coord_of(a);
        let (bx, by) = self.coord_of(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The default hop-count value used for unconnected node pairs in the
    /// paper's state encoding (§4.2): `5 * max(width, height)`.
    pub fn unconnected_hops(&self) -> usize {
        5 * self.width.max(self.height)
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} grid", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grid_dimensions() {
        let g = Grid::square(4).unwrap();
        assert_eq!(g.width(), 4);
        assert_eq!(g.height(), 4);
        assert_eq!(g.len(), 16);
        assert!(g.is_square());
    }

    #[test]
    fn rectangular_grid() {
        let g = Grid::new(3, 5).unwrap();
        assert_eq!(g.len(), 15);
        assert!(!g.is_square());
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(
            Grid::new(0, 4),
            Err(TopologyError::InvalidGrid { .. })
        ));
        assert!(matches!(
            Grid::new(4, 0),
            Err(TopologyError::InvalidGrid { .. })
        ));
    }

    #[test]
    fn node_coord_round_trip() {
        let g = Grid::new(5, 3).unwrap();
        for node in g.nodes() {
            let (x, y) = g.coord_of(node);
            assert_eq!(g.node_at(x, y), node);
        }
    }

    #[test]
    fn try_node_at_bounds() {
        let g = Grid::square(3).unwrap();
        assert_eq!(g.try_node_at(2, 2), Some(8));
        assert_eq!(g.try_node_at(3, 0), None);
        assert_eq!(g.try_node_at(0, 3), None);
    }

    #[test]
    fn manhattan_distance() {
        let g = Grid::square(4).unwrap();
        assert_eq!(g.manhattan(g.node_at(0, 0), g.node_at(3, 3)), 6);
        assert_eq!(g.manhattan(g.node_at(1, 1), g.node_at(1, 1)), 0);
        assert_eq!(g.manhattan(g.node_at(2, 0), g.node_at(0, 1)), 3);
    }

    #[test]
    fn unconnected_default_matches_paper() {
        // Paper §4.2: default value of 5*N for an NxN grid.
        assert_eq!(Grid::square(8).unwrap().unconnected_hops(), 40);
        assert_eq!(Grid::new(4, 10).unwrap().unconnected_hops(), 50);
    }

    #[test]
    fn coords_iteration_row_major() {
        let g = Grid::new(2, 2).unwrap();
        let coords: Vec<_> = g.coords().collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn node_at_out_of_bounds_panics() {
        Grid::square(2).unwrap().node_at(2, 0);
    }

    #[test]
    fn check_node_errors() {
        let g = Grid::square(2).unwrap();
        assert!(g.check_node(3).is_ok());
        assert!(matches!(
            g.check_node(4),
            Err(TopologyError::NodeOutOfRange { node: 4, len: 4 })
        ));
    }
}
