use crate::{Grid, NodeId, RectLoop};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The pairwise hop-count matrix of a routerless NoC — the paper's §4.2
/// state encoding.
///
/// For a grid with `n = width * height` nodes, this stores an `n × n` matrix
/// `H` where `H[s][d]` is the minimum number of hops a packet needs to travel
/// from `s` to `d` along a *single* loop (routerless NoCs never switch loops
/// mid-flight). Unconnected pairs hold the sentinel value
/// `5 * max(width, height)` (the paper's `5 * N` default), which is strictly
/// larger than any realizable loop distance (`≤ 4N - 4`), so
/// `H[s][d] < sentinel ⟺ s can reach d`.
///
/// Because a new loop can only improve pairs whose endpoints both lie on its
/// perimeter, [`HopMatrix::apply_loop`] performs an exact incremental update
/// in `O(L²)` for a loop of length `L` — no all-pairs recomputation.
///
/// # Example
///
/// ```
/// use rlnoc_topology::{Grid, HopMatrix, RectLoop, Direction};
/// # fn main() -> Result<(), rlnoc_topology::TopologyError> {
/// let grid = Grid::square(4)?;
/// let mut hops = HopMatrix::new(grid);
/// assert_eq!(hops.connected_pairs(), 0);
/// hops.apply_loop(&grid, &RectLoop::new(0, 0, 3, 3, Direction::Clockwise)?);
/// assert_eq!(hops.connected_pairs(), 12 * 11);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopMatrix {
    n: usize,
    sentinel: u32,
    data: Vec<u32>,
    /// Cached count of connected ordered pairs, maintained by
    /// [`HopMatrix::apply_loop`] so queries are O(1).
    connected: usize,
}

impl HopMatrix {
    /// Creates the hop matrix of a completely disconnected NoC on `grid`:
    /// zero on the diagonal, the `5 * N` sentinel everywhere else.
    pub fn new(grid: Grid) -> Self {
        let n = grid.len();
        let sentinel = grid.unconnected_hops() as u32;
        let mut data = vec![sentinel; n * n];
        for i in 0..n {
            data[i * n + i] = 0;
        }
        HopMatrix {
            n,
            sentinel,
            data,
            connected: 0,
        }
    }

    /// Number of nodes (`n`), i.e. the matrix is `n × n`.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The sentinel value stored for unconnected pairs.
    pub fn sentinel(&self) -> u32 {
        self.sentinel
    }

    /// Hop count from `src` to `dst`. Returns the sentinel when unconnected.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        assert!(src < self.n && dst < self.n, "node out of range");
        self.data[src * self.n + dst]
    }

    /// Whether a packet can travel from `src` to `dst` on some loop.
    pub fn is_connected(&self, src: NodeId, dst: NodeId) -> bool {
        self.hops(src, dst) < self.sentinel
    }

    /// Number of ordered pairs `(s, d)`, `s != d`, that are connected.
    /// O(1): the count is maintained incrementally.
    pub fn connected_pairs(&self) -> usize {
        self.connected
    }

    /// Whether every ordered pair of distinct nodes is connected. O(1).
    pub fn is_fully_connected(&self) -> bool {
        self.connected == self.n * (self.n - 1)
    }

    /// Average hop count over all ordered pairs of distinct nodes, with
    /// unconnected pairs contributing the sentinel value. This is the
    /// quantity the paper's agent minimizes (§4.3).
    pub fn average_hops(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let total: u64 = self.data.iter().map(|&h| u64::from(h)).sum();
        total as f64 / (self.n * (self.n - 1)) as f64
    }

    /// Average hop count over connected ordered pairs only, or `None` when
    /// no pair is connected.
    pub fn average_connected_hops(&self) -> Option<f64> {
        let mut total = 0u64;
        let mut count = 0u64;
        for s in 0..self.n {
            for d in 0..self.n {
                let h = self.data[s * self.n + d];
                if s != d && h < self.sentinel {
                    total += u64::from(h);
                    count += 1;
                }
            }
        }
        (count > 0).then(|| total as f64 / count as f64)
    }

    /// Incorporates `ring` into the matrix, min-updating every ordered pair
    /// of perimeter nodes with its directed on-loop distance. Returns the
    /// number of matrix entries that improved.
    ///
    /// # Panics
    ///
    /// Panics if the loop does not fit on `grid` or the grid does not match
    /// the matrix dimensions.
    pub fn apply_loop(&mut self, grid: &Grid, ring: &RectLoop) -> usize {
        assert_eq!(grid.len(), self.n, "grid does not match matrix size");
        ring.check_on(grid).expect("loop out of bounds for grid");
        let nodes = ring.perimeter_nodes(grid);
        let len = nodes.len();
        let mut improved = 0;
        for (pi, &a) in nodes.iter().enumerate() {
            let row = a * self.n;
            for (pj, &b) in nodes.iter().enumerate() {
                if a == b {
                    continue;
                }
                let d = ((pj + len - pi) % len) as u32;
                let cell = &mut self.data[row + b];
                if d < *cell {
                    if *cell == self.sentinel {
                        self.connected += 1;
                    }
                    *cell = d;
                    improved += 1;
                }
            }
        }
        improved
    }

    /// Number of ordered pairs that `ring` would newly connect, without
    /// mutating the matrix.
    pub fn newly_connected_pairs(&self, grid: &Grid, ring: &RectLoop) -> usize {
        let mut newly = 0;
        let nodes = ring.perimeter_nodes(grid);
        for &a in &nodes {
            for &b in &nodes {
                if a != b && !self.is_connected(a, b) {
                    newly += 1;
                }
            }
        }
        newly
    }

    /// Number of ordered pairs that would be connected if `ring` were added,
    /// without mutating the matrix. This is the paper's `CheckCount`
    /// (Algorithm 1).
    pub fn connected_pairs_if_added(&self, grid: &Grid, ring: &RectLoop) -> usize {
        self.connected_pairs() + self.newly_connected_pairs(grid, ring)
    }

    /// Total hop-count reduction (sum over all ordered pairs) that `ring`
    /// would deliver, without mutating the matrix. This drives the paper's
    /// `Imprv` tie-break in Algorithm 1.
    pub fn improvement_if_added(&self, grid: &Grid, ring: &RectLoop) -> u64 {
        let nodes = ring.perimeter_nodes(grid);
        let len = nodes.len();
        let mut gain = 0u64;
        for (pi, &a) in nodes.iter().enumerate() {
            for (pj, &b) in nodes.iter().enumerate() {
                if a == b {
                    continue;
                }
                let d = ((pj + len - pi) % len) as u32;
                let cur = self.data[a * self.n + b];
                if d < cur {
                    gain += u64::from(cur - d);
                }
            }
        }
        gain
    }

    /// Flattens the matrix into the paper's `N² × N²` block state layout for
    /// an `N × N` grid (Figure 5): the block at block-row `bi`, block-column
    /// `bj` is the `N × N` submatrix of hop counts *from* node
    /// `bi * N + bj` *to* every node.
    ///
    /// Values are returned as `f32` for direct use as DNN input. For
    /// rectangular `W × H` grids the same construction yields a
    /// `(W·H) × (W·H)` matrix arranged in `H × W` blocks of `H × W`.
    pub fn to_state_tensor(&self, grid: &Grid) -> Vec<f32> {
        assert_eq!(grid.len(), self.n, "grid does not match matrix size");
        let (w, h) = (grid.width(), grid.height());
        let side = self.n; // N² for square grids
        let mut out = vec![0f32; side * side];
        for src in 0..self.n {
            let (bx, by) = (src % w, src / w);
            for dst in 0..self.n {
                let (cx, cy) = (dst % w, dst / w);
                let row = by * h + cy;
                let col = bx * w + cx;
                out[row * side + col] = self.data[src * self.n + dst] as f32;
            }
        }
        out
    }

    /// Raw row-major matrix data (`n * n` entries, `H[s][d]` at `s * n + d`).
    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }
}

/// Renders the matrix as aligned rows of hop counts; sentinel entries show
/// as `-`.
impl fmt::Display for HopMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in 0..self.n {
            for d in 0..self.n {
                let h = self.data[s * self.n + d];
                if h >= self.sentinel {
                    write!(f, "  -")?;
                } else {
                    write!(f, "{h:3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    fn grid(n: usize) -> Grid {
        Grid::square(n).unwrap()
    }

    #[test]
    fn fresh_matrix_disconnected() {
        let g = grid(4);
        let m = HopMatrix::new(g);
        assert_eq!(m.connected_pairs(), 0);
        assert!(!m.is_fully_connected());
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 1), 20);
    }

    #[test]
    fn figure5_2x2_state() {
        // Paper Figure 5: a 2x2 NoC with one clockwise loop.
        let g = grid(2);
        let mut m = HopMatrix::new(g);
        m.apply_loop(
            &g,
            &RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap(),
        );
        // Node ids: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1); CW order 0,1,3,2.
        assert_eq!(m.hops(0, 1), 1);
        assert_eq!(m.hops(0, 3), 2);
        assert_eq!(m.hops(0, 2), 3);
        assert_eq!(m.hops(2, 0), 1);
        assert!(m.is_fully_connected());
        // The paper's 4x4 block layout for this topology (Figure 5).
        let t = m.to_state_tensor(&g);
        #[rustfmt::skip]
        let expect: Vec<f32> = vec![
            0.0, 1.0,  3.0, 0.0,
            3.0, 2.0,  2.0, 1.0,
            1.0, 2.0,  2.0, 3.0,
            0.0, 3.0,  1.0, 0.0,
        ];
        assert_eq!(t, expect);
    }

    #[test]
    fn apply_loop_incremental_matches_exact() {
        // Adding loops one at a time must equal recomputing from scratch.
        let g = grid(4);
        let loops = [
            RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap(),
            RectLoop::new(0, 0, 1, 3, Direction::Counterclockwise).unwrap(),
            RectLoop::new(1, 1, 3, 2, Direction::Clockwise).unwrap(),
        ];
        let mut incremental = HopMatrix::new(g);
        for l in &loops {
            incremental.apply_loop(&g, l);
        }
        // Exact: min over loops of directed distance.
        for s in g.nodes() {
            for d in g.nodes() {
                let exact = loops
                    .iter()
                    .filter_map(|l| l.distance(&g, s, d))
                    .min()
                    .map(|x| x as u32)
                    .unwrap_or(if s == d { 0 } else { incremental.sentinel() });
                let exact = if s == d { 0 } else { exact };
                assert_eq!(incremental.hops(s, d), exact, "pair ({s},{d})");
            }
        }
    }

    #[test]
    fn connected_pairs_if_added_matches_apply() {
        let g = grid(4);
        let mut m = HopMatrix::new(g);
        let l1 = RectLoop::new(0, 0, 2, 2, Direction::Clockwise).unwrap();
        let l2 = RectLoop::new(1, 1, 3, 3, Direction::Clockwise).unwrap();
        m.apply_loop(&g, &l1);
        let predicted = m.connected_pairs_if_added(&g, &l2);
        m.apply_loop(&g, &l2);
        assert_eq!(m.connected_pairs(), predicted);
    }

    #[test]
    fn improvement_if_added_matches_apply() {
        let g = grid(4);
        let mut m = HopMatrix::new(g);
        m.apply_loop(
            &g,
            &RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap(),
        );
        let l2 = RectLoop::new(0, 0, 3, 3, Direction::Counterclockwise).unwrap();
        let before: u64 = m.as_slice().iter().map(|&h| u64::from(h)).sum();
        let gain = m.improvement_if_added(&g, &l2);
        m.apply_loop(&g, &l2);
        let after: u64 = m.as_slice().iter().map(|&h| u64::from(h)).sum();
        assert_eq!(before - after, gain);
        assert!(gain > 0, "reverse loop shortens the long way round");
    }

    #[test]
    fn average_hops_single_full_ring_4x4() {
        let g = grid(4);
        let mut m = HopMatrix::new(g);
        m.apply_loop(
            &g,
            &RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap(),
        );
        // 12 perimeter nodes on a cycle of length 12: average directed
        // distance over distinct pairs is (1+2+...+11)/11 = 6.
        let avg = m.average_connected_hops().unwrap();
        assert!((avg - 6.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn duplicate_loop_changes_nothing() {
        let g = grid(4);
        let l = RectLoop::new(0, 1, 2, 3, Direction::Clockwise).unwrap();
        let mut m = HopMatrix::new(g);
        m.apply_loop(&g, &l);
        let snapshot = m.clone();
        let improved = m.apply_loop(&g, &l);
        assert_eq!(improved, 0);
        assert_eq!(m, snapshot);
    }

    #[test]
    fn sentinel_exceeds_any_loop_distance() {
        // Longest possible loop on NxN is the outer ring: 4N-4 nodes, so the
        // longest directed distance is 4N-5 < 5N.
        for n in [2usize, 4, 8, 10, 18] {
            let g = grid(n);
            assert!(4 * n - 5 < g.unconnected_hops());
        }
    }
}
