//! NoC topology primitives for routerless network-on-chip design.
//!
//! This crate provides the structural substrate used throughout the `rlnoc`
//! workspace, reproducing the topology layer of *"A Deep Reinforcement
//! Learning Framework for Architectural Exploration: A Routerless NoC Case
//! Study"* (HPCA 2020):
//!
//! - [`Grid`]: an `N×M` arrangement of nodes (cores) identified by [`NodeId`],
//! - [`RectLoop`]: a unidirectional rectangular wiring loop (ring) placed on a
//!   grid, the paper's atomic design action,
//! - [`Topology`]: a set of loops on a grid, with node-overlapping accounting
//!   and connectivity queries,
//! - [`HopMatrix`]: the paper's §4.2 state encoding — an `N²×N²` matrix of
//!   pairwise directed hop counts, maintained incrementally as loops are
//!   added,
//! - [`RoutingTable`]: the per-source lookup table that routerless NoCs use
//!   to pick the loop carrying a packet to each destination,
//! - [`diversity`]: path-diversity and link-failure reliability metrics
//!   (paper §6.7),
//! - [`FaultSet`] + [`RoutingTable::rebuild_excluding`]: degraded-mode
//!   routing over surviving loops after loop/link failures, reported via
//!   [`ReachabilityReport`],
//! - [`mesh`] and [`reference`](crate::reference): router-based reference
//!   fabrics (mesh, single ring, hierarchical ring) used as comparison
//!   baselines.
//!
//! # Example
//!
//! Build the 2x2 routerless NoC from the paper's Figure 5 and inspect its
//! hop-count matrix:
//!
//! ```
//! use rlnoc_topology::{Grid, RectLoop, Direction, Topology};
//!
//! # fn main() -> Result<(), rlnoc_topology::TopologyError> {
//! let grid = Grid::new(2, 2)?;
//! let mut topo = Topology::new(grid);
//! topo.add_loop(RectLoop::new(0, 0, 1, 1, Direction::Clockwise)?)?;
//! assert!(topo.is_fully_connected());
//! // Average hop count over all ordered pairs of distinct nodes:
//! let avg = topo.hop_matrix().average_hops();
//! assert!((avg - 2.0).abs() < 1e-9); // 1+2+3 hops averaged over 3 pairs, symmetric
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod fault;
mod grid;
mod hops;
mod rect_loop;
mod routing;
mod topology;

pub mod diversity;
pub mod mesh;
pub mod reference;
pub mod render;

pub use error::TopologyError;
pub use fault::{FaultSet, ReachabilityReport};
pub use grid::{Coord, Grid, NodeId};
pub use hops::HopMatrix;
pub use rect_loop::{Direction, RectLoop};
pub use routing::{Route, RoutingPolicy, RoutingTable};
pub use topology::Topology;
