//! Router-based mesh reference fabric.
//!
//! The paper compares routerless designs against a conventional 2-D mesh
//! with XY dimension-order routing. In a mesh the hop count between two
//! nodes is exactly their Manhattan distance, so no topology synthesis is
//! needed — only analytic helpers, which this module provides.

use crate::{Grid, NodeId};

/// Average hop count of an XY-routed mesh over all ordered pairs of
/// distinct nodes.
///
/// For the paper's 8x8 mesh this evaluates to 16/3 ≈ 5.33, the number
/// quoted in §3.1.
///
/// # Example
///
/// ```
/// use rlnoc_topology::{Grid, mesh};
/// let g = Grid::square(8).unwrap();
/// assert!((mesh::average_hops(&g) - 5.333).abs() < 1e-3);
/// ```
pub fn average_hops(grid: &Grid) -> f64 {
    let (w, h) = (grid.width() as f64, grid.height() as f64);
    let n = w * h;
    if n <= 1.0 {
        return 0.0;
    }
    // Sum over all ordered pairs (including self-pairs, which contribute 0)
    // of |x1-x2| + |y1-y2|:
    //   sum_x = h^2 * w(w^2-1)/3,  sum_y = w^2 * h(h^2-1)/3.
    let sum_x = h * h * w * (w * w - 1.0) / 3.0;
    let sum_y = w * w * h * (h * h - 1.0) / 3.0;
    (sum_x + sum_y) / (n * (n - 1.0))
}

/// Hop count between two mesh nodes (Manhattan distance).
pub fn hops(grid: &Grid, src: NodeId, dst: NodeId) -> usize {
    grid.manhattan(src, dst)
}

/// The XY dimension-order route from `src` to `dst`, inclusive of both
/// endpoints: first traverse columns (X), then rows (Y).
///
/// # Panics
///
/// Panics if either node is out of range.
pub fn xy_path(grid: &Grid, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let (sx, sy) = grid.coord_of(src);
    let (dx, dy) = grid.coord_of(dst);
    let mut path = Vec::with_capacity(grid.manhattan(src, dst) + 1);
    let mut x = sx;
    let mut y = sy;
    path.push(grid.node_at(x, y));
    while x != dx {
        if x < dx {
            x += 1;
        } else {
            x -= 1;
        }
        path.push(grid.node_at(x, y));
    }
    while y != dy {
        if y < dy {
            y += 1;
        } else {
            y -= 1;
        }
        path.push(grid.node_at(x, y));
    }
    path
}

/// Number of bidirectional mesh links (`2wh - w - h`).
pub fn num_links(grid: &Grid) -> usize {
    let (w, h) = (grid.width(), grid.height());
    2 * w * h - w - h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_matches_paper_8x8() {
        let g = Grid::square(8).unwrap();
        let analytic = average_hops(&g);
        assert!((analytic - 5.333_333).abs() < 1e-5, "got {analytic}");
    }

    #[test]
    fn average_matches_brute_force() {
        for (w, h) in [(2, 2), (3, 4), (4, 4), (5, 3)] {
            let g = Grid::new(w, h).unwrap();
            let mut total = 0usize;
            let mut pairs = 0usize;
            for a in g.nodes() {
                for b in g.nodes() {
                    if a != b {
                        total += g.manhattan(a, b);
                        pairs += 1;
                    }
                }
            }
            let brute = total as f64 / pairs as f64;
            assert!(
                (brute - average_hops(&g)).abs() < 1e-9,
                "{w}x{h}: brute {brute} vs analytic {}",
                average_hops(&g)
            );
        }
    }

    #[test]
    fn xy_path_shape() {
        let g = Grid::square(4).unwrap();
        let p = xy_path(&g, g.node_at(0, 0), g.node_at(3, 2));
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], g.node_at(0, 0));
        assert_eq!(*p.last().unwrap(), g.node_at(3, 2));
        // X is fully traversed before Y moves.
        assert_eq!(p[3], g.node_at(3, 0));
        // Consecutive nodes are neighbours.
        for w in p.windows(2) {
            assert_eq!(g.manhattan(w[0], w[1]), 1);
        }
    }

    #[test]
    fn xy_path_degenerate() {
        let g = Grid::square(4).unwrap();
        let n = g.node_at(2, 2);
        assert_eq!(xy_path(&g, n, n), vec![n]);
    }

    #[test]
    fn link_count() {
        let g = Grid::square(4).unwrap();
        assert_eq!(num_links(&g), 24);
        let g = Grid::new(2, 3).unwrap();
        assert_eq!(num_links(&g), 7);
    }
}
