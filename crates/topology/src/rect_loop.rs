use crate::{Coord, Grid, NodeId, TopologyError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Packet circulation direction around a [`RectLoop`].
///
/// The paper encodes this as the `dir` component of an action
/// `(x1, y1, x2, y2, dir)`, with `dir = 1` for clockwise and `dir = 0`
/// for counterclockwise circulation (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Clockwise circulation (with `y` growing downward: right along the top
    /// edge, down the right edge, left along the bottom edge, up the left
    /// edge).
    Clockwise,
    /// Counterclockwise circulation.
    Counterclockwise,
}

impl Direction {
    /// The opposite circulation direction.
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Clockwise => Direction::Counterclockwise,
            Direction::Counterclockwise => Direction::Clockwise,
        }
    }

    /// Paper encoding: `1` for clockwise, `0` for counterclockwise.
    pub fn as_bit(self) -> u8 {
        match self {
            Direction::Clockwise => 1,
            Direction::Counterclockwise => 0,
        }
    }

    /// Decodes the paper's bit encoding (`dir > 0` ⇒ clockwise).
    pub fn from_bit(bit: u8) -> Direction {
        if bit > 0 {
            Direction::Clockwise
        } else {
            Direction::Counterclockwise
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Clockwise => write!(f, "CW"),
            Direction::Counterclockwise => write!(f, "CCW"),
        }
    }
}

/// A unidirectional rectangular wiring loop — the atomic building block of a
/// routerless NoC and the action unit of the paper's DRL framework.
///
/// A loop is specified by two diagonal corners and a circulation
/// [`Direction`]. Corners are normalized on construction so that
/// `(x_min, y_min)` and `(x_max, y_max)` are stored regardless of the
/// argument order, making structural equality match geometric equality.
///
/// Packets on a loop travel only in its circulation direction and never
/// switch loops mid-flight (routerless property), so the *directed* hop
/// distance between two on-loop nodes is generally asymmetric.
///
/// # Example
///
/// ```
/// use rlnoc_topology::{RectLoop, Direction, Grid};
/// # fn main() -> Result<(), rlnoc_topology::TopologyError> {
/// let grid = Grid::square(4)?;
/// let ring = RectLoop::new(0, 0, 3, 3, Direction::Clockwise)?;
/// assert_eq!(ring.num_nodes(), 12); // outer ring of a 4x4 grid
/// let a = grid.node_at(0, 0);
/// let b = grid.node_at(3, 0);
/// assert_eq!(ring.distance(&grid, a, b), Some(3));
/// assert_eq!(ring.distance(&grid, b, a), Some(9)); // the long way round
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RectLoop {
    x1: usize,
    y1: usize,
    x2: usize,
    y2: usize,
    dir: Direction,
}

impl RectLoop {
    /// Creates a rectangular loop with diagonal corners `(x1, y1)` and
    /// `(x2, y2)` and circulation direction `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DegenerateLoop`] when the corners share a row
    /// or column (`x1 == x2 || y1 == y2`), which the paper classifies as an
    /// *invalid* (non-rectangular) action.
    pub fn new(
        x1: usize,
        y1: usize,
        x2: usize,
        y2: usize,
        dir: Direction,
    ) -> Result<Self, TopologyError> {
        if x1 == x2 || y1 == y2 {
            return Err(TopologyError::DegenerateLoop {
                corner_a: (x1, y1),
                corner_b: (x2, y2),
            });
        }
        Ok(RectLoop {
            x1: x1.min(x2),
            y1: y1.min(y2),
            x2: x1.max(x2),
            y2: y1.max(y2),
            dir,
        })
    }

    /// The normalized top-left corner `(x_min, y_min)`.
    pub fn top_left(&self) -> Coord {
        (self.x1, self.y1)
    }

    /// The normalized bottom-right corner `(x_max, y_max)`.
    pub fn bottom_right(&self) -> Coord {
        (self.x2, self.y2)
    }

    /// Circulation direction.
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// The same rectangle with opposite circulation.
    pub fn reversed(&self) -> RectLoop {
        RectLoop {
            dir: self.dir.reversed(),
            ..*self
        }
    }

    /// Rectangle width in links (number of columns spanned minus one).
    pub fn span_x(&self) -> usize {
        self.x2 - self.x1
    }

    /// Rectangle height in links (number of rows spanned minus one).
    pub fn span_y(&self) -> usize {
        self.y2 - self.y1
    }

    /// Number of nodes on the loop perimeter. Equal to the loop length in
    /// hops, since the loop is a cycle.
    pub fn num_nodes(&self) -> usize {
        2 * (self.span_x() + self.span_y())
    }

    /// Checks that the loop fits on `grid`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::LoopOutOfBounds`] if any corner exceeds the
    /// grid bounds.
    pub fn check_on(&self, grid: &Grid) -> Result<(), TopologyError> {
        if self.x2 < grid.width() && self.y2 < grid.height() {
            Ok(())
        } else {
            Err(TopologyError::LoopOutOfBounds {
                corners: (self.x1, self.y1, self.x2, self.y2),
                width: grid.width(),
                height: grid.height(),
            })
        }
    }

    /// Whether the coordinate `(x, y)` lies on the loop perimeter.
    pub fn contains_coord(&self, x: usize, y: usize) -> bool {
        let on_x_edge = (x == self.x1 || x == self.x2) && (self.y1..=self.y2).contains(&y);
        let on_y_edge = (y == self.y1 || y == self.y2) && (self.x1..=self.x2).contains(&x);
        on_x_edge || on_y_edge
    }

    /// Whether `node` (on `grid`) lies on the loop perimeter.
    pub fn contains(&self, grid: &Grid, node: NodeId) -> bool {
        let (x, y) = grid.coord_of(node);
        self.contains_coord(x, y)
    }

    /// The perimeter coordinates in circulation order, starting from the
    /// top-left corner.
    pub fn perimeter_coords(&self) -> Vec<Coord> {
        let mut cw = Vec::with_capacity(self.num_nodes());
        // Top edge, left → right (excluding the last corner of each edge so
        // corners are not duplicated).
        for x in self.x1..self.x2 {
            cw.push((x, self.y1));
        }
        // Right edge, top → bottom.
        for y in self.y1..self.y2 {
            cw.push((self.x2, y));
        }
        // Bottom edge, right → left.
        for x in (self.x1 + 1..=self.x2).rev() {
            cw.push((x, self.y2));
        }
        // Left edge, bottom → top.
        for y in (self.y1 + 1..=self.y2).rev() {
            cw.push((self.x1, y));
        }
        match self.dir {
            Direction::Clockwise => cw,
            Direction::Counterclockwise => {
                // Reverse traversal order but keep the same starting node.
                let mut ccw = cw;
                ccw[1..].reverse();
                ccw
            }
        }
    }

    /// The perimeter node ids on `grid`, in circulation order.
    ///
    /// # Panics
    ///
    /// Panics if the loop does not fit on `grid`; validate with
    /// [`RectLoop::check_on`] first.
    pub fn perimeter_nodes(&self, grid: &Grid) -> Vec<NodeId> {
        self.perimeter_coords()
            .into_iter()
            .map(|(x, y)| grid.node_at(x, y))
            .collect()
    }

    /// Position of `(x, y)` along the circulation order, or `None` if the
    /// coordinate is not on the perimeter.
    pub fn position_of_coord(&self, x: usize, y: usize) -> Option<usize> {
        if !self.contains_coord(x, y) {
            return None;
        }
        // Compute the clockwise position analytically, then convert.
        let (w, h) = (self.span_x(), self.span_y());
        let cw_pos = if y == self.y1 && x < self.x2 {
            x - self.x1 // top edge
        } else if x == self.x2 && y < self.y2 {
            w + (y - self.y1) // right edge
        } else if y == self.y2 && x > self.x1 {
            w + h + (self.x2 - x) // bottom edge
        } else {
            2 * w + h + (self.y2 - y) // left edge
        };
        Some(match self.dir {
            Direction::Clockwise => cw_pos,
            Direction::Counterclockwise => {
                if cw_pos == 0 {
                    0
                } else {
                    self.num_nodes() - cw_pos
                }
            }
        })
    }

    /// Directed hop distance from `src` to `dst` along the circulation
    /// direction, or `None` if either node is off the loop.
    ///
    /// The distance from a node to itself is `0`.
    pub fn distance(&self, grid: &Grid, src: NodeId, dst: NodeId) -> Option<usize> {
        let (sx, sy) = grid.coord_of(src);
        let (dx, dy) = grid.coord_of(dst);
        let ps = self.position_of_coord(sx, sy)?;
        let pd = self.position_of_coord(dx, dy)?;
        let len = self.num_nodes();
        Some((pd + len - ps) % len)
    }

    /// The directed links `(from, to)` of the loop on `grid`, in circulation
    /// order.
    pub fn links(&self, grid: &Grid) -> Vec<(NodeId, NodeId)> {
        let nodes = self.perimeter_nodes(grid);
        let n = nodes.len();
        (0..n).map(|i| (nodes[i], nodes[(i + 1) % n])).collect()
    }

    /// The action encoding used by the DRL agent: `(x1, y1, x2, y2, dir)`
    /// with `dir` as the paper's bit (§4.2).
    pub fn encode(&self) -> (usize, usize, usize, usize, u8) {
        (self.x1, self.y1, self.x2, self.y2, self.dir.as_bit())
    }
}

impl fmt::Display for RectLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loop ({},{})-({},{}) {}",
            self.x1, self.y1, self.x2, self.y2, self.dir
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> Grid {
        Grid::square(4).unwrap()
    }

    #[test]
    fn degenerate_rejected() {
        assert!(matches!(
            RectLoop::new(1, 1, 1, 3, Direction::Clockwise),
            Err(TopologyError::DegenerateLoop { .. })
        ));
        assert!(matches!(
            RectLoop::new(0, 2, 3, 2, Direction::Clockwise),
            Err(TopologyError::DegenerateLoop { .. })
        ));
    }

    #[test]
    fn corners_normalized() {
        let a = RectLoop::new(3, 3, 0, 0, Direction::Clockwise).unwrap();
        let b = RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.top_left(), (0, 0));
        assert_eq!(a.bottom_right(), (3, 3));
        // Anti-diagonal corners normalize to the same rectangle too.
        let c = RectLoop::new(3, 0, 0, 3, Direction::Clockwise).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn perimeter_count_matches_formula() {
        for (x2, y2, expect) in [(1, 1, 4), (2, 1, 6), (3, 3, 12), (2, 3, 10)] {
            let l = RectLoop::new(0, 0, x2, y2, Direction::Clockwise).unwrap();
            assert_eq!(l.num_nodes(), expect);
            assert_eq!(l.perimeter_coords().len(), expect);
        }
    }

    #[test]
    fn clockwise_perimeter_order_2x2() {
        let l = RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap();
        assert_eq!(l.perimeter_coords(), vec![(0, 0), (1, 0), (1, 1), (0, 1)]);
    }

    #[test]
    fn counterclockwise_perimeter_order_2x2() {
        let l = RectLoop::new(0, 0, 1, 1, Direction::Counterclockwise).unwrap();
        assert_eq!(l.perimeter_coords(), vec![(0, 0), (0, 1), (1, 1), (1, 0)]);
    }

    #[test]
    fn perimeter_is_connected_cycle() {
        let g = grid4();
        for dir in [Direction::Clockwise, Direction::Counterclockwise] {
            let l = RectLoop::new(1, 0, 3, 2, dir).unwrap();
            let coords = l.perimeter_coords();
            for i in 0..coords.len() {
                let (ax, ay) = coords[i];
                let (bx, by) = coords[(i + 1) % coords.len()];
                assert_eq!(
                    ax.abs_diff(bx) + ay.abs_diff(by),
                    1,
                    "consecutive perimeter nodes must be grid neighbours"
                );
            }
            // All perimeter coords must satisfy contains_coord.
            for &(x, y) in &coords {
                assert!(l.contains_coord(x, y));
            }
            let _ = g;
        }
    }

    #[test]
    fn position_matches_perimeter_enumeration() {
        for dir in [Direction::Clockwise, Direction::Counterclockwise] {
            let l = RectLoop::new(0, 1, 2, 3, dir).unwrap();
            for (i, (x, y)) in l.perimeter_coords().into_iter().enumerate() {
                assert_eq!(l.position_of_coord(x, y), Some(i), "({x},{y}) dir {dir}");
            }
        }
    }

    #[test]
    fn distance_asymmetric_on_unidirectional_loop() {
        let g = grid4();
        let l = RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap();
        let a = g.node_at(0, 0);
        let b = g.node_at(0, 1); // directly below a: last perimeter node CW
        assert_eq!(l.distance(&g, a, b), Some(11));
        assert_eq!(l.distance(&g, b, a), Some(1));
        assert_eq!(l.distance(&g, a, a), Some(0));
    }

    #[test]
    fn distance_none_off_loop() {
        let g = grid4();
        let l = RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap();
        let inner = g.node_at(1, 1);
        assert_eq!(l.distance(&g, inner, g.node_at(0, 0)), None);
        assert_eq!(l.distance(&g, g.node_at(0, 0), inner), None);
    }

    #[test]
    fn reversed_flips_distance() {
        let g = grid4();
        let l = RectLoop::new(1, 1, 3, 3, Direction::Clockwise).unwrap();
        let r = l.reversed();
        let a = g.node_at(1, 1);
        let b = g.node_at(3, 3);
        let d_fwd = l.distance(&g, a, b).unwrap();
        let d_rev = r.distance(&g, a, b).unwrap();
        assert_eq!(d_fwd + d_rev, l.num_nodes());
    }

    #[test]
    fn links_form_cycle() {
        let g = grid4();
        let l = RectLoop::new(0, 0, 2, 2, Direction::Counterclockwise).unwrap();
        let links = l.links(&g);
        assert_eq!(links.len(), l.num_nodes());
        // Each node appears exactly once as a source and once as a sink.
        let mut out = vec![0usize; g.len()];
        let mut inc = vec![0usize; g.len()];
        for (a, b) in links {
            out[a] += 1;
            inc[b] += 1;
        }
        for n in g.nodes() {
            let expect = usize::from(l.contains(&g, n));
            assert_eq!(out[n], expect);
            assert_eq!(inc[n], expect);
        }
    }

    #[test]
    fn bounds_check() {
        let g = grid4();
        let l = RectLoop::new(0, 0, 4, 2, Direction::Clockwise).unwrap();
        assert!(matches!(
            l.check_on(&g),
            Err(TopologyError::LoopOutOfBounds { .. })
        ));
        let ok = RectLoop::new(0, 0, 3, 2, Direction::Clockwise).unwrap();
        assert!(ok.check_on(&g).is_ok());
    }

    #[test]
    fn encode_round_trip() {
        let l = RectLoop::new(1, 0, 3, 2, Direction::Counterclockwise).unwrap();
        let (x1, y1, x2, y2, d) = l.encode();
        let l2 = RectLoop::new(x1, y1, x2, y2, Direction::from_bit(d)).unwrap();
        assert_eq!(l, l2);
    }

    #[test]
    fn contains_coord_edges_only() {
        let l = RectLoop::new(0, 0, 2, 2, Direction::Clockwise).unwrap();
        assert!(l.contains_coord(0, 0));
        assert!(l.contains_coord(1, 0));
        assert!(l.contains_coord(2, 1));
        assert!(
            !l.contains_coord(1, 1),
            "interior nodes are not on the loop"
        );
        assert!(!l.contains_coord(3, 0));
    }
}
