//! Background reference fabrics: single-ring and hierarchical-ring NoCs.
//!
//! The paper's §2.1 surveys three router-based organizations before
//! motivating routerless designs: single ring (Figure 1a), mesh (Figure 1b,
//! see [`crate::mesh`]), and hierarchical ring (Figure 1c). This module
//! provides idealized hop-count models of the two ring organizations so
//! examples and benches can contrast them with routerless topologies.

use crate::{Grid, NodeId, TopologyError};

/// A Hamiltonian cycle visiting every node of `grid` exactly once, as used
/// by an idealized single-ring NoC. Nodes appear in traversal order;
/// consecutive nodes (and last→first) are grid neighbours.
///
/// # Errors
///
/// A grid graph admits a Hamiltonian cycle only if at least one dimension is
/// even (it is bipartite with equal-size classes required). Returns
/// [`TopologyError::InvalidGrid`] for odd×odd or degenerate (1-wide) grids.
pub fn single_ring_order(grid: &Grid) -> Result<Vec<NodeId>, TopologyError> {
    let (w, h) = (grid.width(), grid.height());
    let invalid = || TopologyError::InvalidGrid {
        width: w,
        height: h,
    };
    if w < 2 || h < 2 {
        return Err(invalid());
    }
    if h % 2 == 0 {
        Ok(snake_cycle(grid, false))
    } else if w % 2 == 0 {
        Ok(snake_cycle(grid, true))
    } else {
        Err(invalid())
    }
}

/// Builds the cycle: across the top row, boustrophedon through the remaining
/// rows over columns `1..w`, then back up column 0. When `transpose` is set
/// the construction swaps x and y (used when only the width is even).
fn snake_cycle(grid: &Grid, transpose: bool) -> Vec<NodeId> {
    let (w, h) = if transpose {
        (grid.height(), grid.width())
    } else {
        (grid.width(), grid.height())
    };
    let at = |x: usize, y: usize| {
        if transpose {
            grid.node_at(y, x)
        } else {
            grid.node_at(x, y)
        }
    };
    let mut order = Vec::with_capacity(w * h);
    for x in 0..w {
        order.push(at(x, 0));
    }
    for y in 1..h {
        if y % 2 == 1 {
            for x in (1..w).rev() {
                order.push(at(x, y));
            }
        } else {
            for x in 1..w {
                order.push(at(x, y));
            }
        }
    }
    for y in (1..h).rev() {
        order.push(at(0, y));
    }
    order
}

/// Directed hop count from `src` to `dst` on the single ring described by
/// `order`, or `None` if either node is absent.
pub fn single_ring_hops(order: &[NodeId], src: NodeId, dst: NodeId) -> Option<usize> {
    let ps = order.iter().position(|&n| n == src)?;
    let pd = order.iter().position(|&n| n == dst)?;
    Some((pd + order.len() - ps) % order.len())
}

/// Average hop count of a unidirectional single ring over all ordered pairs
/// of distinct nodes: `n / 2` for `n` nodes.
pub fn single_ring_average_hops(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        n as f64 / 2.0
    }
}

/// An idealized hierarchical-ring NoC: the grid is split into quadrants,
/// each served by a unidirectional local ring; a global ring links one
/// bridge router per quadrant, which forwards packets between ring levels
/// (Figure 1c).
#[derive(Debug, Clone)]
pub struct HierarchicalRing {
    grid: Grid,
    /// Local rings as cyclic node orders.
    locals: Vec<Vec<NodeId>>,
    /// Global ring as a cyclic order of bridge nodes (one per local ring).
    global: Vec<NodeId>,
}

impl HierarchicalRing {
    /// Builds the quadrant decomposition for `grid`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidGrid`] if either dimension is < 2.
    pub fn new(grid: Grid) -> Result<Self, TopologyError> {
        let (w, h) = (grid.width(), grid.height());
        if w < 2 || h < 2 {
            return Err(TopologyError::InvalidGrid {
                width: w,
                height: h,
            });
        }
        let (mx, my) = (w.div_ceil(2), h.div_ceil(2));
        let quads = [
            (0..mx, 0..my),
            (mx..w, 0..my),
            (mx..w, my..h),
            (0..mx, my..h),
        ];
        let mut locals = Vec::with_capacity(4);
        let mut global = Vec::with_capacity(4);
        for (xs, ys) in quads {
            if xs.is_empty() || ys.is_empty() {
                continue;
            }
            // Cyclic order: boustrophedon scan of the quadrant. Rings are
            // dedicated wires, so the cyclic order need not be a grid cycle.
            let mut ring = Vec::new();
            for (i, y) in ys.clone().enumerate() {
                let row: Vec<NodeId> = xs.clone().map(|x| grid.node_at(x, y)).collect();
                if i % 2 == 0 {
                    ring.extend(row);
                } else {
                    ring.extend(row.into_iter().rev());
                }
            }
            global.push(ring[0]);
            locals.push(ring);
        }
        Ok(HierarchicalRing {
            grid,
            locals,
            global,
        })
    }

    /// The local rings as cyclic node orders.
    pub fn local_rings(&self) -> &[Vec<NodeId>] {
        &self.locals
    }

    /// The bridge nodes forming the global ring, in cyclic order.
    pub fn global_ring(&self) -> &[NodeId] {
        &self.global
    }

    /// Hop count from `src` to `dst`: local hops to the bridge, global hops
    /// between bridges, local hops to the destination. Intra-ring pairs take
    /// the direct local path.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range for the grid.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        assert!(src < self.grid.len() && dst < self.grid.len());
        if src == dst {
            return 0;
        }
        let qs = self.quadrant_of(src);
        let qd = self.quadrant_of(dst);
        if qs == qd {
            return cycle_dist(&self.locals[qs], src, dst);
        }
        let to_bridge = cycle_dist(&self.locals[qs], src, self.global[qs]);
        let global = cycle_dist_by_index(self.global.len(), qs, qd);
        let from_bridge = cycle_dist(&self.locals[qd], self.global[qd], dst);
        to_bridge + global + from_bridge
    }

    /// Average hop count over all ordered pairs of distinct nodes.
    pub fn average_hops(&self) -> f64 {
        let n = self.grid.len();
        let mut total = 0usize;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    total += self.hops(s, d);
                }
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }

    fn quadrant_of(&self, node: NodeId) -> usize {
        self.locals
            .iter()
            .position(|r| r.contains(&node))
            .expect("every node belongs to a quadrant")
    }
}

fn cycle_dist(order: &[NodeId], a: NodeId, b: NodeId) -> usize {
    let pa = order.iter().position(|&n| n == a).expect("node on ring");
    let pb = order.iter().position(|&n| n == b).expect("node on ring");
    (pb + order.len() - pa) % order.len()
}

fn cycle_dist_by_index(len: usize, a: usize, b: usize) -> usize {
    (b + len - a) % len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ring_is_hamiltonian_cycle() {
        for (w, h) in [(2, 2), (4, 4), (3, 4), (4, 3), (6, 5)] {
            let g = Grid::new(w, h).unwrap();
            let order = single_ring_order(&g).unwrap();
            assert_eq!(order.len(), g.len(), "{w}x{h} visits all nodes");
            let mut seen = vec![false; g.len()];
            for &n in &order {
                assert!(!seen[n], "{w}x{h} node {n} repeated");
                seen[n] = true;
            }
            for i in 0..order.len() {
                let a = order[i];
                let b = order[(i + 1) % order.len()];
                assert_eq!(g.manhattan(a, b), 1, "{w}x{h}: {a}->{b} not adjacent");
            }
        }
    }

    #[test]
    fn odd_odd_grid_has_no_cycle() {
        let g = Grid::new(3, 3).unwrap();
        assert!(single_ring_order(&g).is_err());
        let g = Grid::new(1, 4).unwrap();
        assert!(single_ring_order(&g).is_err());
    }

    #[test]
    fn single_ring_distances() {
        let g = Grid::square(4).unwrap();
        let order = single_ring_order(&g).unwrap();
        let a = order[0];
        let b = order[5];
        assert_eq!(single_ring_hops(&order, a, b), Some(5));
        assert_eq!(single_ring_hops(&order, b, a), Some(11));
        assert_eq!(single_ring_average_hops(16), 8.0);
    }

    #[test]
    fn hierarchical_ring_covers_all_nodes() {
        let g = Grid::square(8).unwrap();
        let hr = HierarchicalRing::new(g).unwrap();
        let covered: usize = hr.local_rings().iter().map(Vec::len).sum();
        assert_eq!(covered, g.len());
        assert_eq!(hr.global_ring().len(), 4);
    }

    #[test]
    fn hierarchical_beats_single_ring_on_average() {
        // The whole point of hierarchy: shorter average journeys than one
        // big ring once the network is large enough.
        let g = Grid::square(8).unwrap();
        let hr = HierarchicalRing::new(g).unwrap();
        assert!(hr.average_hops() < single_ring_average_hops(g.len()));
    }

    #[test]
    fn hierarchical_intra_quadrant_is_local() {
        let g = Grid::square(4).unwrap();
        let hr = HierarchicalRing::new(g).unwrap();
        // Nodes (0,0) and (1,1) share the top-left quadrant ring of length 4.
        let a = g.node_at(0, 0);
        let b = g.node_at(1, 1);
        assert!(hr.hops(a, b) < 4);
        assert_eq!(hr.hops(a, a), 0);
    }
}
