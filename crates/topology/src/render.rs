//! ASCII rendering of routerless topologies, for experiment output and
//! debugging (e.g. reproducing the paper's Figure 9 visually).

use crate::{NodeId, Topology};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders the topology as an ASCII grid. Nodes are `o`; each physical
/// channel between adjacent nodes is annotated with the number of loop
/// wires using it (both directions summed), or left blank when unused.
///
/// # Example
///
/// ```
/// use rlnoc_topology::{render, Grid, RectLoop, Direction, Topology};
/// # fn main() -> Result<(), rlnoc_topology::TopologyError> {
/// let topo = Topology::from_loops(
///     Grid::square(2)?,
///     [RectLoop::new(0, 0, 1, 1, Direction::Clockwise)?],
/// )?;
/// let art = render::render_ascii(&topo);
/// assert!(art.contains('o'));
/// # Ok(())
/// # }
/// ```
pub fn render_ascii(topo: &Topology) -> String {
    let grid = topo.grid();
    let (w, h) = (grid.width(), grid.height());
    // Count loop traversals per undirected physical segment.
    let mut seg: HashMap<(NodeId, NodeId), u32> = HashMap::new();
    for ring in topo.loops() {
        for (a, b) in ring.links(grid) {
            let key = (a.min(b), a.max(b));
            *seg.entry(key).or_insert(0) += 1;
        }
    }
    let count = |a: NodeId, b: NodeId| seg.get(&(a.min(b), a.max(b))).copied().unwrap_or(0);

    let mut out = String::new();
    for y in 0..h {
        // Node row with horizontal channels.
        for x in 0..w {
            out.push('o');
            if x + 1 < w {
                let c = count(grid.node_at(x, y), grid.node_at(x + 1, y));
                if c == 0 {
                    out.push_str("     ");
                } else {
                    let _ = write!(out, "{:-<5}", format!("--{c}"));
                }
            }
        }
        out.push('\n');
        // Vertical channel row.
        if y + 1 < h {
            for x in 0..w {
                let c = count(grid.node_at(x, y), grid.node_at(x, y + 1));
                if c == 0 {
                    out.push(' ');
                } else {
                    out.push('|');
                }
                if x + 1 < w {
                    out.push_str("     ");
                }
            }
            out.push('\n');
            for x in 0..w {
                let c = count(grid.node_at(x, y), grid.node_at(x, y + 1));
                if c == 0 {
                    out.push(' ');
                } else {
                    let digits = format!("{c}");
                    out.push_str(&digits[..1]);
                }
                if x + 1 < w {
                    out.push_str("     ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// A one-line-per-loop summary sorted by loop size (largest first),
/// showing corners, direction, and perimeter length.
pub fn describe_loops(topo: &Topology) -> String {
    let mut loops: Vec<_> = topo.loops().to_vec();
    loops.sort_by_key(|l| std::cmp::Reverse(l.num_nodes()));
    let mut out = String::new();
    for l in loops {
        let _ = writeln!(out, "{l} ({} nodes)", l.num_nodes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, Grid, RectLoop};

    fn sample() -> Topology {
        Topology::from_loops(
            Grid::square(3).unwrap(),
            [
                RectLoop::new(0, 0, 2, 2, Direction::Clockwise).unwrap(),
                RectLoop::new(0, 0, 1, 1, Direction::Counterclockwise).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn render_has_all_nodes() {
        let art = render_ascii(&sample());
        assert_eq!(art.matches('o').count(), 9);
    }

    #[test]
    fn render_marks_shared_channels() {
        // The (0,0)-(1,0) channel carries both loops → annotated with 2.
        let art = render_ascii(&sample());
        assert!(art.contains("--2--"), "art:\n{art}");
        // The outer ring's exclusive channels carry 1.
        assert!(art.contains("--1--"), "art:\n{art}");
    }

    #[test]
    fn render_blank_for_unused_channels() {
        // Center-to-right channel (1,1)-(2,1) is used by no loop.
        let g = Grid::square(3).unwrap();
        let t = Topology::from_loops(
            g,
            [RectLoop::new(0, 0, 2, 2, Direction::Clockwise).unwrap()],
        )
        .unwrap();
        let art = render_ascii(&t);
        // Middle row reads: o on the left edge, gap, center o, gap, right o.
        let mid = art.lines().nth(3).unwrap();
        assert!(mid.contains("o     o"), "middle row: {mid}");
    }

    #[test]
    fn describe_sorts_by_size() {
        let txt = describe_loops(&sample());
        let first = txt.lines().next().unwrap();
        assert!(first.contains("(8 nodes)"), "{txt}");
    }
}
