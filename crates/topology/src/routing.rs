use crate::{FaultSet, NodeId, ReachabilityReport, Topology};
use serde::{Deserialize, Serialize};

/// How the per-source lookup table picks among candidate loops.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Always the fewest-hop loop; ties break toward the earlier-added
    /// loop. Deterministic and hop-optimal, but adversarial patterns can
    /// pile every flow onto one loop.
    #[default]
    Shortest,
    /// Among loops within `slack` hops of the best, pick the one with the
    /// least traffic already assigned (greedy global balancing, weighting
    /// each assignment by its hop count). `slack = 0` balances only exact
    /// ties, trading no latency for better loop utilization.
    Balanced {
        /// Extra hops tolerated relative to the shortest candidate.
        slack: usize,
    },
}

/// A single routing decision: which loop a source injects on to reach a
/// destination, and how many hops the journey takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    /// Index into [`Topology::loops`] of the loop to inject on.
    pub loop_index: usize,
    /// Directed hop count along that loop.
    pub hops: usize,
}

/// The per-source lookup table of a routerless NoC.
///
/// Routerless designs perform *all* routing at the source (§2.1): each node
/// holds a small table mapping every destination to the loop that reaches it
/// in the fewest hops. This type precomputes that table for a whole
/// [`Topology`].
///
/// # Example
///
/// ```
/// use rlnoc_topology::{Grid, Topology, RectLoop, Direction, RoutingTable};
/// # fn main() -> Result<(), rlnoc_topology::TopologyError> {
/// let grid = Grid::square(2)?;
/// let topo = Topology::from_loops(
///     grid,
///     [RectLoop::new(0, 0, 1, 1, Direction::Clockwise)?],
/// )?;
/// let table = RoutingTable::build(&topo);
/// let route = table.route(0, 3).expect("connected");
/// assert_eq!(route.loop_index, 0);
/// assert_eq!(route.hops, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTable {
    n: usize,
    entries: Vec<Option<Route>>,
}

impl RoutingTable {
    /// Precomputes best-loop routes for every ordered pair in `topo` with
    /// the default [`RoutingPolicy::Shortest`] policy.
    ///
    /// Ties between loops with equal hop count are broken toward the
    /// earlier-added loop, matching a deterministic hardware table.
    pub fn build(topo: &Topology) -> Self {
        RoutingTable::build_with(topo, RoutingPolicy::Shortest)
    }

    /// Precomputes routes under the given [`RoutingPolicy`].
    pub fn build_with(topo: &Topology, policy: RoutingPolicy) -> Self {
        RoutingTable::build_filtered(topo, policy, None)
    }

    /// Re-derives the table over surviving loops only, excluding every
    /// route that uses a failed loop or crosses a failed directed link,
    /// with the default [`RoutingPolicy::Shortest`] policy.
    ///
    /// Returns the degraded table together with a [`ReachabilityReport`]
    /// summarising what connectivity remains, so callers can decide how
    /// to degrade (reroute, drop traffic, alarm) instead of panicking on
    /// partial connectivity. With an empty [`FaultSet`] the returned
    /// table is identical to [`RoutingTable::build`].
    pub fn rebuild_excluding(topo: &Topology, faults: &FaultSet) -> (Self, ReachabilityReport) {
        RoutingTable::rebuild_excluding_with(topo, faults, RoutingPolicy::Shortest)
    }

    /// [`RoutingTable::rebuild_excluding`] under an explicit policy.
    pub fn rebuild_excluding_with(
        topo: &Topology,
        faults: &FaultSet,
        policy: RoutingPolicy,
    ) -> (Self, ReachabilityReport) {
        let table = RoutingTable::build_filtered(topo, policy, Some(faults));
        let report = table.reachability_report();
        (table, report)
    }

    /// Summarises this table's coverage as a [`ReachabilityReport`].
    pub fn reachability_report(&self) -> ReachabilityReport {
        let n = self.n;
        let total_pairs = n * n - n;
        let mut reachable_pairs = 0;
        let mut disconnected = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                if self.entries[src * n + dst].is_some() {
                    reachable_pairs += 1;
                } else {
                    disconnected.push((src, dst));
                }
            }
        }
        ReachabilityReport {
            total_pairs,
            reachable_pairs,
            average_hops: self.average_hops(),
            disconnected,
        }
    }

    /// Shared construction path: enumerate candidate routes per ordered
    /// pair (optionally dropping those a `FaultSet` invalidates), then
    /// select per the policy.
    fn build_filtered(topo: &Topology, policy: RoutingPolicy, faults: Option<&FaultSet>) -> Self {
        let grid = topo.grid();
        let n = grid.len();
        // Candidate routes per ordered pair (loop index, hops).
        let mut candidates: Vec<Vec<Route>> = vec![Vec::new(); n * n];
        for (i, ring) in topo.loops().iter().enumerate() {
            if faults.is_some_and(|f| f.loop_failed(i)) {
                continue;
            }
            let nodes = ring.perimeter_nodes(grid);
            let len = nodes.len();
            // Positions (in loop order) of nodes whose outgoing link on
            // this loop is cut. A route from position pi spanning `hops`
            // links is dead iff some cut sits within [pi, pi + hops).
            let cut_positions: Vec<usize> = match faults {
                Some(f) if f.loop_has_link_faults(i) => nodes
                    .iter()
                    .enumerate()
                    .filter(|&(_, &node)| f.link_failed(i, node))
                    .map(|(p, _)| p)
                    .collect(),
                _ => Vec::new(),
            };
            for (pi, &a) in nodes.iter().enumerate() {
                for (pj, &b) in nodes.iter().enumerate() {
                    if a == b {
                        continue;
                    }
                    let hops = (pj + len - pi) % len;
                    if cut_positions.iter().any(|&pf| (pf + len - pi) % len < hops) {
                        continue;
                    }
                    candidates[a * n + b].push(Route {
                        loop_index: i,
                        hops,
                    });
                }
            }
        }
        let mut entries: Vec<Option<Route>> = vec![None; n * n];
        match policy {
            RoutingPolicy::Shortest => {
                for (cell, cands) in entries.iter_mut().zip(&candidates) {
                    *cell = cands.iter().copied().min_by_key(|r| (r.hops, r.loop_index));
                }
            }
            RoutingPolicy::Balanced { slack } => {
                // Greedy global balancing: assign pairs in node order,
                // weighting each loop by the hop-traffic already routed on
                // it, and choosing the least-loaded near-shortest loop.
                let mut load = vec![0u64; topo.loops().len()];
                for (cell, cands) in entries.iter_mut().zip(&candidates) {
                    let Some(best) = cands.iter().map(|r| r.hops).min() else {
                        continue;
                    };
                    let chosen = cands
                        .iter()
                        .copied()
                        .filter(|r| r.hops <= best + slack)
                        .min_by_key(|r| (load[r.loop_index], r.hops, r.loop_index))
                        .expect("at least the shortest candidate qualifies");
                    load[chosen.loop_index] += chosen.hops as u64;
                    *cell = Some(chosen);
                }
            }
        }
        RoutingTable { n, entries }
    }

    /// The route from `src` to `dst`, or `None` if unconnected (or
    /// `src == dst`).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        assert!(src < self.n && dst < self.n, "node out of range");
        self.entries[src * self.n + dst]
    }

    /// Number of nodes the table covers.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Whether every ordered pair of distinct nodes has a route.
    pub fn is_complete(&self) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, e)| e.is_some() || i / self.n == i % self.n)
    }

    /// Average hop count over all routed pairs, or `None` if no pair is
    /// routed. Agrees with
    /// [`HopMatrix::average_connected_hops`](crate::HopMatrix::average_connected_hops).
    pub fn average_hops(&self) -> Option<f64> {
        let mut total = 0u64;
        let mut count = 0u64;
        for e in self.entries.iter().flatten() {
            total += e.hops as u64;
            count += 1;
        }
        (count > 0).then(|| total as f64 / count as f64)
    }

    /// Per-source table occupancy: how many destinations each source can
    /// reach. Useful for sizing the hardware lookup table.
    pub fn occupancy(&self, src: NodeId) -> usize {
        assert!(src < self.n, "node out of range");
        self.entries[src * self.n..(src + 1) * self.n]
            .iter()
            .filter(|e| e.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, Grid, RectLoop};

    fn topo_4x4_two_rings() -> Topology {
        let g = Grid::square(4).unwrap();
        Topology::from_loops(
            g,
            [
                RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap(),
                RectLoop::new(0, 0, 3, 3, Direction::Counterclockwise).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn picks_shorter_direction() {
        let t = topo_4x4_two_rings();
        let g = *t.grid();
        let table = RoutingTable::build(&t);
        let a = g.node_at(0, 0);
        let b = g.node_at(3, 0);
        // CW reaches b in 3 hops, CCW in 9: table must pick CW (index 0).
        let r = table.route(a, b).unwrap();
        assert_eq!(
            r,
            Route {
                loop_index: 0,
                hops: 3
            }
        );
        // And the reverse pair prefers CCW.
        let r = table.route(b, a).unwrap();
        assert_eq!(
            r,
            Route {
                loop_index: 1,
                hops: 3
            }
        );
    }

    #[test]
    fn agrees_with_hop_matrix() {
        let t = topo_4x4_two_rings();
        let table = RoutingTable::build(&t);
        let hops = t.hop_matrix();
        for s in t.grid().nodes() {
            for d in t.grid().nodes() {
                if s == d {
                    assert_eq!(table.route(s, d), None);
                    continue;
                }
                match table.route(s, d) {
                    Some(r) => assert_eq!(r.hops as u32, hops.hops(s, d)),
                    None => assert!(!hops.is_connected(s, d)),
                }
            }
        }
    }

    #[test]
    fn incomplete_table_reports_gaps() {
        let g = Grid::square(4).unwrap();
        let t = Topology::from_loops(
            g,
            [RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap()],
        )
        .unwrap();
        let table = RoutingTable::build(&t);
        assert!(!table.is_complete());
        let corner = g.node_at(0, 0);
        let inner = g.node_at(1, 1);
        assert_eq!(table.route(corner, inner), None);
        assert_eq!(table.occupancy(corner), 11, "perimeter minus itself");
        assert_eq!(table.occupancy(inner), 0);
    }

    #[test]
    fn balanced_zero_slack_preserves_hop_optimality() {
        let t = topo_4x4_two_rings();
        let shortest = RoutingTable::build(&t);
        let balanced = RoutingTable::build_with(&t, RoutingPolicy::Balanced { slack: 0 });
        // Same hop count on every pair, possibly different loop choices.
        for s in t.grid().nodes() {
            for d in t.grid().nodes() {
                match (shortest.route(s, d), balanced.route(s, d)) {
                    (Some(a), Some(b)) => assert_eq!(a.hops, b.hops, "pair ({s},{d})"),
                    (None, None) => {}
                    other => panic!("coverage differs on ({s},{d}): {other:?}"),
                }
            }
        }
        assert!(
            (shortest.average_hops().unwrap() - balanced.average_hops().unwrap()).abs() < 1e-12
        );
    }

    #[test]
    fn balanced_spreads_load_across_tied_loops() {
        // Two identical-geometry loops (opposite directions) on a 2x2 grid:
        // every pair has a 2-hop... no — on a 4-cycle, distances are 1,2,3
        // CW and 3,2,1 CCW, tying only at distance 2. Check the diagonal
        // pairs (distance 2 both ways) split across loops under balancing.
        let g = Grid::square(2).unwrap();
        let t = Topology::from_loops(
            g,
            [
                RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap(),
                RectLoop::new(0, 0, 1, 1, Direction::Counterclockwise).unwrap(),
            ],
        )
        .unwrap();
        let table = RoutingTable::build_with(&t, RoutingPolicy::Balanced { slack: 0 });
        let mut used = [0usize; 2];
        for s in g.nodes() {
            for d in g.nodes() {
                if let Some(r) = table.route(s, d) {
                    used[r.loop_index] += 1;
                }
            }
        }
        assert!(
            used[0] > 0 && used[1] > 0,
            "both loops must carry traffic: {used:?}"
        );
    }

    #[test]
    fn balanced_slack_trades_hops_for_balance() {
        let t = topo_4x4_two_rings();
        let relaxed = RoutingTable::build_with(&t, RoutingPolicy::Balanced { slack: 6 });
        let strict = RoutingTable::build(&t);
        // Slack can only increase (or keep) average hops, never lose
        // coverage.
        assert!(relaxed.is_complete() == strict.is_complete());
        assert!(relaxed.average_hops().unwrap() + 1e-12 >= strict.average_hops().unwrap());
    }

    #[test]
    fn average_matches_matrix_average() {
        let t = topo_4x4_two_rings();
        let table = RoutingTable::build(&t);
        let expect = t.hop_matrix().average_connected_hops().unwrap();
        let got = table.average_hops().unwrap();
        assert!((expect - got).abs() < 1e-9);
    }

    #[test]
    fn zero_fault_rebuild_is_identical_to_build() {
        let t = topo_4x4_two_rings();
        let faults = FaultSet::new();
        let (degraded, report) = RoutingTable::rebuild_excluding(&t, &faults);
        assert_eq!(degraded, RoutingTable::build(&t));
        assert_eq!(report.total_pairs, 16 * 15);
        // Perimeter rings never reach the four inner nodes; the report
        // must agree exactly with the healthy table's coverage.
        assert_eq!(report, RoutingTable::build(&t).reachability_report());
        // And under the balanced policy too.
        let policy = RoutingPolicy::Balanced { slack: 2 };
        let (degraded, _) = RoutingTable::rebuild_excluding_with(&t, &faults, policy);
        assert_eq!(degraded, RoutingTable::build_with(&t, policy));
    }

    #[test]
    fn failed_loop_reroutes_onto_survivor() {
        let t = topo_4x4_two_rings();
        let mut faults = FaultSet::new();
        faults.fail_loop(0);
        let (table, report) = RoutingTable::rebuild_excluding(&t, &faults);
        // The CCW twin covers the same (perimeter) pairs alone, at worse
        // average hops — every surviving route must use loop 1.
        let healthy_report = RoutingTable::build(&t).reachability_report();
        assert_eq!(report.reachable_pairs, healthy_report.reachable_pairs);
        for s in t.grid().nodes() {
            for d in t.grid().nodes() {
                if let Some(r) = table.route(s, d) {
                    assert_eq!(r.loop_index, 1);
                }
            }
        }
        let healthy = RoutingTable::build(&t).average_hops().unwrap();
        assert!(report.average_hops.unwrap() > healthy);
    }

    #[test]
    fn all_loops_failed_disconnects_everything() {
        let t = topo_4x4_two_rings();
        let mut faults = FaultSet::new();
        faults.fail_loop(0).fail_loop(1);
        let (table, report) = RoutingTable::rebuild_excluding(&t, &faults);
        assert_eq!(report.reachable_pairs, 0);
        assert_eq!(report.disconnected_pairs(), 16 * 15);
        assert_eq!(report.average_hops, None);
        assert!(!table.is_complete());
    }

    #[test]
    fn failed_link_blocks_only_crossing_routes() {
        // One CW loop on a 2x2 grid: nodes in loop order 0,1,3,2. Cut the
        // link leaving node 1. Routes that cross it (e.g. 0->3, 1->2) die;
        // upstream arcs (e.g. 0->1, 3->2) survive.
        let g = Grid::square(2).unwrap();
        let t = Topology::from_loops(
            g,
            [RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap()],
        )
        .unwrap();
        let order = t.loops()[0].perimeter_nodes(&g);
        let cut_from = order[1];
        let mut faults = FaultSet::new();
        faults.fail_link(0, cut_from);
        let (table, report) = RoutingTable::rebuild_excluding(&t, &faults);
        // Surviving pairs are exactly the arcs not spanning the cut: from
        // position p to position q (p != q) going forward without passing
        // position 1->2's link. Enumerate via the oracle.
        let len = order.len();
        let cut_pos = 1;
        let mut expect_reachable = 0;
        for pi in 0..len {
            for pj in 0..len {
                if pi == pj {
                    continue;
                }
                let hops = (pj + len - pi) % len;
                let crosses = (cut_pos + len - pi) % len < hops;
                assert_eq!(
                    table.route(order[pi], order[pj]).is_some(),
                    !crosses,
                    "pair positions ({pi},{pj})"
                );
                if !crosses {
                    expect_reachable += 1;
                }
            }
        }
        assert_eq!(report.reachable_pairs, expect_reachable);
        assert_eq!(report.total_pairs, 12);
    }

    #[test]
    fn reachability_report_matches_table_queries() {
        let t = topo_4x4_two_rings();
        let mut faults = FaultSet::new();
        faults.fail_loop(1);
        let (table, report) = RoutingTable::rebuild_excluding(&t, &faults);
        assert_eq!(
            report.reachable_pairs + report.disconnected_pairs(),
            report.total_pairs
        );
        for &(s, d) in &report.disconnected {
            assert!(table.route(s, d).is_none());
        }
        assert_eq!(table.reachability_report(), report);
    }
}
