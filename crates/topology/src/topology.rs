use crate::{Grid, HopMatrix, NodeId, RectLoop, TopologyError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A routerless NoC topology: a set of unidirectional rectangular loops on a
/// grid, with the derived hop-count matrix and node-overlapping bookkeeping
/// kept incrementally up to date.
///
/// *Node overlapping* is the number of loops passing through a node's
/// interface — the paper's measure of wiring cost, which manufacturing
/// constraints cap (§2.1). [`Topology::add_loop_with_cap`] enforces such a
/// cap; [`Topology::add_loop`] does not.
///
/// # Example
///
/// ```
/// use rlnoc_topology::{Grid, Topology, RectLoop, Direction};
/// # fn main() -> Result<(), rlnoc_topology::TopologyError> {
/// let mut topo = Topology::new(Grid::square(4)?);
/// topo.add_loop(RectLoop::new(0, 0, 3, 3, Direction::Clockwise)?)?;
/// topo.add_loop(RectLoop::new(0, 0, 3, 3, Direction::Counterclockwise)?)?;
/// assert_eq!(topo.node_overlap(topo.grid().node_at(0, 0)), 2);
/// assert_eq!(topo.node_overlap(topo.grid().node_at(1, 1)), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    grid: Grid,
    loops: Vec<RectLoop>,
    hops: HopMatrix,
    overlap: Vec<u32>,
}

impl Topology {
    /// Creates an empty (fully disconnected) topology on `grid`.
    pub fn new(grid: Grid) -> Self {
        Topology {
            grid,
            loops: Vec::new(),
            hops: HopMatrix::new(grid),
            overlap: vec![0; grid.len()],
        }
    }

    /// Builds a topology from a list of loops.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while adding loops (out of
    /// bounds or duplicate).
    pub fn from_loops(
        grid: Grid,
        loops: impl IntoIterator<Item = RectLoop>,
    ) -> Result<Self, TopologyError> {
        let mut topo = Topology::new(grid);
        for l in loops {
            topo.add_loop(l)?;
        }
        Ok(topo)
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The loops currently placed, in insertion order.
    pub fn loops(&self) -> &[RectLoop] {
        &self.loops
    }

    /// The derived hop-count matrix.
    pub fn hop_matrix(&self) -> &HopMatrix {
        &self.hops
    }

    /// Whether `ring` is already present.
    pub fn contains_loop(&self, ring: &RectLoop) -> bool {
        self.loops.contains(ring)
    }

    /// Number of loops passing through `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_overlap(&self, node: NodeId) -> u32 {
        self.overlap[node]
    }

    /// The maximum node overlapping across the grid.
    pub fn max_overlap(&self) -> u32 {
        self.overlap.iter().copied().max().unwrap_or(0)
    }

    /// Per-node overlap counts, indexed by [`NodeId`].
    pub fn overlaps(&self) -> &[u32] {
        &self.overlap
    }

    /// Whether adding `ring` would push any perimeter node past `cap`.
    /// Returns the first offending node, if any.
    pub fn overlap_violation(&self, ring: &RectLoop, cap: u32) -> Option<NodeId> {
        ring.perimeter_nodes(&self.grid)
            .into_iter()
            .find(|&n| self.overlap[n] + 1 > cap)
    }

    /// Adds `ring` to the topology, updating hop counts and overlaps.
    ///
    /// # Errors
    ///
    /// - [`TopologyError::LoopOutOfBounds`] if the loop exceeds the grid;
    /// - [`TopologyError::DuplicateLoop`] if an identical loop (same
    ///   rectangle *and* direction) is already placed.
    pub fn add_loop(&mut self, ring: RectLoop) -> Result<(), TopologyError> {
        ring.check_on(&self.grid)?;
        if self.contains_loop(&ring) {
            return Err(TopologyError::DuplicateLoop);
        }
        for n in ring.perimeter_nodes(&self.grid) {
            self.overlap[n] += 1;
        }
        self.hops.apply_loop(&self.grid, &ring);
        self.loops.push(ring);
        Ok(())
    }

    /// Adds `ring` only if no node would exceed the node-overlapping `cap`.
    ///
    /// # Errors
    ///
    /// In addition to [`Topology::add_loop`]'s errors, returns
    /// [`TopologyError::OverlapExceeded`] naming the first offending node.
    pub fn add_loop_with_cap(&mut self, ring: RectLoop, cap: u32) -> Result<(), TopologyError> {
        ring.check_on(&self.grid)?;
        if let Some(node) = self.overlap_violation(&ring, cap) {
            return Err(TopologyError::OverlapExceeded {
                node,
                cap: cap as usize,
            });
        }
        self.add_loop(ring)
    }

    /// Whether every ordered pair of distinct nodes can communicate.
    pub fn is_fully_connected(&self) -> bool {
        self.hops.is_fully_connected()
    }

    /// Average hop count over all ordered pairs (sentinel-weighted when
    /// incomplete); see [`HopMatrix::average_hops`].
    pub fn average_hops(&self) -> f64 {
        self.hops.average_hops()
    }

    /// The loops that carry traffic from `src` to `dst`, with their directed
    /// distances, sorted by distance (shortest first).
    pub fn routes(&self, src: NodeId, dst: NodeId) -> Vec<(usize, usize)> {
        let mut found: Vec<(usize, usize)> = self
            .loops
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.distance(&self.grid, src, dst).map(|d| (i, d)))
            .filter(|&(_, d)| src == dst || d > 0)
            .collect();
        if src == dst {
            return Vec::new();
        }
        found.sort_by_key(|&(_, d)| d);
        found
    }

    /// Total wiring length in links summed over all loops — a proxy for the
    /// metal resources the design consumes.
    pub fn total_wire_length(&self) -> usize {
        self.loops.iter().map(RectLoop::num_nodes).sum()
    }

    /// Number of loop indices passing through each node, for interface
    /// sizing: the node's input-buffer count equals its overlap in the
    /// paper's REC-style interface (one flit buffer per loop).
    pub fn loops_through(&self, node: NodeId) -> Vec<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains(&self.grid, node))
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the loop set as an ASCII summary (one loop per line).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} with {} loops, max overlap {}, avg hops {:.3}",
            self.grid,
            self.loops.len(),
            self.max_overlap(),
            self.average_hops()
        );
        for l in &self.loops {
            let _ = writeln!(s, "  {l}");
        }
        s
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    fn outer(n: usize, dir: Direction) -> RectLoop {
        RectLoop::new(0, 0, n - 1, n - 1, dir).unwrap()
    }

    #[test]
    fn add_and_query_loops() {
        let mut t = Topology::new(Grid::square(4).unwrap());
        t.add_loop(outer(4, Direction::Clockwise)).unwrap();
        assert_eq!(t.loops().len(), 1);
        assert_eq!(t.total_wire_length(), 12);
        assert!(!t.is_fully_connected(), "inner nodes are isolated");
    }

    #[test]
    fn duplicate_rejected_but_reverse_allowed() {
        let mut t = Topology::new(Grid::square(4).unwrap());
        t.add_loop(outer(4, Direction::Clockwise)).unwrap();
        assert_eq!(
            t.add_loop(outer(4, Direction::Clockwise)),
            Err(TopologyError::DuplicateLoop)
        );
        // Same rectangle, opposite direction: a distinct loop.
        t.add_loop(outer(4, Direction::Counterclockwise)).unwrap();
        assert_eq!(t.loops().len(), 2);
    }

    #[test]
    fn overlap_counting() {
        let g = Grid::square(4).unwrap();
        let mut t = Topology::new(g);
        t.add_loop(outer(4, Direction::Clockwise)).unwrap();
        t.add_loop(RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap())
            .unwrap();
        assert_eq!(t.node_overlap(g.node_at(0, 0)), 2);
        assert_eq!(t.node_overlap(g.node_at(1, 1)), 1);
        assert_eq!(t.node_overlap(g.node_at(2, 2)), 0);
        assert_eq!(t.max_overlap(), 2);
    }

    #[test]
    fn cap_enforced() {
        let g = Grid::square(4).unwrap();
        let mut t = Topology::new(g);
        t.add_loop_with_cap(outer(4, Direction::Clockwise), 1)
            .unwrap();
        let err = t
            .add_loop_with_cap(outer(4, Direction::Counterclockwise), 1)
            .unwrap_err();
        assert!(matches!(err, TopologyError::OverlapExceeded { cap: 1, .. }));
        // The loop was not partially applied.
        assert_eq!(t.loops().len(), 1);
        assert_eq!(t.max_overlap(), 1);
    }

    #[test]
    fn routes_sorted_by_distance() {
        let g = Grid::square(4).unwrap();
        let mut t = Topology::new(g);
        t.add_loop(outer(4, Direction::Clockwise)).unwrap();
        t.add_loop(outer(4, Direction::Counterclockwise)).unwrap();
        let a = g.node_at(0, 0);
        let b = g.node_at(3, 0);
        let routes = t.routes(a, b);
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].1, 3, "CW is the short way");
        assert_eq!(routes[1].1, 9, "CCW is the long way");
        assert!(t.routes(a, a).is_empty());
    }

    #[test]
    fn figure2c_4x4_rec_style_fully_connected() {
        // A 4x4 loop set in the spirit of Figure 2(c): outer ring both ways
        // plus the four 2x2-ish inner loops covering all pairs.
        let g = Grid::square(4).unwrap();
        let mut t = Topology::new(g);
        let loops = [
            RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap(),
            RectLoop::new(0, 0, 3, 3, Direction::Counterclockwise).unwrap(),
            RectLoop::new(0, 0, 1, 3, Direction::Clockwise).unwrap(),
            RectLoop::new(2, 0, 3, 3, Direction::Counterclockwise).unwrap(),
            RectLoop::new(0, 0, 3, 1, Direction::Clockwise).unwrap(),
            RectLoop::new(0, 2, 3, 3, Direction::Counterclockwise).unwrap(),
            RectLoop::new(1, 1, 2, 2, Direction::Clockwise).unwrap(),
            RectLoop::new(1, 1, 2, 2, Direction::Counterclockwise).unwrap(),
            RectLoop::new(0, 1, 3, 2, Direction::Clockwise).unwrap(),
            RectLoop::new(1, 0, 2, 3, Direction::Counterclockwise).unwrap(),
            // The four 3x3 corner loops that connect each corner with the
            // diagonally adjacent inner nodes.
            RectLoop::new(0, 0, 2, 2, Direction::Clockwise).unwrap(),
            RectLoop::new(1, 1, 3, 3, Direction::Counterclockwise).unwrap(),
            RectLoop::new(1, 0, 3, 2, Direction::Clockwise).unwrap(),
            RectLoop::new(0, 1, 2, 3, Direction::Counterclockwise).unwrap(),
        ];
        for l in loops {
            t.add_loop(l).unwrap();
        }
        assert!(t.is_fully_connected());
        assert!(t.average_hops() < g.unconnected_hops() as f64);
    }

    #[test]
    fn loops_through_matches_overlap() {
        let g = Grid::square(4).unwrap();
        let mut t = Topology::new(g);
        t.add_loop(outer(4, Direction::Clockwise)).unwrap();
        t.add_loop(RectLoop::new(0, 0, 2, 2, Direction::Clockwise).unwrap())
            .unwrap();
        for n in g.nodes() {
            assert_eq!(t.loops_through(n).len() as u32, t.node_overlap(n));
        }
    }

    #[test]
    fn from_loops_constructor() {
        let g = Grid::square(2).unwrap();
        let t = Topology::from_loops(
            g,
            [RectLoop::new(0, 0, 1, 1, Direction::Clockwise).unwrap()],
        )
        .unwrap();
        assert!(t.is_fully_connected());
    }

    #[test]
    fn out_of_bounds_loop_rejected() {
        let mut t = Topology::new(Grid::square(3).unwrap());
        let err = t
            .add_loop(RectLoop::new(0, 0, 3, 3, Direction::Clockwise).unwrap())
            .unwrap_err();
        assert!(matches!(err, TopologyError::LoopOutOfBounds { .. }));
    }
}
