//! Property-based coverage of degraded-mode routing: for random
//! topologies and random fault sets, `rebuild_excluding` must be total
//! exactly over the pairs the surviving loops still connect, and on those
//! pairs it must pick the true shortest surviving route.

use proptest::prelude::*;
use rlnoc_topology::{Direction, FaultSet, Grid, RectLoop, RoutingTable, Topology};

const SIDE: usize = 4;

/// `Topology::from_loops` rejects duplicate loops; random draws collide
/// often on a 4x4 grid, so dedup while preserving order.
fn dedup_loops(loops: Vec<RectLoop>) -> Vec<RectLoop> {
    let mut unique: Vec<RectLoop> = Vec::new();
    for l in loops {
        if !unique.contains(&l) {
            unique.push(l);
        }
    }
    unique
}

/// A random rectangular loop on the 4x4 grid.
fn arb_loop() -> impl Strategy<Value = RectLoop> {
    (
        0usize..SIDE - 1,
        0usize..SIDE - 1,
        0usize..SIDE - 1,
        0usize..SIDE - 1,
        0usize..2,
    )
        .prop_map(|(x0, y0, dx, dy, cw)| {
            let x1 = (x0 + 1 + dx).min(SIDE - 1);
            let y1 = (y0 + 1 + dy).min(SIDE - 1);
            let dir = if cw == 0 {
                Direction::Clockwise
            } else {
                Direction::Counterclockwise
            };
            RectLoop::new(x0, y0, x1, y1, dir).expect("valid rectangle")
        })
}

/// Oracle: the shortest surviving hop count from `a` to `b`, scanning
/// loops directly (no routing-table machinery). A route on loop `i` from
/// position `pi` over `hops` links survives iff the loop is alive and no
/// failed link of that loop sits within `[pi, pi + hops)`.
fn oracle_shortest(topo: &Topology, faults: &FaultSet, a: usize, b: usize) -> Option<usize> {
    let grid = topo.grid();
    let mut best: Option<usize> = None;
    for (i, ring) in topo.loops().iter().enumerate() {
        if faults.loop_failed(i) {
            continue;
        }
        let nodes = ring.perimeter_nodes(grid);
        let len = nodes.len();
        let (Some(pi), Some(pj)) = (
            nodes.iter().position(|&n| n == a),
            nodes.iter().position(|&n| n == b),
        ) else {
            continue;
        };
        let hops = (pj + len - pi) % len;
        let blocked = nodes
            .iter()
            .enumerate()
            .any(|(pf, &from)| faults.link_failed(i, from) && (pf + len - pi) % len < hops);
        if !blocked {
            best = Some(best.map_or(hops, |h: usize| h.min(hops)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `rebuild_excluding` is total exactly over the pairs the surviving
    /// loops connect, agrees with the oracle on hop counts, and its
    /// report is consistent with the table.
    #[test]
    fn rebuild_excluding_matches_surviving_connectivity(
        loops in prop::collection::vec(arb_loop(), 1..6),
        loop_faults in prop::collection::vec(0usize..6, 0..3),
        link_faults in prop::collection::vec((0usize..6, 0usize..SIDE * SIDE), 0..4),
    ) {
        let grid = Grid::square(SIDE).unwrap();
        let topo = Topology::from_loops(grid, dedup_loops(loops)).unwrap();
        let num_loops = topo.loops().len();

        let mut faults = FaultSet::new();
        for f in loop_faults {
            faults.fail_loop(f % num_loops);
        }
        for (l, node) in link_faults {
            // Only meaningful if the node lies on the loop; harmless otherwise.
            faults.fail_link(l % num_loops, node);
        }

        let (table, report) = RoutingTable::rebuild_excluding(&topo, &faults);

        let n = grid.len();
        let mut reachable = 0usize;
        for a in grid.nodes() {
            for b in grid.nodes() {
                if a == b {
                    prop_assert_eq!(table.route(a, b), None);
                    continue;
                }
                let expect = oracle_shortest(&topo, &faults, a, b);
                let got = table.route(a, b);
                prop_assert_eq!(
                    got.map(|r| r.hops), expect,
                    "pair ({}, {}) disagrees with oracle", a, b
                );
                if let Some(r) = got {
                    // The chosen loop must itself be a surviving route of
                    // exactly that length.
                    prop_assert!(!faults.loop_failed(r.loop_index));
                    reachable += 1;
                }
            }
        }
        prop_assert_eq!(report.total_pairs, n * n - n);
        prop_assert_eq!(report.reachable_pairs, reachable);
        prop_assert_eq!(
            report.reachable_pairs + report.disconnected_pairs(),
            report.total_pairs
        );
    }

    /// With no faults, the degraded build is bit-identical to the healthy
    /// build for any random topology.
    #[test]
    fn empty_fault_set_is_identity(
        loops in prop::collection::vec(arb_loop(), 1..6),
    ) {
        let grid = Grid::square(SIDE).unwrap();
        let topo = Topology::from_loops(grid, dedup_loops(loops)).unwrap();
        let (table, report) = RoutingTable::rebuild_excluding(&topo, &FaultSet::new());
        prop_assert_eq!(&table, &RoutingTable::build(&topo));
        prop_assert_eq!(report.reachable_pairs + report.disconnected_pairs(), report.total_pairs);
    }
}
