//! Application-level traffic models standing in for PARSEC on Gem5.
//!
//! The paper's real-workload evaluation (§5, §6.4–6.5, Table 5, Figures
//! 11/12/14) runs PARSEC benchmarks under full-system Gem5. This crate
//! substitutes SynFull-style statistical models (see `DESIGN.md`): each
//! benchmark is characterized by an average injection rate, an on/off
//! burstiness process, and a destination-locality mix — the NoC-visible
//! properties that drive the paper's latency/power results — plus a
//! latency-sensitivity model that converts measured NoC latency into
//! execution time (Table 5).
//!
//! Per-benchmark load parameters are synthetic but ordered to match the
//! qualitative characterization of PARSEC network behaviour (light, bursty
//! cache-coherence traffic; `canneal`/`fluidanimate` communication-heavy,
//! `blackscholes`/`swaptions` compute-bound). Execution-time constants are
//! calibrated to Table 5's Mesh-2 column.
//!
//! # Example
//!
//! ```
//! use rlnoc_workloads::{Benchmark, run_benchmark};
//! use rlnoc_sim::{MeshSim, SimConfig};
//! use rlnoc_topology::Grid;
//!
//! let grid = Grid::square(4).unwrap();
//! let cfg = SimConfig { warmup: 100, measure: 500, ..SimConfig::mesh() };
//! let m = run_benchmark(&mut MeshSim::mesh2(grid), Benchmark::Fluidanimate, &cfg, 1);
//! assert!(m.packets > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::prelude::*;
use rand::rngs::StdRng;
use rlnoc_sim::{Metrics, Network, Packet, PacketKind, PacketSource, SimConfig};
use rlnoc_topology::{Grid, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The PARSEC benchmarks evaluated in the paper (Figures 11/12/14 and
/// Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Blackscholes,
    Bodytrack,
    Canneal,
    Facesim,
    Fluidanimate,
    Streamcluster,
    Swaptions,
}

impl Benchmark {
    /// All seven benchmarks, in the paper's figure order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Canneal,
        Benchmark::Facesim,
        Benchmark::Fluidanimate,
        Benchmark::Streamcluster,
        Benchmark::Swaptions,
    ];

    /// The benchmarks with Table 5 execution-time entries.
    pub const TABLE5: [Benchmark; 6] = [
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Canneal,
        Benchmark::Facesim,
        Benchmark::Fluidanimate,
        Benchmark::Streamcluster,
    ];

    /// The traffic/sensitivity model for this benchmark.
    pub fn model(self) -> AppModel {
        // rate: average flits/node/cycle (PARSEC NoC load is light);
        // duty: fraction of time a node's source is in the ON burst state;
        // burst_len: mean ON-state duration in cycles;
        // locality: fraction of packets sent within Manhattan radius 2;
        // base_exec_ms: Table 5's Mesh-2 column (reference machine);
        // noc_frac: fraction of execution time that scales with NoC latency.
        match self {
            Benchmark::Blackscholes => AppModel::new(self, 0.003, 0.50, 60.0, 0.6, 4.4, 0.17),
            Benchmark::Bodytrack => AppModel::new(self, 0.006, 0.40, 80.0, 0.5, 5.4, 0.10),
            Benchmark::Canneal => AppModel::new(self, 0.016, 0.30, 120.0, 0.2, 7.1, 0.28),
            Benchmark::Facesim => AppModel::new(self, 0.010, 0.60, 100.0, 0.4, 626.0, 0.33),
            Benchmark::Fluidanimate => AppModel::new(self, 0.018, 0.45, 90.0, 0.35, 35.3, 0.56),
            Benchmark::Streamcluster => AppModel::new(self, 0.008, 0.70, 150.0, 0.3, 11.0, 0.0),
            Benchmark::Swaptions => AppModel::new(self, 0.004, 0.55, 70.0, 0.5, 6.0, 0.08),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Canneal => "canneal",
            Benchmark::Facesim => "facesim",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Swaptions => "swaptions",
        };
        write!(f, "{name}")
    }
}

/// Statistical traffic + sensitivity model of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// The benchmark this models.
    pub benchmark: Benchmark,
    /// Long-run average injection rate, flits/node/cycle.
    pub rate: f64,
    /// Fraction of time each source spends in its ON burst state.
    pub duty: f64,
    /// Mean ON-state dwell time, cycles.
    pub burst_len: f64,
    /// Fraction of packets destined within Manhattan radius 2 (coherence
    /// locality); the rest draw uniformly.
    pub locality: f64,
    /// Execution time on the Mesh-2 reference (ms, Table 5).
    pub base_exec_ms: f64,
    /// Fraction of `base_exec_ms` that scales with NoC packet latency.
    pub noc_frac: f64,
}

impl AppModel {
    fn new(
        benchmark: Benchmark,
        rate: f64,
        duty: f64,
        burst_len: f64,
        locality: f64,
        base_exec_ms: f64,
        noc_frac: f64,
    ) -> Self {
        AppModel {
            benchmark,
            rate,
            duty,
            burst_len,
            locality,
            base_exec_ms,
            noc_frac,
        }
    }

    /// Predicted execution time (ms) given the average packet latency
    /// measured on some fabric and the latency of the Mesh-2 reference
    /// measured under the same methodology:
    /// `T = base·(1 − f) + base·f·(L / L_ref)`.
    ///
    /// By construction `execution_time_ms(L_ref, L_ref) == base_exec_ms`.
    pub fn execution_time_ms(&self, avg_latency: f64, mesh2_latency: f64) -> f64 {
        let ratio = if mesh2_latency > 0.0 {
            avg_latency / mesh2_latency
        } else {
            1.0
        };
        self.base_exec_ms * (1.0 - self.noc_frac) + self.base_exec_ms * self.noc_frac * ratio
    }
}

/// Markov-modulated (on/off) packet source with destination locality,
/// implementing [`PacketSource`] so it drives the same simulation runner
/// as synthetic traffic.
#[derive(Debug)]
pub struct AppTrafficGen {
    grid: Grid,
    model: AppModel,
    /// Per-node burst state.
    on: Vec<bool>,
    rng: StdRng,
    next_id: u64,
    /// Precomputed neighbourhoods within Manhattan radius 2.
    neighbours: Vec<Vec<NodeId>>,
}

impl AppTrafficGen {
    /// Creates a generator for `model` on `grid`.
    pub fn new(grid: Grid, model: AppModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let on = (0..grid.len()).map(|_| rng.gen_bool(model.duty)).collect();
        let neighbours = grid
            .nodes()
            .map(|n| {
                grid.nodes()
                    .filter(|&m| m != n && grid.manhattan(n, m) <= 2)
                    .collect()
            })
            .collect();
        AppTrafficGen {
            grid,
            model,
            on,
            rng,
            next_id: 0,
            neighbours,
        }
    }

    /// The model driving this generator.
    pub fn model(&self) -> &AppModel {
        &self.model
    }

    fn pick_dest(&mut self, src: NodeId) -> NodeId {
        if self.rng.gen_bool(self.model.locality) && !self.neighbours[src].is_empty() {
            let nb = &self.neighbours[src];
            nb[self.rng.gen_range(0..nb.len())]
        } else {
            let n = self.grid.len();
            let mut d = self.rng.gen_range(0..n);
            while d == src {
                d = self.rng.gen_range(0..n);
            }
            d
        }
    }
}

impl PacketSource for AppTrafficGen {
    fn generate_into(
        &mut self,
        cycle: u64,
        cfg: &SimConfig,
        measured: bool,
        out: &mut Vec<Packet>,
    ) {
        // Burst-state transitions: mean dwell `burst_len` in ON; OFF dwell
        // chosen so the long-run duty matches the model.
        let p_leave_on = 1.0 / self.model.burst_len.max(1.0);
        let off_len = self.model.burst_len * (1.0 - self.model.duty) / self.model.duty.max(1e-9);
        let p_leave_off = 1.0 / off_len.max(1.0);
        // Injection inside a burst is scaled up so the average equals
        // `rate`.
        let on_rate = (self.model.rate / self.model.duty.max(1e-9)).min(1.0);
        let p_packet = (on_rate / cfg.mean_packet_flits()).min(1.0);

        for src in 0..self.grid.len() {
            let flip = if self.on[src] {
                p_leave_on
            } else {
                p_leave_off
            };
            if self.rng.gen_bool(flip.clamp(0.0, 1.0)) {
                self.on[src] = !self.on[src];
            }
            if !self.on[src] || !self.rng.gen_bool(p_packet) {
                continue;
            }
            let dst = self.pick_dest(src);
            let kind = if self.rng.gen_bool(cfg.control_fraction) {
                PacketKind::Control
            } else {
                PacketKind::Data
            };
            let flits = match kind {
                PacketKind::Control => cfg.control_flits,
                PacketKind::Data => cfg.data_flits,
            };
            out.push(Packet {
                id: self.next_id,
                src,
                dst,
                kind,
                flits,
                created: cycle,
                measured,
            });
            self.next_id += 1;
        }
    }
}

/// Runs `bench`'s traffic model through `net`, returning the measured
/// [`Metrics`].
pub fn run_benchmark<N: Network>(
    net: &mut N,
    bench: Benchmark,
    cfg: &SimConfig,
    seed: u64,
) -> Metrics {
    let mut source = AppTrafficGen::new(*net.grid(), bench.model(), seed);
    rlnoc_sim::run_with_source(net, &mut source, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnoc_sim::MeshSim;

    fn grid() -> Grid {
        Grid::square(4).unwrap()
    }

    #[test]
    fn all_models_are_light_load() {
        for b in Benchmark::ALL {
            let m = b.model();
            assert!(m.rate > 0.0 && m.rate < 0.05, "{b}: rate {}", m.rate);
            assert!((0.0..=1.0).contains(&m.duty));
            assert!((0.0..=1.0).contains(&m.locality));
            assert!((0.0..=1.0).contains(&m.noc_frac));
        }
    }

    #[test]
    fn table5_mesh2_anchors() {
        // execution_time_ms at the reference latency reproduces Table 5's
        // Mesh-2 column exactly.
        for (b, expect) in [
            (Benchmark::Blackscholes, 4.4),
            (Benchmark::Bodytrack, 5.4),
            (Benchmark::Canneal, 7.1),
            (Benchmark::Facesim, 626.0),
            (Benchmark::Fluidanimate, 35.3),
            (Benchmark::Streamcluster, 11.0),
        ] {
            let t = b.model().execution_time_ms(21.7, 21.7);
            assert!((t - expect).abs() < 1e-9, "{b}: {t} vs {expect}");
        }
    }

    #[test]
    fn fluidanimate_drl_speedup_matches_paper() {
        // With the paper's measured latencies (Mesh-2 21.7, DRL 9.7) the
        // model lands near Table 5's 24.4 ms for DRL.
        let t = Benchmark::Fluidanimate.model().execution_time_ms(9.7, 21.7);
        assert!((t - 24.4).abs() < 0.7, "fluidanimate DRL exec {t} ms");
    }

    #[test]
    fn streamcluster_is_noc_insensitive() {
        let m = Benchmark::Streamcluster.model();
        assert_eq!(m.execution_time_ms(5.0, 20.0), m.base_exec_ms);
    }

    #[test]
    fn generator_average_rate_close_to_model() {
        let model = Benchmark::Canneal.model();
        let cfg = SimConfig::default();
        let mut gen = AppTrafficGen::new(grid(), model, 3);
        let mut flits = 0usize;
        let cycles = 30_000u64;
        for c in 0..cycles {
            for p in gen.generate(c, &cfg, false) {
                flits += p.flits;
            }
        }
        let rate = flits as f64 / (cycles as f64 * 16.0);
        assert!(
            (rate - model.rate).abs() < model.rate * 0.3,
            "long-run rate {rate} vs model {}",
            model.rate
        );
    }

    #[test]
    fn locality_bias_observable() {
        let mut high = Benchmark::Blackscholes.model();
        high.locality = 0.9;
        high.rate = 0.03;
        let cfg = SimConfig::default();
        let g = grid();
        let mut gen = AppTrafficGen::new(g, high, 1);
        let mut near = 0usize;
        let mut total = 0usize;
        for c in 0..20_000 {
            for p in gen.generate(c, &cfg, false) {
                total += 1;
                if g.manhattan(p.src, p.dst) <= 2 {
                    near += 1;
                }
            }
        }
        assert!(total > 100);
        let frac = near as f64 / total as f64;
        assert!(frac > 0.8, "local fraction {frac} under locality 0.9");
    }

    #[test]
    fn benchmark_runs_on_mesh() {
        let cfg = SimConfig {
            warmup: 200,
            measure: 2_000,
            drain: 1_000,
            ..SimConfig::mesh()
        };
        let m = run_benchmark(
            &mut MeshSim::mesh2(grid()),
            Benchmark::Fluidanimate,
            &cfg,
            7,
        );
        assert!(m.packets > 0, "bursty source must deliver packets");
        assert!(m.delivery_ratio() > 0.95);
        assert!(m.avg_packet_latency() > 0.0);
    }

    #[test]
    fn generator_deterministic_per_seed() {
        let cfg = SimConfig::default();
        let model = Benchmark::Bodytrack.model();
        let mut a = AppTrafficGen::new(grid(), model, 11);
        let mut b = AppTrafficGen::new(grid(), model, 11);
        for c in 0..200 {
            assert_eq!(a.generate(c, &cfg, false), b.generate(c, &cfg, false));
        }
    }
}
