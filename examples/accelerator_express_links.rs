//! Broad applicability (paper §6.8): the same DRL framework exploring a
//! *different* design space — express-link insertion on an accelerator's
//! mesh interconnect.
//!
//! Scenario: a spatial accelerator (think TPU/Eyeriss-style PE array) moves
//! tensors between processing elements over a mesh. A few long-range
//! express links can cut hop counts dramatically, but each PE's router has
//! a strict port budget. The framework swaps in the `ExpressLinkEnv`
//! environment — the state is still a hop-count matrix, the action is
//! still `(x1, y1, x2, y2, flag)` — and everything else (DNN, MCTS,
//! actor-critic, ε-greedy) is reused unchanged.
//!
//! Run with: `cargo run --release --example accelerator_express_links`

use rlnoc::drl::envs::ExpressLinkEnv;
use rlnoc::drl::explorer::{Explorer, ExplorerConfig};
use rlnoc::topology::{mesh, Grid};

fn main() {
    // A 5x5 PE array with a budget of 2 express links per PE.
    let grid = Grid::square(5).expect("5x5 grid");
    let budget = 2;
    let env = ExpressLinkEnv::new(grid, budget);
    println!(
        "baseline mesh average hops: {:.3}",
        mesh::average_hops(&grid)
    );

    // Explore. The greedy fallback for this environment is naive (first
    // legal link), so learning and tree search carry more weight here.
    let mut config = ExplorerConfig::fast();
    config.cycles = 5;
    config.max_steps = 12;
    config.epsilon = 0.05;
    let mut explorer = Explorer::new(env, config, 7);
    let report = explorer.run();

    println!("explored {} link placements:", report.cycles_run);
    for d in &report.designs {
        println!(
            "  cycle {}: {} links, avg hops {:.3} (return {:+.3})",
            d.cycle,
            d.env.links().len(),
            d.env.average_hops(),
            d.final_return
        );
    }

    let best = report
        .designs
        .iter()
        .max_by(|a, b| a.final_return.total_cmp(&b.final_return))
        .expect("at least one cycle ran");
    println!(
        "\nbest express-link plan (avg hops {:.3}):",
        best.env.average_hops()
    );
    for l in best.env.links() {
        println!(
            "  ({}, {}) -> ({}, {}){}",
            l.x1,
            l.y1,
            l.x2,
            l.y2,
            if l.bidirectional {
                "  (bidirectional)"
            } else {
                ""
            }
        );
    }
    let improvement =
        100.0 * (mesh::average_hops(&grid) - best.env.average_hops()) / mesh::average_hops(&grid);
    println!("hop-count reduction over plain mesh: {improvement:.1}%");
}
